"""E4 — Figure 9(b): error vs synopsis size, P+V workload (IMDB + XMark).

Branching *and* value predicates: the paper observes the same downward
trend as 9(a) at a higher absolute error (the estimation problem now
includes selections and semi-joins, and the measured prototype keeps
1-D value histograms).  Benchmarks estimation of a value-predicated twig.
"""

import pytest

from repro.estimation import TwigEstimator
from repro.experiments import (
    format_figure9b,
    run_figure9b,
    synopsis_sweep,
    workload,
)

from conftest import run_recorded


@pytest.fixture(scope="module")
def figure9b(experiment_config):
    return run_recorded(
        "figure9b", run_figure9b, format_figure9b, experiment_config
    )


def test_error_reduced_from_coarsest(figure9b):
    """Paper: the coarsest summary's high error is significantly reduced
    at larger sizes."""
    points = figure9b["IMDB"]
    assert points[-1][1] < points[0][1]


def test_pv_error_higher_than_p(figure9b, experiment_config):
    """Paper: overall error increases relative to the P-only workload."""
    from repro.experiments import run_figure9a

    figure9a = run_figure9a(experiment_config)
    # compare the final (largest-synopsis) points
    assert figure9b["IMDB"][-1][1] > figure9a["IMDB"][-1][1]


def test_benchmark_pv_estimation(benchmark, figure9b, experiment_config):
    """Latency of estimating a twig with value predicates."""
    sketch = synopsis_sweep("imdb", experiment_config)[-1]
    estimator = TwigEstimator(sketch)
    load = workload("imdb", "P+V", experiment_config)
    entry = next(
        (e for e in load.queries if e.query.has_value_predicates()),
        load.queries[0],
    )
    estimate = benchmark(estimator.estimate, entry.query)
    assert estimate >= 0
