"""E3 — Figure 9(a): error vs synopsis size, P workload (IMDB + XMark).

The headline result: XBUILD drives the estimation error of the
correlated IMDB data down as the budget grows, while the regular XMark
stays accurate at every size.  Benchmarks the twig-estimation call — the
operation whose latency must fit a query optimizer's budget.
"""

import pytest

from repro.estimation import TwigEstimator
from repro.experiments import (
    format_figure9a,
    run_figure9a,
    synopsis_sweep,
    workload,
)

from conftest import run_recorded


@pytest.fixture(scope="module")
def figure9a(experiment_config):
    return run_recorded(
        "figure9a", run_figure9a, format_figure9a, experiment_config
    )


def test_imdb_error_decreases(figure9a):
    """Paper: 124% at the coarsest point falling to ~20% — the error at
    the largest budget must be well below the coarsest error."""
    points = figure9a["IMDB"]
    first_error = points[0][1]
    last_error = points[-1][1]
    assert last_error < first_error * 0.6


def test_xmark_stays_low(figure9a):
    """Paper: XMark exhibits low error for all storage sizes."""
    points = figure9a["XMARK"]
    assert all(error < 40.0 for _, error in points)
    assert points[-1][1] < 15.0


def test_sizes_increase(figure9a):
    for points in figure9a.values():
        sizes = [size for size, _ in points]
        assert sizes == sorted(sizes)


def test_benchmark_twig_estimation(benchmark, figure9a, experiment_config):
    """Latency of one twig selectivity estimate on the largest synopsis."""
    sketch = synopsis_sweep("imdb", experiment_config)[-1]
    estimator = TwigEstimator(sketch)
    entry = workload("imdb", "P", experiment_config).queries[0]
    estimate = benchmark(estimator.estimate, entry.query)
    assert estimate >= 0
