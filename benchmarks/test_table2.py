"""E2 — Table 2: workload characteristics.

Regenerates the average result cardinality and internal fanout of the
P / P+V workloads, and benchmarks the exact evaluator (the component that
produces every true count in the study).
"""

import pytest

from repro.experiments import dataset, format_table2, run_table2, workload
from repro.query import count_bindings

from conftest import run_recorded


@pytest.fixture(scope="module")
def table2(experiment_config):
    return run_recorded("table2", run_table2, format_table2, experiment_config)


def test_table2_shape(table2):
    """Workloads exist for all data sets; fanouts near the paper's ~1.5-2."""
    assert len(table2) == 5  # XMark P/P+V, IMDB P/P+V, SProt P
    for row in table2:
        assert row.average_result > 0
        assert 1.2 <= row.average_fanout <= 2.5


def test_pv_results_smaller_than_p(table2):
    """Value predicates shrink result sizes (paper: 2,436→1,423 etc.)."""
    by_key = {(row.name, row.kind): row.average_result for row in table2}
    assert by_key[("XMark", "P+V")] < by_key[("XMark", "P")]
    assert by_key[("IMDB", "P+V")] < by_key[("IMDB", "P")]


def test_benchmark_exact_evaluation(benchmark, table2, experiment_config):
    """Latency of one exact twig evaluation (ground-truth oracle)."""
    tree = dataset("imdb", experiment_config)
    entry = workload("imdb", "P", experiment_config).queries[0]
    result = benchmark(count_bindings, entry.query, tree)
    assert result == entry.true_count
