"""E8 — ablation: stored per-edge counts vs stability-only estimation.

DESIGN.md §3 documents storing ``|n_i → n_j|`` on each edge (4 bytes,
charged to the budget) as the charitable reading of the paper; the
stability-only fallback apportions extents by stability and source sizes.
This ablation quantifies what those 4 bytes buy.
"""

import pytest

from repro.experiments import (
    format_edge_count_ablation,
    run_edge_count_ablation,
)
from repro.synopsis import TwigXSketch, XSketchConfig
from repro.experiments import dataset

from conftest import run_recorded


@pytest.fixture(scope="module")
def edge_count_ablation(experiment_config):
    return run_recorded(
        "ablation_edgecounts",
        run_edge_count_ablation,
        format_edge_count_ablation,
        experiment_config,
    )


def test_both_variants_produce_finite_errors(edge_count_ablation):
    for row in edge_count_ablation:
        assert row.first_error >= 0
        assert row.second_error >= 0


def test_stored_counts_not_worse(edge_count_ablation):
    """Stored counts never lose information, so errors should not be
    meaningfully worse than the fallback."""
    for row in edge_count_ablation:
        assert row.first_error <= row.second_error * 1.5 + 0.05


def test_benchmark_fallback_sketch_build(benchmark, edge_count_ablation, experiment_config):
    """Latency of the coarsest build without stored edge counts."""
    tree = dataset("imdb", experiment_config)
    config = XSketchConfig(store_edge_counts=False)
    sketch = benchmark(TwigXSketch.coarsest, tree, config)
    assert sketch.size_bytes() > 0
