"""E5 — Figure 9(c): CSTs vs XSKETCHes on simple-path twig workloads.

Regenerates the err_CST / err_XSKETCH ratio per data set and budget (CST
outliers above 1000% excluded, as in the paper).  Benchmarks both the CST
build and its estimation call.
"""

import pytest

from repro.baselines import CorrelatedSuffixTree, CSTEstimator
from repro.experiments import (
    dataset,
    format_figure9c,
    run_figure9c,
    workload,
)

from conftest import run_recorded


@pytest.fixture(scope="module")
def figure9c(experiment_config):
    return run_recorded(
        "figure9c", run_figure9c, format_figure9c, experiment_config
    )


def test_xsketch_wins_at_largest_budget(figure9c):
    """Paper: XSKETCHes beat CSTs clearly on the two less regular data
    sets; SProt is the near-parity case."""
    assert figure9c["IMDB"][-1][1] > 1.5
    assert figure9c["XMARK"][-1][1] > 1.0
    assert figure9c["SPROT"][-1][1] > 0.8


def test_ratio_increases_with_budget(figure9c):
    """Paper: XSKETCHes make better use of added space, so the ratio has
    an increasing trend (first point vs last point per data set)."""
    for name in ("IMDB", "XMARK"):
        points = figure9c[name]
        assert points[-1][1] > points[0][1]


def test_benchmark_cst_build(benchmark, figure9c, experiment_config):
    """Latency of building a pruned CST at a 4 KB budget."""
    tree = dataset("sprot", experiment_config)
    summary = benchmark(CorrelatedSuffixTree.build, tree, 4096)
    assert summary.size_bytes() <= 4096 + 64


def test_benchmark_cst_estimation(benchmark, figure9c, experiment_config):
    """Latency of one CST twig estimate."""
    tree = dataset("imdb", experiment_config)
    summary = CorrelatedSuffixTree.build(tree, 8192)
    estimator = CSTEstimator(summary)
    entry = workload("imdb", "simple", experiment_config).queries[0]
    estimate = benchmark(estimator.estimate, entry.query)
    assert estimate >= 0
