"""Shared fixtures and reporting for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures through
:mod:`repro.experiments` (expensive artifacts — documents, workloads,
XBUILD sweeps — are memoized inside that module, so the suite builds each
exactly once), then benchmarks the latency-critical operation behind it
(estimation calls, summary construction).

The regenerated tables are printed in the terminal summary at the end of
the run and also written to ``benchmarks/results/*.txt``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import DEFAULT_CONFIG

RESULTS_DIR = Path(__file__).parent / "results"

_reports: list[tuple[str, str]] = []


def record_report(name: str, text: str) -> None:
    """Register a rendered table for the terminal summary + results dir."""
    _reports.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf8")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _reports:
        return
    terminalreporter.section("paper tables and figures (reproduced)")
    for name, text in _reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def experiment_config():
    """The experiment scale configuration (env-overridable)."""
    return DEFAULT_CONFIG
