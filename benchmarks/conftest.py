"""Shared fixtures and reporting for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures through
:mod:`repro.experiments` (expensive artifacts — documents, workloads,
XBUILD sweeps — are memoized inside that module, so the suite builds each
exactly once), then benchmarks the latency-critical operation behind it
(estimation calls, summary construction).

The regenerated tables are printed in the terminal summary at the end of
the run and also written to ``benchmarks/results/*.txt``.  In addition,
every run of the suite emits ``benchmarks/results/BENCH_twig.json`` — a
machine-readable ``repro.obs/bench-v1`` envelope carrying per-figure
wall-clock timings, the raw per-figure data (error curves, table rows),
and a snapshot of the process-global metrics registry (build rounds,
estimator lookups, parse counters accumulated while regenerating).
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

import pytest

from repro.experiments import DEFAULT_CONFIG
from repro.obs import BENCH_SCHEMA, default_registry

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_FILE = "BENCH_twig.json"

_reports: list[tuple[str, str]] = []
_bench_entries: dict[str, dict] = {}


def _jsonable(value):
    """Best-effort conversion of experiment results to plain JSON data."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, tuple) and hasattr(value, "_asdict"):
        return _jsonable(value._asdict())
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    return str(value)


def record_report(name: str, text: str) -> None:
    """Register a rendered table for the terminal summary + results dir."""
    _reports.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf8")


def run_recorded(name: str, runner, formatter, config):
    """Run one figure/table regeneration, timed and recorded.

    Times ``runner(config)``, publishes the elapsed seconds as the
    ``bench_run_seconds{name=...}`` gauge, renders the table through
    ``formatter`` into the terminal summary, and stashes the raw result
    for ``BENCH_twig.json``.  Returns the runner's result unchanged, so
    module fixtures can hand it to their assertions.
    """
    start = time.perf_counter()
    result = runner(config)
    elapsed = time.perf_counter() - start
    registry = default_registry()
    registry.gauge(
        "bench_run_seconds",
        "wall-clock seconds spent regenerating each figure/table",
        ["name"],
    ).set(elapsed, name=name)
    registry.counter(
        "bench_runs_total", "figure/table regenerations", ["name"]
    ).inc(name=name)
    record_report(name, formatter(result))
    _bench_entries[name] = {
        "name": name,
        "seconds": elapsed,
        "data": _jsonable(result),
    }
    return result


def _write_bench_json() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / BENCH_FILE
    payload = {
        "schema": BENCH_SCHEMA,
        "results": [
            _bench_entries[name] for name in sorted(_bench_entries)
        ],
        "metrics": default_registry().snapshot(),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf8")
    return path


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _reports:
        return
    terminalreporter.section("paper tables and figures (reproduced)")
    for name, text in _reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
    if _bench_entries:
        path = _write_bench_json()
        terminalreporter.write_line("")
        terminalreporter.write_line(f"machine-readable results: {path}")


@pytest.fixture(scope="session")
def experiment_config():
    """The experiment scale configuration (env-overridable)."""
    return DEFAULT_CONFIG
