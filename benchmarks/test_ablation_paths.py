"""E7 — Twig vs Structural XSKETCH on single-path workloads.

Section 6.2: "Twig XSKETCHes compute low-error estimates of path
selectivities, but, as expected, Structural XSKETCHes enable more
accurate approximations since they target specifically the problem of
selectivity estimation for single paths."
"""

import pytest

from repro.estimation import PathEstimator
from repro.experiments import (
    format_path_ablation,
    run_path_ablation,
    synopsis_sweep,
    workload,
)

from conftest import run_recorded


@pytest.fixture(scope="module")
def path_ablation(experiment_config):
    return run_recorded(
        "ablation_paths", run_path_ablation, format_path_ablation,
        experiment_config,
    )


def test_twig_estimates_paths_with_low_error(path_ablation):
    """Twig synopses remain usable on pure path queries."""
    for row in path_ablation:
        assert row.first_error < 0.8


def test_structural_estimator_competitive(path_ablation):
    """The dedicated path estimator is at least in the same accuracy
    class (the paper finds it more accurate)."""
    for row in path_ablation:
        assert row.second_error <= row.first_error * 2.0 + 0.05


def test_benchmark_path_estimation(benchmark, path_ablation, experiment_config):
    """Latency of one single-path estimate."""
    sketch = synopsis_sweep("imdb", experiment_config)[-1]
    estimator = PathEstimator(sketch)
    from repro.query import parse_path

    result = benchmark(estimator.estimate, parse_path("movie/actor"))
    assert result > 0
