"""E6 — negative workloads (Section 6.1's robustness remark).

"We have also experimented with 'negative' workloads (selectivity equal
to zero) and we have found that our synopses consistently give close to
zero estimates for this type of queries."
"""

import pytest

from repro.estimation import TwigEstimator
from repro.experiments import (
    format_negative,
    run_negative,
    synopsis_sweep,
    workload,
)
from repro.workload import sanity_bound

from conftest import run_recorded


@pytest.fixture(scope="module")
def negative(experiment_config):
    return run_recorded(
        "negative", run_negative, format_negative, experiment_config
    )


def test_estimates_close_to_zero(negative, experiment_config):
    """Mean estimate on zero-selectivity queries stays below the sanity
    bound of the corresponding positive workload."""
    for result in negative:
        positive = workload(result.name.lower(), "P", experiment_config)
        bound = sanity_bound(positive.true_counts())
        assert result.mean_estimate <= bound


def test_benchmark_negative_estimation(benchmark, negative, experiment_config):
    """Latency of estimating a structurally impossible twig."""
    sketch = synopsis_sweep("imdb", experiment_config)[-1]
    estimator = TwigEstimator(sketch)
    entry = workload("imdb", "negative", experiment_config).queries[0]
    estimate = benchmark(estimator.estimate, entry.query)
    assert estimate >= 0
