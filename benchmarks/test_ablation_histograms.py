"""E9 — ablation: centroid histograms vs Haar wavelets.

Section 3.2 of the paper: an edge distribution "can be summarized very
efficiently using multidimensional methods such as histograms and
wavelets".  Both engines implement the same points() interface; this
ablation runs the full P-workload sweep once per engine.
"""

import pytest

from repro.experiments import (
    dataset,
    format_engine_ablation,
    run_engine_ablation,
)
from repro.histogram import CentroidHistogram, SparseDistribution, WaveletHistogram

from conftest import run_recorded


@pytest.fixture(scope="module")
def engine_ablation(experiment_config):
    return run_recorded(
        "ablation_histograms",
        run_engine_ablation,
        format_engine_ablation,
        experiment_config,
    )


def test_both_engines_usable(engine_ablation):
    for row in engine_ablation:
        assert row.first_error >= 0
        assert row.second_error >= 0
        # neither engine should be catastrophically broken
        assert max(row.first_error, row.second_error) < 3.0


@pytest.fixture(scope="module")
def movie_distribution(experiment_config):
    tree = dataset("imdb", experiment_config)
    observations = [
        (movie.child_count("actor"), movie.child_count("keyword"))
        for movie in tree.extent("movie")
    ]
    return SparseDistribution.from_observations(observations)


def test_benchmark_centroid_compression(benchmark, engine_ablation, movie_distribution):
    """Latency of compressing a real joint count distribution (centroid)."""
    histogram = benchmark(CentroidHistogram, movie_distribution, 8)
    assert histogram.bucket_count() <= 8


def test_benchmark_wavelet_compression(benchmark, engine_ablation, movie_distribution):
    """Latency of compressing the same distribution (Haar wavelet)."""
    histogram = benchmark(WaveletHistogram, movie_distribution, 8)
    assert histogram.bucket_count() <= 8
