"""E11 — ablation: branch conditioning vs branch independence.

The reproduction's estimator can condition a joint histogram on a covered
branch predicate (restricting to points with a positive witness count)
instead of multiplying an independent existence probability; this bench
quantifies the difference on the P workloads.
"""

import pytest

from repro.estimation import TwigEstimator
from repro.experiments import (
    format_branch_conditioning_ablation,
    run_branch_conditioning_ablation,
    synopsis_sweep,
    workload,
)

from conftest import run_recorded


@pytest.fixture(scope="module")
def branch_ablation(experiment_config):
    return run_recorded(
        "ablation_branchcond",
        run_branch_conditioning_ablation,
        format_branch_conditioning_ablation,
        experiment_config,
    )


def test_conditioning_not_worse(branch_ablation):
    """Conditioning uses strictly more of the stored information."""
    for row in branch_ablation:
        assert row.first_error <= row.second_error * 1.25 + 0.05


def test_benchmark_conditioned_estimation(
    benchmark, branch_ablation, experiment_config
):
    """Latency of a conditioned estimate on a branch-heavy query."""
    sketch = synopsis_sweep("imdb", experiment_config)[-1]
    estimator = TwigEstimator(sketch, branch_conditioning=True)
    load = workload("imdb", "P", experiment_config)
    entry = next(
        (
            e
            for e in load.queries
            if any(
                step.branches
                for node in e.query.nodes()
                for step in node.path.steps
            )
        ),
        load.queries[0],
    )
    estimate = benchmark(estimator.estimate, entry.query)
    assert estimate >= 0
