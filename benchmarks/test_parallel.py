"""E13 — parallel XBUILD and batched estimation (repro.parallel).

Times the pipelines the parallel subsystem touches on the IMDb data set:

* **build, truth caching** — XBUILD with its truth caches (the
  build-level cross-round cache plus the oracle's own memo) against a
  baseline with caching disabled, where every sampled query is an
  exact-count traversal of the document every time it is drawn.  This
  is the hardware-independent win the hit counters quantify.
* **build, process pool** — serial vs ``workers=2`` candidate scoring,
  with the bit-identity of the resulting synopsis re-checked on the
  spot (the point of the deterministic pool is that parallelism never
  changes the bytes).  The wall-clock effect depends on the host: with
  a single usable core (``cpu_count`` is recorded in the data) the pool
  is bounded overhead, not speedup.
* **estimation** — per-query :meth:`TwigEstimator.estimate` vs
  :meth:`estimate_many` on an all-distinct workload and on a
  serving-style workload with repeated queries, where the shared plan
  cache pays heavily.
"""

import os
import time
from dataclasses import dataclass

from repro.build import XBuild
from repro.estimation import TwigEstimator
from repro.experiments import dataset, workload
from repro.obs.metrics import MetricsRegistry
from repro.synopsis import sketch_to_dict

import pytest

from conftest import run_recorded

BUILD_BUDGET = 2 * 3072
BUILD_WORKERS = 2
REPEATS = 4


class _UncachedBuild(XBuild):
    """Cost model with truth caching off: every request walks the tree.

    Overriding :meth:`_truths` bypasses the build-level cache and wipes
    the oracle's memo before each batch; the chosen refinements are
    unchanged (caching is semantically transparent), so the wall-clock
    delta is exactly what truth caching buys.
    """

    def _truths(self, queries):
        self.oracle._cache.clear()
        return [self.oracle.true_count(query) for query in queries]


@dataclass(frozen=True)
class ParallelBench:
    """Timings and integrity checks of one parallel-vs-serial run."""

    dataset: str
    cpu_count: int
    build_uncached_seconds: float
    build_serial_seconds: float
    build_parallel_seconds: float
    build_workers: int
    cache_speedup: float
    parallel_ratio: float
    build_identical: bool
    oracle_cache_hits: float
    oracle_cache_misses: float
    estimate_queries: int
    estimate_serial_seconds: float
    estimate_batched_seconds: float
    batched_ratio: float
    repeated_serial_seconds: float
    repeated_batched_seconds: float
    repeated_speedup: float
    estimates_identical: bool


def _timed(action):
    start = time.perf_counter()
    result = action()
    return result, time.perf_counter() - start


def run_parallel_bench(config) -> ParallelBench:
    tree = dataset("imdb", config)
    seed = config.build_seed

    _, uncached_seconds = _timed(
        lambda: _UncachedBuild(tree, BUILD_BUDGET, seed=seed).run()
    )
    serial_registry = MetricsRegistry()
    serial, serial_seconds = _timed(
        lambda: XBuild(
            tree, BUILD_BUDGET, seed=seed, metrics=serial_registry
        ).run()
    )
    parallel_registry = MetricsRegistry()
    parallel, parallel_seconds = _timed(
        lambda: XBuild(
            tree,
            BUILD_BUDGET,
            seed=seed,
            metrics=parallel_registry,
            workers=BUILD_WORKERS,
        ).run()
    )
    identical = sketch_to_dict(serial.sketch) == sketch_to_dict(
        parallel.sketch
    )
    cache = parallel_registry.get("build_oracle_cache_total")

    queries = [
        entry.query for entry in workload("imdb", "P+V", config).queries
    ]
    estimator = TwigEstimator(serial.sketch)
    per_query, per_query_seconds = _timed(
        lambda: [estimator.estimate(query) for query in queries]
    )
    batched, batched_seconds = _timed(
        lambda: TwigEstimator(serial.sketch).estimate_many(queries)
    )

    repeated = [query for query in queries for _ in range(REPEATS)]
    rep_estimator = TwigEstimator(serial.sketch)
    rep_serial, rep_serial_seconds = _timed(
        lambda: [rep_estimator.estimate(query) for query in repeated]
    )
    rep_batched, rep_batched_seconds = _timed(
        lambda: TwigEstimator(serial.sketch).estimate_many(repeated)
    )

    return ParallelBench(
        dataset="imdb",
        cpu_count=os.cpu_count() or 1,
        build_uncached_seconds=uncached_seconds,
        build_serial_seconds=serial_seconds,
        build_parallel_seconds=parallel_seconds,
        build_workers=BUILD_WORKERS,
        cache_speedup=uncached_seconds / serial_seconds,
        parallel_ratio=serial_seconds / parallel_seconds,
        build_identical=identical,
        oracle_cache_hits=cache.value(outcome="hit"),
        oracle_cache_misses=cache.value(outcome="miss"),
        estimate_queries=len(queries),
        estimate_serial_seconds=per_query_seconds,
        estimate_batched_seconds=batched_seconds,
        batched_ratio=per_query_seconds / batched_seconds,
        repeated_serial_seconds=rep_serial_seconds,
        repeated_batched_seconds=rep_batched_seconds,
        repeated_speedup=rep_serial_seconds / rep_batched_seconds,
        estimates_identical=(
            batched == per_query and rep_batched == rep_serial
        ),
    )


def format_parallel_bench(bench: ParallelBench) -> str:
    lines = [
        f"parallel pipelines (imdb, {bench.cpu_count} cpu)",
        f"{'pipeline':<30} {'baseline':>9} {'current':>9} {'speedup':>8}",
        (
            f"{'XBUILD truth caching':<30} "
            f"{bench.build_uncached_seconds:>8.2f}s "
            f"{bench.build_serial_seconds:>8.2f}s "
            f"{bench.cache_speedup:>7.2f}x"
        ),
        (
            f"{'XBUILD pool (workers=%d)' % bench.build_workers:<30} "
            f"{bench.build_serial_seconds:>8.2f}s "
            f"{bench.build_parallel_seconds:>8.2f}s "
            f"{bench.parallel_ratio:>7.2f}x"
        ),
        (
            f"{'estimate_many (distinct)':<30} "
            f"{bench.estimate_serial_seconds:>8.2f}s "
            f"{bench.estimate_batched_seconds:>8.2f}s "
            f"{bench.batched_ratio:>7.2f}x"
        ),
        (
            f"{'estimate_many (repeated x%d)' % REPEATS:<30} "
            f"{bench.repeated_serial_seconds:>8.2f}s "
            f"{bench.repeated_batched_seconds:>8.2f}s "
            f"{bench.repeated_speedup:>7.2f}x"
        ),
        (
            f"oracle cache: {bench.oracle_cache_hits:.0f} hits / "
            f"{bench.oracle_cache_misses:.0f} misses; "
            f"bit-identical: build={bench.build_identical} "
            f"estimates={bench.estimates_identical}"
        ),
    ]
    return "\n".join(lines)


@pytest.fixture(scope="module")
def parallel_bench(experiment_config):
    return run_recorded(
        "parallel",
        run_parallel_bench,
        format_parallel_bench,
        experiment_config,
    )


def test_parallel_build_bit_identical(parallel_bench):
    """The tentpole contract: same synopsis bytes out of the pool."""
    assert parallel_bench.build_identical


def test_truth_cache_pays(parallel_bench):
    """Truth caching skips real document traversals; the cached build
    must beat the caching-disabled baseline and the cross-round cache
    must be doing work (hits recorded)."""
    assert parallel_bench.oracle_cache_hits > 0
    assert parallel_bench.oracle_cache_misses > 0
    assert parallel_bench.cache_speedup > 1.1


def test_pool_overhead_bounded(parallel_bench):
    """Process scoring never changes results, and its overhead stays
    bounded even on a single-core host (where no speedup is possible)."""
    assert parallel_bench.parallel_ratio > 0.3


def test_batched_estimation_identical(parallel_bench):
    """Shared plan/memo caches must not change a single estimate."""
    assert parallel_bench.estimates_identical
    # all-distinct queries: the unkeyed batch does strictly less work
    # than the per-query loop, so it must stay within timing noise
    assert parallel_bench.batched_ratio > 0.5


def test_repeated_queries_accelerated(parallel_bench):
    """Serving-style repetition is where the plan cache pays: every
    repeat skips enumeration, planning, and expansion."""
    assert parallel_bench.repeated_speedup > 1.3


def test_benchmark_batched_estimate(
    benchmark, parallel_bench, experiment_config
):
    """Steady-state latency of one batched-context estimate call."""
    queries = [
        entry.query
        for entry in workload("imdb", "P+V", experiment_config).queries[:16]
    ]
    estimator = TwigEstimator(
        XBuild(
            dataset("imdb", experiment_config),
            BUILD_BUDGET,
            seed=experiment_config.build_seed,
        ).run().sketch
    )
    results = benchmark(estimator.estimate_many, queries)
    assert len(results) == len(queries)
