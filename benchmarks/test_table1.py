"""E1 — Table 1: data-set characteristics.

Regenerates the element counts, text sizes, and coarsest-synopsis sizes
for the three data sets, and benchmarks coarsest-synopsis construction
(the operation Table 1's last row measures the output of).
"""

import pytest

from repro.experiments import dataset, format_table1, run_table1
from repro.synopsis import TwigXSketch

from conftest import run_recorded


@pytest.fixture(scope="module")
def table1(experiment_config):
    return run_recorded("table1", run_table1, format_table1, experiment_config)


def test_table1_shape(table1):
    """All three data sets present with sane magnitudes."""
    names = [row.name for row in table1]
    assert names == ["XMark", "IMDB", "SProt"]
    for row in table1:
        assert row.element_count > 0
        assert row.text_size_mb > 0
        # coarsest synopsis is a tiny fraction of the document text
        assert row.coarsest_kb < row.text_size_mb * 1024 / 20


def test_benchmark_coarsest_construction(benchmark, table1, experiment_config):
    """Latency of building the coarsest synopsis for IMDB."""
    tree = dataset("imdb", experiment_config)
    sketch = benchmark(TwigXSketch.coarsest, tree)
    assert sketch.graph.node_count == len(tree.tags)
