"""Single-path selectivity estimation (the earlier structural XSKETCH).

The paper repeatedly leans on its earlier single-path framework — for the
``|n_i → n_j|`` terms and for the ablation comparing Twig XSKETCHes with
Structural XSKETCHes on single-path workloads (Section 6.2).  This module
implements that estimator over the same synopsis: the cardinality of a path
expression's result set (the number of elements its last step reaches),
with value and branch predicates.

The chain estimate composes per-edge child counts with a coverage fraction
(the probability a parent element survived the previous steps), assuming
children are spread uniformly over parents — exact whenever every chain
edge is Backward-stable and no predicates filter elements, which is the
single-path zero-error guarantee of the label-split synopsis on stable
paths.
"""

from __future__ import annotations

from ..query.ast import Path, TwigNode, TwigQuery
from ..synopsis.summary import TwigXSketch
from .embeddings import DEFAULT_MAX_DESCENDANT_DEPTH, _chain_expansions, _embed_branch
from .embeddings import EmbeddingBudget
from .estimator import TwigEstimator, _safe_ratio


class PathEstimator:
    """Estimates single-path result cardinalities over a Twig XSKETCH."""

    def __init__(
        self, sketch: TwigXSketch, max_depth: int = DEFAULT_MAX_DESCENDANT_DEPTH
    ):
        self.sketch = sketch
        self.max_depth = max_depth
        # Branch probabilities and value selectivities are shared with the
        # twig estimator; reuse its implementation on the same sketch.
        self._twig = TwigEstimator(sketch, max_depth)

    def estimate(self, path: Path) -> float:
        """Estimated number of elements in the path's result set."""
        total = 0.0
        for chain in _chain_expansions(
            self.sketch.graph, None, path, self.max_depth
        ):
            total += self._chain_estimate(chain)
        return total

    def estimate_query(self, query: TwigQuery) -> float:
        """Estimate a twig query that is a pure chain (no real branching).

        Raises:
            ValueError: when the query is not a chain of single children.
        """
        steps = []
        node: TwigNode | None = query.root
        while node is not None:
            steps.extend(node.path.steps)
            if len(node.children) > 1:
                raise ValueError("PathEstimator only handles chain queries")
            node = node.children[0] if node.children else None
        return self.estimate(Path(tuple(steps)))

    # ------------------------------------------------------------------
    def _chain_estimate(self, chain) -> float:
        graph = self.sketch.graph
        previous_id: int | None = None
        selected = 0.0
        for node_id, step in chain:
            node_size = graph.node(node_id).count
            if previous_id is None:
                reached = float(node_size)
            else:
                coverage = _safe_ratio(selected, graph.node(previous_id).count)
                reached = self.sketch.edge_child_count(previous_id, node_id) * coverage
            if step.value_pred is not None:
                reached *= self._twig.value_selectivity(node_id, step.value_pred)
            for branch in step.branches:
                alternatives = _embed_branch(
                    graph, node_id, branch, self.max_depth, EmbeddingBudget()
                )
                if not alternatives:
                    return 0.0
                reached *= self._twig._branch_any(node_id, alternatives)
            if reached <= 0:
                return 0.0
            selected = reached
            previous_id = node_id
        return selected
