"""Single-path selectivity estimation (the earlier structural XSKETCH).

The paper repeatedly leans on its earlier single-path framework — for the
``|n_i → n_j|`` terms and for the ablation comparing Twig XSKETCHes with
Structural XSKETCHes on single-path workloads (Section 6.2).  This module
implements that estimator over the same synopsis: the cardinality of a path
expression's result set (the number of elements its last step reaches),
with value and branch predicates.

The chain estimate composes per-edge child counts with a coverage fraction
(the probability a parent element survived the previous steps), assuming
children are spread uniformly over parents — exact whenever every chain
edge is Backward-stable and no predicates filter elements, which is the
single-path zero-error guarantee of the label-split synopsis on stable
paths.
"""

from __future__ import annotations

from typing import Optional

from ..obs import explain as _explain
from ..obs.explain import ExplainRecorder
from ..obs.metrics import MetricsRegistry
from ..query.ast import Path, TwigNode, TwigQuery
from ..synopsis.summary import TwigXSketch
from .embeddings import DEFAULT_MAX_DESCENDANT_DEPTH, _chain_expansions, _embed_branch
from .embeddings import EmbeddingBudget
from .estimator import TwigEstimator, _safe_ratio


class PathEstimator:
    """Estimates single-path result cardinalities over a Twig XSKETCH.

    ``metrics`` and ``explain`` mirror :class:`TwigEstimator`: the
    optional registry counts per-step statistics lookups
    (``estimator_lookups_total{kind="path_step"}``), the optional
    recorder captures the per-chain trail.
    """

    def __init__(
        self,
        sketch: TwigXSketch,
        max_depth: int = DEFAULT_MAX_DESCENDANT_DEPTH,
        *,
        metrics: Optional[MetricsRegistry] = None,
        explain: Optional[ExplainRecorder] = None,
    ):
        self.sketch = sketch
        self.max_depth = max_depth
        self._explain = explain
        self._lookups = (
            None
            if metrics is None
            else metrics.counter(
                "estimator_lookups_total",
                "estimator statistics lookups, by kind",
                ["kind"],
            )
        )
        # Branch probabilities and value selectivities are shared with the
        # twig estimator; reuse its implementation on the same sketch.
        self._twig = TwigEstimator(
            sketch, max_depth, metrics=metrics, explain=explain
        )

    def estimate(self, path: Path) -> float:
        """Estimated number of elements in the path's result set."""
        total = 0.0
        for chain in _chain_expansions(
            self.sketch.graph, None, path, self.max_depth
        ):
            total += self._chain_estimate(chain)
        if self._explain is not None:
            self._explain.record(
                _explain.KIND_RESULT, "path cardinality", value=total
            )
        return total

    def estimate_query(self, query: TwigQuery) -> float:
        """Estimate a twig query that is a pure chain (no real branching).

        Raises:
            ValueError: when the query is not a chain of single children.
        """
        steps = []
        node: TwigNode | None = query.root
        while node is not None:
            steps.extend(node.path.steps)
            if len(node.children) > 1:
                raise ValueError("PathEstimator only handles chain queries")
            node = node.children[0] if node.children else None
        return self.estimate(Path(tuple(steps)))

    # ------------------------------------------------------------------
    def _chain_estimate(self, chain) -> float:
        graph = self.sketch.graph
        previous_id: int | None = None
        selected = 0.0
        frame = (
            None
            if self._explain is None
            else self._explain.enter(
                _explain.KIND_EMBEDDING, f"chain of {len(chain)} step(s)"
            )
        )
        for node_id, step in chain:
            node_size = graph.node(node_id).count
            if previous_id is None:
                reached = float(node_size)
            else:
                coverage = _safe_ratio(selected, graph.node(previous_id).count)
                reached = self.sketch.edge_child_count(previous_id, node_id) * coverage
            if self._lookups is not None:
                self._lookups.inc(kind="path_step")
            if step.value_pred is not None:
                reached *= self._twig.value_selectivity(node_id, step.value_pred)
            for branch in step.branches:
                alternatives = _embed_branch(
                    graph, node_id, branch, self.max_depth, EmbeddingBudget()
                )
                if not alternatives:
                    reached = 0.0
                    break
                reached *= self._twig._branch_any(node_id, alternatives)
            if self._explain is not None:
                self._explain.record(
                    _explain.KIND_STEP,
                    f"{graph.node(node_id).tag}#{node_id}",
                    "chain step",
                    reached,
                )
            if reached <= 0:
                selected = 0.0
                break
            selected = reached
            previous_id = node_id
        if frame is not None:
            self._explain.exit(frame, selected)
        return selected
