"""The TREEPARSE algorithm (paper Figure 7).

TREEPARSE walks a twig embedding depth-first and decides, per embedding
node, how the selectivity expression uses the node's histograms:

* the **expansion set** ``E_i`` — count dimensions that expand binding
  tuples toward the node's children (forward counts covered by a stored
  histogram);
* the **uncovered set** ``U_i`` — child edges covered by no histogram;
  their contribution falls back to the Forward Uniformity assumption;
* the **correlation set** ``D_i`` — backward-count dimensions whose edges
  were already counted at an ancestor ("covered"); they condition the
  node's distribution on the ancestor's expansion (Correlation Scope
  Independence).

Because a node may store several disjoint-scope histograms (see
:mod:`repro.synopsis.summary`), the plan groups the node's children by the
histogram covering their edge; dimensions of a histogram that are neither
expanded nor conditioned on are marginalized away, which is exactly the
paper's Forward Independence assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Optional

from ..query.values import ValuePredicate
from ..synopsis.distributions import EdgeRef
from ..synopsis.summary import EdgeHistogram, ExtendedValueSummary, TwigXSketch
from .embeddings import Embedding, EmbeddingNode


@dataclass
class HistogramUse:
    """How one stored histogram participates at one embedding node.

    Attributes:
        histogram: the stored histogram.
        expansion: dimension index → list of embedding children expanded by
            that dimension (the ``E_i`` part owned by this histogram).
        conditions: dimension index → the EdgeRef it conditions on (``D_i``);
            the concrete value comes from the ancestor context at
            estimation time.
        branch_conditions: dimension index → the branch chain whose
            existence that dimension witnesses.  A single-alternative
            branch predicate whose first edge is covered by this histogram
            is folded into the histogram factor — per point, the branch
            holds with probability ``1 − (1 − r)^c`` where ``c`` is the
            dimension's count and ``r`` the per-child satisfaction
            probability — so branch existence correlates with the sibling
            expansion counts instead of being assumed independent.
    """

    histogram: EdgeHistogram
    expansion: dict[int, list[EmbeddingNode]] = field(default_factory=dict)
    conditions: dict[int, EdgeRef] = field(default_factory=dict)
    branch_conditions: dict[int, EmbeddingNode] = field(default_factory=dict)

    def kept_dimensions(self) -> list[int]:
        """Dimensions that survive marginalization (E ∪ D ∪ branches)."""
        return sorted(
            set(self.expansion) | set(self.conditions) | set(self.branch_conditions)
        )


@dataclass
class ExtendedUse:
    """How one extended value histogram ``H^v(V, C...)`` participates.

    The value dimension absorbs either the node's own value predicate or a
    value-testing branch predicate (``[type = "Action"]``); the count
    dimensions expand the node's children *conditioned on that predicate*,
    which is exactly the value↔structure correlation the paper's extended
    histograms exist to capture.
    """

    summary: ExtendedValueSummary
    predicate: Optional[ValuePredicate]
    expansion: dict[int, list[EmbeddingNode]] = field(default_factory=dict)
    absorbed_branch: Optional[int] = None
    consumed_value_pred: bool = False


@dataclass
class NodePlan:
    """The per-node output of TREEPARSE.

    Attributes:
        node: the embedding node.
        uses: one entry per histogram that covers at least one child edge
            or usable backward count.
        uncovered: children whose edge no histogram covers (``U_i``).
        covered_refs: the edge refs this node adds to the traversal's
            ``covered`` set (its expansion dimensions).
        absorbed_branches: indexes into ``node.branches`` that were folded
            into a histogram use; the estimator's independent branch
            handling must skip them.
    """

    node: EmbeddingNode
    uses: list[HistogramUse] = field(default_factory=list)
    extended_uses: list[ExtendedUse] = field(default_factory=list)
    uncovered: list[EmbeddingNode] = field(default_factory=list)
    covered_refs: set[EdgeRef] = field(default_factory=set)
    absorbed_branches: set[int] = field(default_factory=set)
    value_pred_absorbed: bool = False


def tree_parse(
    embedding: Embedding,
    sketch: TwigXSketch,
    branch_conditioning: bool = True,
) -> dict[int, NodePlan]:
    """Run TREEPARSE over ``embedding``; returns plans keyed by ``id(node)``.

    Mirrors the paper's Figure 7: a depth-first traversal maintaining the
    set of covered edge refs; leaf nodes get empty plans.  With
    ``branch_conditioning`` (default), single-alternative branch
    predicates whose edge is covered by a histogram are absorbed into the
    histogram factor (see :class:`HistogramUse`); disabling it reproduces
    the pure independence treatment of branches.
    """
    plans: dict[int, NodePlan] = {}
    covered: set[EdgeRef] = set()

    def visit(node: EmbeddingNode) -> None:
        plan = NodePlan(node)
        plans[id(node)] = plan
        if node.children or node.branches:
            histograms = sketch.histograms_at(node.node_id)
            child_edges: dict[EdgeRef, list[EmbeddingNode]] = {}
            for child in node.children:
                child_edges.setdefault(
                    EdgeRef(node.node_id, child.node_id), []
                ).append(child)
            # single-alternative branch predicates, keyed by their first
            # edge: candidates for conditioning inside a histogram
            branch_edges: dict[EdgeRef, tuple[int, EmbeddingNode]] = {}
            if branch_conditioning:
                for index, alternatives in enumerate(node.branches):
                    if len(alternatives) == 1:
                        head = alternatives[0]
                        branch_edges.setdefault(
                            EdgeRef(node.node_id, head.node_id), (index, head)
                        )

            used: dict[int, HistogramUse] = {}
            assigned: set[EdgeRef] = set()
            absorbed: set[EdgeRef] = set()
            _plan_extended_uses(
                sketch, node, plan, child_edges, assigned
            )
            for histogram in histograms:
                use = HistogramUse(histogram)
                for dim, ref in enumerate(histogram.scope):
                    if (
                        ref.is_forward_at(node.node_id)
                        and ref in child_edges
                        and ref not in assigned
                    ):
                        use.expansion[dim] = child_edges[ref]
                        assigned.add(ref)
                    elif (
                        ref.is_forward_at(node.node_id)
                        and ref in branch_edges
                        and ref not in absorbed
                        and branch_edges[ref][0] not in plan.absorbed_branches
                    ):
                        branch_index, head = branch_edges[ref]
                        use.branch_conditions[dim] = head
                        plan.absorbed_branches.add(branch_index)
                        absorbed.add(ref)
                    elif not ref.is_forward_at(node.node_id) and ref in covered:
                        use.conditions[dim] = ref
                if use.expansion or use.branch_conditions:
                    used[id(histogram)] = use
                    plan.uses.append(use)
            for ref, children in child_edges.items():
                if ref not in assigned:
                    plan.uncovered.extend(children)
            plan.covered_refs = set(assigned)
            covered.update(assigned)
        for child in node.children:
            visit(child)

    visit(embedding.root)
    return plans


def _plan_extended_uses(
    sketch: TwigXSketch,
    node: EmbeddingNode,
    plan: NodePlan,
    child_edges: dict[EdgeRef, list[EmbeddingNode]],
    assigned: set[EdgeRef],
) -> None:
    """Match the node's extended value histograms against its predicates.

    An extended summary participates when its value dimension can absorb a
    predicate: the node's own value predicate (``value_ref`` None), or a
    single-alternative, single-step, value-testing branch whose node is the
    summary's ``value_ref`` target.  Count dimensions then claim the child
    edges they cover, taking precedence over plain edge histograms (they
    carry strictly more information for the predicated population).
    """
    for summary in sketch.extended_at(node.node_id):
        predicate = None
        absorbed_branch = None
        consumed_value_pred = False
        if (
            summary.value_tag is None
            and node.value_pred is not None
            and not plan.value_pred_absorbed
        ):
            predicate = node.value_pred
            consumed_value_pred = True
        elif summary.value_tag is not None:
            for index, alternatives in enumerate(node.branches):
                if index in plan.absorbed_branches or len(alternatives) != 1:
                    continue
                chain = alternatives[0]
                if (
                    sketch.graph.node(chain.node_id).tag == summary.value_tag
                    and chain.value_pred is not None
                    and not chain.children
                    and not chain.branches
                ):
                    predicate = chain.value_pred
                    absorbed_branch = index
                    break
        if predicate is None:
            continue
        use = ExtendedUse(
            summary, predicate,
            absorbed_branch=absorbed_branch,
            consumed_value_pred=consumed_value_pred,
        )
        for dim, ref in enumerate(summary.scope):
            if ref in child_edges and ref not in assigned:
                use.expansion[dim] = child_edges[ref]
                assigned.add(ref)
        plan.extended_uses.append(use)
        if absorbed_branch is not None:
            plan.absorbed_branches.add(absorbed_branch)
        if consumed_value_pred:
            plan.value_pred_absorbed = True
