"""Twig selectivity estimation over a Twig XSKETCH (paper Section 4).

The estimator evaluates, per embedding, the paper's selectivity expression

    s(T) = |n_0| · (Π_i Π_{C ∈ U_i} Σ F_i(C)) ·
           Σ_{E_1..E_m} F_0(E_0 | D_0) · ... · F_m(E_m | D_m)

using the TREEPARSE plan and the three statistical assumptions:

* **Forward Independence** — dimensions of a histogram that the query does
  not touch are marginalized away; counts held in different histograms (or
  no histogram) multiply independently.
* **Correlation Scope Independence** — ``F(E | D)`` is computed as
  ``H(E ∪ D) / H(D)`` by conditioning the histogram's points on the
  ancestor values in ``D``; backward counts outside the stored scope are
  dropped from the conditioning.
* **Forward Uniformity** — a child edge covered by no histogram
  contributes its average child count ``|n_i → n_j| / |n_i|``.

Value predicates multiply in the node's value-histogram selectivity
(independence of structure and value, matching the measured prototype);
branch predicates multiply in an existence probability computed from edge
stabilities, stored count distributions, and uniformity fallbacks (the
rules reconstructed from the conference text; see DESIGN.md §3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..histogram import ops
from ..obs import explain as _explain
from ..obs.explain import ExplainRecorder
from ..obs.metrics import MetricsRegistry
from ..query.ast import TwigQuery
from ..synopsis.distributions import EdgeRef
from ..synopsis.summary import TwigXSketch
from .embeddings import (
    DEFAULT_MAX_DESCENDANT_DEPTH,
    Embedding,
    EmbeddingBudget,
    EmbeddingNode,
    enumerate_embeddings,
)
from .treeparse import NodePlan, tree_parse

Context = tuple[tuple[EdgeRef, float], ...]


def _safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with the degenerate cases pinned.

    A synopsis node with an empty extent contributes no matches, so a
    zero (or invalid) denominator yields 0.0 rather than
    ``ZeroDivisionError``; a non-finite ratio (NaN/inf from corrupted
    counts) is likewise clamped to 0.0 so estimates stay finite.
    """
    if denominator == 0:
        return 0.0
    try:
        ratio = numerator / denominator
    except (ZeroDivisionError, OverflowError):
        return 0.0
    if not math.isfinite(ratio):
        return 0.0
    return ratio


class BatchContext:
    """Shared caches for a batch of estimates over one sketch.

    Reused across :meth:`TwigEstimator.estimate_many` /
    :meth:`TwigEstimator.report_many` calls (and across queries within
    one call):

    * ``plans`` — query text → prepared embeddings (enumeration +
      TREEPARSE output), so repeated queries skip planning entirely;
    * ``memo`` — (plan signature, relevant ancestor context) → subtree
      factor.  The signature (:func:`_plan_keys`) captures the full
      per-node plan — histogram identities, expansion/condition/branch
      structure, predicates — so two embedding nodes with equal
      signatures compute the same factor by construction, even across
      different queries (common path suffixes share work);
    * ``hits`` / ``misses`` — cross-embedding memo traffic, for the
      batch counters.

    ``keyed`` controls the memo's key scheme.  Keyed contexts (the
    default for explicitly constructed ones) pay for computing plan
    signatures up front, which only amortizes when plans get reused —
    across calls (a serving worker's lifetime) or across structurally
    overlapping queries.  :meth:`TwigEstimator.estimate_many` without an
    explicit context uses an unkeyed one: node-identity memo keys, zero
    signature overhead, and repeated query texts still share everything
    through ``plans``.

    A context is only valid for the :class:`TwigEstimator` (sketch +
    settings) it was first used with; signatures embed histogram object
    identities that do not transfer between sketches.
    """

    __slots__ = ("plans", "memo", "interned", "hits", "misses", "keyed")

    def __init__(self, keyed: bool = True):
        self.plans: dict[str, tuple[list, bool]] = {}
        self.memo: dict[tuple, float] = {}
        self.interned: dict[tuple, int] = {}
        self.hits = 0
        self.misses = 0
        self.keyed = keyed

    def intern(self, signature: tuple) -> int:
        """Map a (large) plan signature to a small stable integer, so
        memo keys hash in O(1) after the first sighting."""
        key = self.interned.get(signature)
        if key is None:
            key = len(self.interned)
            self.interned[signature] = key
        return key


@dataclass(frozen=True)
class EstimateReport:
    """An estimate plus diagnostics.

    Attributes:
        selectivity: the estimated number of binding tuples.
        embeddings: how many embeddings contributed.
        truncated: True when embedding enumeration hit its cap.
    """

    selectivity: float
    embeddings: int
    truncated: bool


class TwigEstimator:
    """Estimates twig-query selectivities over one :class:`TwigXSketch`.

    Args:
        sketch: the synopsis to estimate over.
        max_depth: cap on ``//`` expansion length.
        max_embeddings: cap on enumerated embeddings per query.
        metrics: optional registry for lookup counters — ``None`` (the
            default) records nothing, keeping XBUILD's inner estimation
            loop free of instrumentation cost.
        explain: optional :class:`~repro.obs.explain.ExplainRecorder`
            capturing the expansion trail and histogram lookups.
    """

    def __init__(
        self,
        sketch: TwigXSketch,
        max_depth: int = DEFAULT_MAX_DESCENDANT_DEPTH,
        max_embeddings: int = 4096,
        branch_conditioning: bool = True,
        *,
        metrics: Optional[MetricsRegistry] = None,
        explain: Optional[ExplainRecorder] = None,
    ):
        self.sketch = sketch
        self.max_depth = max_depth
        self.max_embeddings = max_embeddings
        #: condition joint histograms on covered branch predicates instead
        #: of assuming branch/count independence (ablation E11)
        self.branch_conditioning = branch_conditioning
        self._explain = explain
        # per-instance caches over static synopsis facts (the sketch is
        # immutable for the estimator's lifetime): node labels, average
        # child counts, and positive-count probabilities per edge
        self._label_cache: dict[int, str] = {}
        self._average_cache: dict[tuple[int, int], float] = {}
        self._positive_cache: dict[tuple[int, int], float] = {}
        self._lookups = (
            None
            if metrics is None
            else metrics.counter(
                "estimator_lookups_total",
                "estimator statistics lookups, by kind",
                ["kind"],
            )
        )
        self._estimates = (
            None
            if metrics is None
            else metrics.counter(
                "estimator_estimates_total",
                "twig estimates computed",
            )
        )
        self._embeddings_counter = (
            None
            if metrics is None
            else metrics.counter(
                "estimator_embeddings_total",
                "embeddings contributing to estimates",
            )
        )

    def _node_label(self, node_id: int) -> str:
        label = self._label_cache.get(node_id)
        if label is None:
            label = f"{self.sketch.graph.node(node_id).tag}#{node_id}"
            self._label_cache[node_id] = label
        return label

    def _average_child_count(self, parent_id: int, child_id: int) -> float:
        """``|parent -> child| / |parent|``, cached (static per sketch)."""
        key = (parent_id, child_id)
        average = self._average_cache.get(key)
        if average is None:
            average = _safe_ratio(
                self.sketch.edge_child_count(parent_id, child_id),
                self.sketch.graph.node(parent_id).count,
            )
            self._average_cache[key] = average
        return average

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def estimate(self, query: TwigQuery) -> float:
        """Estimated selectivity ``s(T_Q)`` (sum over embeddings)."""
        return self.report(query).selectivity

    def report(self, query: TwigQuery) -> EstimateReport:
        """Estimate with diagnostics."""
        budget = EmbeddingBudget(self.max_embeddings)
        embeddings = enumerate_embeddings(
            query, self.sketch.graph, self.max_depth, budget
        )
        if self._explain is not None:
            self._explain.record(
                _explain.KIND_QUERY,
                query.text().replace("\n", " "),
                f"{len(embeddings)} embeddings"
                + (", truncated" if budget.truncated else ""),
            )
        total = sum(self.estimate_embedding(e) for e in embeddings)
        if self._estimates is not None:
            self._estimates.inc()
            self._embeddings_counter.inc(len(embeddings))
        if self._explain is not None:
            self._explain.record(
                _explain.KIND_RESULT, "selectivity", value=total
            )
        return EstimateReport(total, len(embeddings), budget.truncated)

    def estimate_many(
        self,
        queries: Sequence[TwigQuery],
        *,
        context: Optional[BatchContext] = None,
    ) -> list[float]:
        """Batch estimation: one selectivity per query, in query order.

        Values are bit-identical to per-query :meth:`estimate` — the
        batch caches memoize pure functions of the query plan — but
        queries sharing plans or subtree structure pay once.  Pass a
        :class:`BatchContext` to carry the caches across calls (e.g. a
        serving worker's lifetime).
        """
        return [
            report.selectivity
            for report in self.report_many(queries, context=context)
        ]

    def report_many(
        self,
        queries: Sequence[TwigQuery],
        *,
        context: Optional[BatchContext] = None,
    ) -> list[EstimateReport]:
        """Batch :meth:`report`; see :meth:`estimate_many`."""
        if self._explain is not None:
            # explain trails are per-query by contract; shared memo hits
            # would hide lookups from the recording, so fall back
            return [self.report(query) for query in queries]
        if context is None:
            # a private one-call context: skip the signature keying —
            # it only pays off when plans outlive the call
            context = BatchContext(keyed=False)
        return [self._report_batched(query, context) for query in queries]

    def _report_batched(
        self, query: TwigQuery, context: BatchContext
    ) -> EstimateReport:
        key = query.text()
        entry = context.plans.get(key)
        if entry is None:
            budget = EmbeddingBudget(self.max_embeddings)
            embeddings = enumerate_embeddings(
                query, self.sketch.graph, self.max_depth, budget
            )
            prepared = []
            for embedding in embeddings:
                plans = tree_parse(
                    embedding, self.sketch, self.branch_conditioning
                )
                needed = _needed_backward_refs(embedding.root, plans)
                keys = (
                    _plan_keys(embedding.root, plans, context)
                    if context.keyed
                    else None
                )
                prepared.append((embedding.root, plans, needed, keys))
            entry = (prepared, budget.truncated)
            context.plans[key] = entry
        prepared, truncated = entry
        total = 0.0
        for root, plans, needed, keys in prepared:
            base = float(self.sketch.graph.node(root.node_id).count)
            total += base * self._expand(
                root, plans, (), needed, context.memo,
                keys=keys, batch=context,
            )
        if self._estimates is not None:
            self._estimates.inc()
            self._embeddings_counter.inc(len(prepared))
        return EstimateReport(total, len(prepared), truncated)

    def estimate_embedding(self, embedding: Embedding) -> float:
        """The selectivity of one embedding: ``|n_0| ·`` root expansion."""
        plans = tree_parse(embedding, self.sketch, self.branch_conditioning)
        root = embedding.root
        base = float(self.sketch.graph.node(root.node_id).count)
        needed = _needed_backward_refs(root, plans)
        memo: dict[tuple[int, Context], float] = {}
        if self._explain is None:
            return base * self._expand(root, plans, (), needed, memo)
        frame = self._explain.enter(
            _explain.KIND_EMBEDDING,
            f"root {self._node_label(root.node_id)}",
            f"|root| = {base:g}",
        )
        total = base * self._expand(root, plans, (), needed, memo)
        self._explain.exit(frame, total)
        return total

    # ------------------------------------------------------------------
    # the recursive expansion
    # ------------------------------------------------------------------
    def _expand(
        self,
        node: EmbeddingNode,
        plans: dict[int, NodePlan],
        context: Context,
        needed: dict[int, frozenset[EdgeRef]],
        memo: dict[tuple, float],
        keys: Optional[dict[int, int]] = None,
        batch: Optional[BatchContext] = None,
    ) -> float:
        """Expected binding tuples of ``node``'s subtree per element of its
        synopsis node, given the ancestor count assignment ``context``.

        ``keys`` (batch mode) substitutes plan-signature keys for node
        identities, so the memo is shared across embeddings and queries;
        ``batch`` tracks the shared-memo hit counters.
        """
        relevant = tuple(
            item for item in context if item[0] in needed[id(node)]
        )
        key = ((id(node) if keys is None else keys[id(node)]), relevant)
        if key in memo:
            if batch is not None:
                batch.hits += 1
            if self._lookups is not None:
                self._lookups.inc(kind="memo")
            if self._explain is not None:
                self._explain.record(
                    _explain.KIND_MEMO,
                    self._node_label(node.node_id),
                    "cached subtree factor",
                    memo[key],
                )
            return memo[key]
        if batch is not None:
            batch.misses += 1

        frame = (
            None
            if self._explain is None
            else self._explain.enter(
                _explain.KIND_EXPAND, self._node_label(node.node_id)
            )
        )
        plan = plans[id(node)]
        result = self._local_factor(
            node,
            dict(relevant),
            plan.absorbed_branches,
            skip_value_pred=plan.value_pred_absorbed,
        )
        if result > 0:
            for use in plan.extended_uses:
                result *= self._extended_factor(
                    node, use, plans, context, needed, memo, keys, batch
                )
                if result == 0:
                    break
        if result > 0 and (node.children or plan.uses):
            for child in plan.uncovered:
                # Forward Uniformity: |n_i -> n_j| / |n_i| per element.
                average = self._average_child_count(
                    node.node_id, child.node_id
                )
                if self._lookups is not None:
                    self._lookups.inc(kind="uniform")
                if self._explain is not None:
                    self._explain.record(
                        _explain.KIND_UNIFORM,
                        f"edge {self._node_label(node.node_id)} -> "
                        f"{self._node_label(child.node_id)}",
                        "forward-uniformity avg child count",
                        average,
                    )
                result *= average
                if result == 0:
                    break
                result *= self._expand(
                    child, plans, context, needed, memo, keys, batch
                )
            for use in plan.uses:
                if result == 0:
                    break
                result *= self._histogram_factor(
                    node, use, plans, context, needed, memo, keys, batch
                )
        memo[key] = result
        if frame is not None:
            self._explain.exit(frame, result)
        return result

    def _histogram_factor(
        self,
        node: EmbeddingNode,
        use,
        plans: dict[int, NodePlan],
        context: Context,
        needed: dict[int, frozenset[EdgeRef]],
        memo: dict[tuple, float],
        keys: Optional[dict[int, int]] = None,
        batch: Optional[BatchContext] = None,
    ) -> float:
        """``Σ_points mass · Π_E (count · child expansion)`` conditioned on D.

        Marginalizes unused dimensions first (Forward Independence), then
        conditions on the ancestor values of the D dimensions (Correlation
        Scope Independence).
        """
        context_map = dict(context)
        kept = use.kept_dimensions()
        points = use.histogram.points()
        if len(kept) < use.histogram.dimensions:
            points = ops.marginalize(points, kept)
        remap = {dim: position for position, dim in enumerate(kept)}

        assignment = {
            remap[dim]: context_map[ref]
            for dim, ref in use.conditions.items()
            if ref in context_map
        }
        if assignment:
            surviving = [p for p in remap.values() if p not in assignment]
            points = ops.condition(points, assignment)
            remap = {
                dim: surviving.index(position)
                for dim, position in remap.items()
                if position not in assignment
            }

        branch_satisfaction = {
            dim: self._per_child_satisfaction(chain)
            for dim, chain in use.branch_conditions.items()
        }

        total = 0.0
        for vector, mass in points:
            term = mass
            extended: Optional[Context] = None
            for dim, chain_rate in branch_satisfaction.items():
                count = vector[remap[dim]]
                if count <= 0 or chain_rate <= 0:
                    term = 0.0
                    break
                # P(some witness child satisfies the branch | count)
                term *= 1.0 - (1.0 - chain_rate) ** count
            if term == 0:
                continue
            for dim, children in use.expansion.items():
                count = vector[remap[dim]]
                if count <= 0:
                    term = 0.0
                    break
                ref = use.histogram.scope[dim]
                if extended is None:
                    extended = context + tuple(
                        (use.histogram.scope[d], vector[remap[d]])
                        for d in use.expansion
                    )
                for child in children:
                    term *= count * self._expand(
                        child, plans, extended, needed, memo, keys, batch
                    )
                    if term == 0:
                        break
                if term == 0:
                    break
            total += term
        if self._lookups is not None:
            self._lookups.inc(kind="histogram")
        if self._explain is not None:
            scope = ",".join(
                f"{ref.source}->{ref.target}" for ref in use.histogram.scope
            )
            self._explain.record(
                _explain.KIND_HISTOGRAM,
                f"H[{scope}] at {self._node_label(node.node_id)}",
                f"{len(points)} points, {len(assignment)} conditioned, "
                f"{len(use.expansion)} expanding dims",
                total,
            )
        return total

    # ------------------------------------------------------------------
    # local predicates
    # ------------------------------------------------------------------
    def _extended_factor(
        self,
        node: EmbeddingNode,
        use,
        plans,
        context: Context,
        needed,
        memo,
        keys: Optional[dict[int, int]] = None,
        batch: Optional[BatchContext] = None,
    ) -> float:
        """One extended-value-histogram factor:

        ``P(value predicate) × Σ_points mass · Π (count · child expansion)``

        over the count distribution *conditioned on the predicate* — the
        paper's value↔structure correlation in action.
        """
        match = use.summary.histogram.match_mass(use.predicate)
        if self._lookups is not None:
            self._lookups.inc(kind="extended")
        if self._explain is not None:
            self._explain.record(
                _explain.KIND_EXTENDED,
                f"extended value histogram at "
                f"{self._node_label(node.node_id)}",
                f"P(value pred) with {len(use.expansion)} expanding dims",
                match,
            )
        if match <= 0:
            return 0.0
        factor = match
        if use.expansion:
            points = use.summary.histogram.conditional_points(use.predicate)
            total = 0.0
            for vector, mass in points:
                term = mass
                for dim, children in use.expansion.items():
                    count = vector[dim]
                    if count <= 0:
                        term = 0.0
                        break
                    for child in children:
                        term *= count * self._expand(
                            child, plans, context, needed, memo, keys, batch
                        )
                        if term == 0:
                            break
                    if term == 0:
                        break
                total += term
            factor *= total
        return factor

    def _local_factor(
        self,
        node: EmbeddingNode,
        context_map: dict[EdgeRef, float],
        absorbed_branches: frozenset | set = frozenset(),
        skip_value_pred: bool = False,
    ) -> float:
        """Value-predicate selectivity × branch-existence probabilities.

        Branches listed in ``absorbed_branches`` are handled inside a
        histogram factor (branch conditioning or an extended value
        histogram) and skipped here, as is the node's own value predicate
        when an extended histogram consumed it.
        """
        factor = 1.0
        if node.value_pred is not None and not skip_value_pred:
            factor *= self.value_selectivity(node.node_id, node.value_pred)
        for index, alternatives in enumerate(node.branches):
            if index in absorbed_branches:
                continue
            factor *= self._branch_any(node.node_id, alternatives)
            if factor == 0:
                return 0.0
        return factor

    def value_selectivity(self, node_id: int, predicate) -> float:
        """Fraction of the node's elements whose value satisfies ``predicate``.

        Elements without values (no value histogram stored) cannot match.
        """
        summary = self.sketch.value_summary(node_id)
        selectivity = (
            0.0 if summary is None
            else summary.histogram.selectivity(predicate)
        )
        if self._lookups is not None:
            self._lookups.inc(kind="value")
        if self._explain is not None:
            self._explain.record(
                _explain.KIND_VALUE,
                f"value predicate at {self._node_label(node_id)}",
                "no value histogram stored" if summary is None else "",
                selectivity,
            )
        return selectivity

    # ------------------------------------------------------------------
    # branch predicates
    # ------------------------------------------------------------------
    def _branch_any(
        self, node_id: int, alternatives: Sequence[EmbeddingNode]
    ) -> float:
        """P(at least one alternative chain exists): 1 − Π(1 − p_i)."""
        miss = 1.0
        for chain in alternatives:
            miss *= 1.0 - self._branch_chain(node_id, chain)
            if miss == 0:
                break
        if self._lookups is not None:
            self._lookups.inc(kind="branch")
        if self._explain is not None:
            self._explain.record(
                _explain.KIND_BRANCH,
                f"branch at {self._node_label(node_id)}",
                f"{len(alternatives)} alternative chain(s)",
                1.0 - miss,
            )
        return 1.0 - miss

    def _branch_chain(self, parent_id: int, chain: EmbeddingNode) -> float:
        """P(an element of ``parent_id`` has the existential chain).

        Decomposes into P(≥ 1 child in the chain head's node) times the
        probability that a child satisfies the rest; with ``r`` the child's
        own satisfaction probability and ``k̄`` the mean child count among
        elements that have children, the head factor is
        ``q · (1 − (1 − r)^k̄)`` — exact for r ∈ {0, 1}.
        """
        graph = self.sketch.graph
        edge = graph.edge(parent_id, chain.node_id)
        if edge is None:
            return 0.0
        mean_count = self._average_child_count(parent_id, chain.node_id)
        probability_positive = self._positive_probability(
            parent_id, chain.node_id, edge, mean_count
        )
        if probability_positive <= 0:
            return 0.0

        per_child = self._per_child_satisfaction(chain)
        if per_child >= 1.0:
            return probability_positive
        average_given_positive = max(1.0, mean_count / probability_positive)
        return probability_positive * (
            1.0 - (1.0 - per_child) ** average_given_positive
        )

    def _per_child_satisfaction(self, chain: EmbeddingNode) -> float:
        """P(one specific child of the chain's node satisfies the chain):
        its own predicates times the probability of the remaining steps."""
        rate = self._local_factor(chain, {})
        if chain.children:
            rate *= self._branch_chain(chain.node_id, chain.children[0])
        return min(1.0, max(0.0, rate))

    def _positive_probability(
        self, parent_id: int, child_id: int, edge, mean_count: float
    ) -> float:
        """P(element of parent has ≥ 1 child in child node).

        F-stable edge → 1; a stored histogram covering the edge → mass of
        positive counts; otherwise ``min(1, mean count)`` (uniformity).
        """
        cached = self._positive_cache.get((parent_id, child_id))
        if cached is not None:
            return cached
        if edge.forward_stable:
            probability = 1.0
        else:
            ref = EdgeRef(parent_id, child_id)
            for histogram in self.sketch.histograms_at(parent_id):
                dim = histogram.index_of(ref)
                if dim is not None:
                    probability = ops.mass_where_positive(
                        histogram.points(), dim
                    )
                    break
            else:
                probability = min(1.0, mean_count)
        self._positive_cache[(parent_id, child_id)] = probability
        return probability


def _needed_backward_refs(
    root: EmbeddingNode, plans: dict[int, NodePlan]
) -> dict[int, frozenset[EdgeRef]]:
    """For each embedding node, the backward refs its subtree conditions on.

    Used to memoize :meth:`TwigEstimator._expand` on just the relevant part
    of the ancestor context.
    """
    needed: dict[int, frozenset[EdgeRef]] = {}

    def visit(node: EmbeddingNode) -> frozenset[EdgeRef]:
        refs: set[EdgeRef] = set()
        plan = plans[id(node)]
        for use in plan.uses:
            refs.update(use.conditions.values())
        for child in node.children:
            refs |= visit(child)
        result = frozenset(refs)
        needed[id(node)] = result
        return result

    visit(root)
    return needed


def _plan_keys(
    root: EmbeddingNode, plans: dict[int, NodePlan], context: BatchContext
) -> dict[int, int]:
    """Interned plan signatures for every embedding node, keyed by id.

    The signature is a pure function of everything
    :meth:`TwigEstimator._expand` reads for the node's subtree — the
    synopsis node, value/branch predicates, absorption flags, child
    order, and each histogram use's identity, expansion, conditioning,
    and branch-conditioning structure (child participation enters as the
    children's own interned keys, computed bottom-up).  Two nodes with
    equal keys therefore produce bit-identical subtree factors for equal
    relevant contexts, which is what lets the batch memo be shared
    across embeddings and queries.

    Signatures embed histogram/summary *object identities*, so keys are
    only comparable within one sketch (one :class:`BatchContext`).
    """
    keys: dict[int, int] = {}

    def visit(node: EmbeddingNode) -> int:
        for child in node.children:
            visit(child)
        plan = plans[id(node)]
        use_sigs = tuple(
            (
                id(use.histogram),
                tuple(
                    (dim, tuple(keys[id(child)] for child in children))
                    for dim, children in use.expansion.items()
                ),
                tuple(use.conditions.items()),
                tuple(
                    (dim, chain.signature())
                    for dim, chain in use.branch_conditions.items()
                ),
            )
            for use in plan.uses
        )
        ext_sigs = tuple(
            (
                id(use.summary),
                use.predicate,
                tuple(
                    (dim, tuple(keys[id(child)] for child in children))
                    for dim, children in use.expansion.items()
                ),
                use.absorbed_branch,
                use.consumed_value_pred,
            )
            for use in plan.extended_uses
        )
        signature = (
            node.node_id,
            node.value_pred,
            plan.value_pred_absorbed,
            tuple(sorted(plan.absorbed_branches)),
            tuple(
                tuple(chain.signature() for chain in alternative)
                for alternative in node.branches
            ),
            tuple(keys[id(child)] for child in plan.uncovered),
            bool(node.children),
            use_sigs,
            ext_sigs,
        )
        key = context.intern(signature)
        keys[id(node)] = key
        return key

    visit(root)
    return keys
