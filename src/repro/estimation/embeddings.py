"""Maximal twig expansion and synopsis embeddings (paper Section 4).

The estimation framework first rewrites a twig query into *maximal* form —
every twig node carries a single navigational step — by (a) expanding each
``//`` operator into the valid synopsis paths it can traverse and
(b) splitting multi-step paths into chains of twig nodes.  Both rewrites
preserve selectivity on tree data because every element is reached through
a unique chain of intermediates.

A maximal twig is then matched onto concrete synopsis nodes, giving an
*embedding*: a tree of :class:`EmbeddingNode` objects, each naming one
synopsis node and carrying the step's value predicate and branch
predicates (themselves embedded as alternative chains).  The selectivity
of the query is the sum of the selectivities of its embeddings, which
:mod:`repro.estimation.estimator` evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..errors import EstimationError
from ..query.ast import DESCENDANT, Path, Step, TwigNode, TwigQuery
from ..query.values import ValuePredicate
from ..synopsis.graph import GraphSynopsis

#: Default cap on the length of a ``//`` expansion (synopsis hops).
DEFAULT_MAX_DESCENDANT_DEPTH = 12

#: Default cap on the number of embeddings enumerated per query.  When the
#: cap is hit the remaining embeddings are dropped (documented truncation;
#: the estimator reports it via :class:`EmbeddingBudget`).
DEFAULT_MAX_EMBEDDINGS = 4096

#: Safety cap on the number of synopsis walks explored per ``//`` step.
MAX_DESCENDANT_EXPLORATION = 20_000

#: Safety cap on the number of chains *yielded* per ``//`` step; on dense
#: cyclic synopses (adversarial inputs) the walk space is exponential and
#: the longest expansions carry vanishing selectivity anyway.
MAX_DESCENDANT_CHAINS = 256


class EmbeddingBudget:
    """Enumeration budget shared across one query's expansion.

    The limit caps the number of partial embeddings kept per twig node
    (and thus the number of complete embeddings); hitting it anywhere
    marks the enumeration as truncated.
    """

    def __init__(self, limit: int = DEFAULT_MAX_EMBEDDINGS):
        self.limit = limit
        self.truncated = False

    def full(self, collected: int) -> bool:
        """True (and mark truncated) when ``collected`` reached the limit."""
        if collected >= self.limit:
            self.truncated = True
            return True
        return False


@dataclass
class EmbeddingNode:
    """One node of a twig embedding.

    Attributes:
        node_id: the synopsis node this twig node is matched to.
        value_pred: the step's value predicate, if any.
        branches: branch predicates — each entry is the list of alternative
            existential chains (EmbeddingNode trees with at most one child
            each) the branch path can embed into.
        children: embeddings of the twig node's children (plus chain
            intermediates created by maximal expansion).
    """

    node_id: int
    value_pred: Optional[ValuePredicate] = None
    branches: list[list["EmbeddingNode"]] = field(default_factory=list)
    children: list["EmbeddingNode"] = field(default_factory=list)

    def iter_subtree(self) -> Iterator["EmbeddingNode"]:
        """Depth-first pre-order over the embedding (not into branches)."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def signature(self) -> tuple:
        """Hashable structural identity (used to deduplicate embeddings).

        Cached on first call: embedding nodes are only mutated while
        enumeration assembles them, and nothing asks for a signature
        until a root is complete — afterwards every consumer (dedup,
        batch-memo keys) sees the same frozen structure, and the cache
        turns the ancestor-recomputes-descendants recursion linear.
        """
        sig = self.__dict__.get("_signature")
        if sig is None:
            sig = (
                self.node_id,
                self.value_pred,
                tuple(
                    tuple(chain.signature() for chain in alternative)
                    for alternative in self.branches
                ),
                tuple(child.signature() for child in self.children),
            )
            self.__dict__["_signature"] = sig
        return sig


@dataclass(frozen=True)
class Embedding:
    """A complete twig embedding: one way the query maps onto the synopsis."""

    root: EmbeddingNode

    def nodes(self) -> list[EmbeddingNode]:
        """All embedding nodes, depth-first pre-order."""
        return list(self.root.iter_subtree())


def _chain_expansions(
    synopsis: GraphSynopsis,
    context: Optional[int],
    path: Path,
    max_depth: int,
) -> Iterator[list[tuple[int, Step]]]:
    """Enumerate synopsis chains matching ``path`` from ``context``.

    Yields lists of ``(synopsis node id, step)`` pairs; ``//`` steps insert
    intermediate pairs whose step is a bare tag step (no predicates), and
    the matched step itself lands on the chain's last pair.  A ``context``
    of None means the absolute position: the first step matches any
    synopsis node with its tag (extent semantics, mirroring the exact
    evaluator).
    """

    def continuations(
        current: Optional[int], step: Step
    ) -> Iterator[list[tuple[int, Step]]]:
        if current is None:
            for node in synopsis.nodes_with_tag(step.tag):
                yield [(node.node_id, step)]
            return
        if step.axis != DESCENDANT:
            for candidate in synopsis.children_of(current):
                if synopsis.node(candidate.target).tag == step.tag:
                    yield [(candidate.target, step)]
            return
        # Descendant axis: DFS over synopsis *walks* of length >= 1.  Walks
        # may revisit nodes (recursive tags like section/section produce
        # legitimate repeated synopsis nodes); termination comes from the
        # depth cap plus a global exploration guard.
        explored = 0
        yielded = 0
        # breadth-first so shorter (higher-selectivity) chains come first
        # when the yield cap truncates the enumeration
        queue: list[list[int]] = [
            [edge.target] for edge in synopsis.children_of(current)
        ]
        position = 0
        while position < len(queue):
            chain = queue[position]
            position += 1
            tail = chain[-1]
            if synopsis.node(tail).tag == step.tag:
                yielded += 1
                if yielded > MAX_DESCENDANT_CHAINS:
                    return
                yield [
                    (node_id, Step(synopsis.node(node_id).tag))
                    for node_id in chain[:-1]
                ] + [(tail, step)]
            if len(chain) < max_depth:
                for edge in synopsis.children_of(tail):
                    explored += 1
                    if explored > MAX_DESCENDANT_EXPLORATION:
                        return
                    queue.append(chain + [edge.target])

    def recurse(
        current: Optional[int], steps: Sequence[Step]
    ) -> Iterator[list[tuple[int, Step]]]:
        head, rest = steps[0], steps[1:]
        for prefix in continuations(current, head):
            if not rest:
                yield prefix
                continue
            for suffix in recurse(prefix[-1][0], rest):
                yield prefix + suffix

    yield from recurse(context, path.steps)


def _embed_branch(
    synopsis: GraphSynopsis,
    context: int,
    branch: Path,
    max_depth: int,
    budget: EmbeddingBudget,
) -> list[EmbeddingNode]:
    """All alternative existential chains for a branch predicate."""
    alternatives: list[EmbeddingNode] = []
    for chain in _chain_expansions(synopsis, context, branch, max_depth):
        head: Optional[EmbeddingNode] = None
        tail: Optional[EmbeddingNode] = None
        valid = True
        for node_id, step in chain:
            embedded = EmbeddingNode(node_id, step.value_pred)
            for nested in step.branches:
                nested_alternatives = _embed_branch(
                    synopsis, node_id, nested, max_depth, budget
                )
                if not nested_alternatives:
                    valid = False
                    break
                embedded.branches.append(nested_alternatives)
            if not valid:
                break
            if head is None:
                head = embedded
            else:
                tail.children.append(embedded)
            tail = embedded
        if valid and head is not None:
            alternatives.append(head)
    return alternatives


def enumerate_embeddings(
    query: TwigQuery,
    synopsis: GraphSynopsis,
    max_depth: int = DEFAULT_MAX_DESCENDANT_DEPTH,
    budget: Optional[EmbeddingBudget] = None,
) -> list[Embedding]:
    """All (deduplicated) embeddings of ``query`` over ``synopsis``.

    Branch predicates that cannot be embedded anywhere make the candidate
    embedding invalid (its estimate would be zero).  Enumeration stops at
    the budget's limit; check ``budget.truncated`` afterwards when you
    supplied one.
    """
    budget = budget or EmbeddingBudget()

    def embed_twig(node: TwigNode, context: Optional[int]) -> list[EmbeddingNode]:
        results: list[EmbeddingNode] = []
        for chain in _chain_expansions(synopsis, context, node.path, max_depth):
            if budget.full(len(results)):
                return results
            head: Optional[EmbeddingNode] = None
            tail: Optional[EmbeddingNode] = None
            valid = True
            for node_id, step in chain:
                embedded = EmbeddingNode(node_id, step.value_pred)
                for branch in step.branches:
                    alternatives = _embed_branch(
                        synopsis, node_id, branch, max_depth, budget
                    )
                    if not alternatives:
                        valid = False
                        break
                    embedded.branches.append(alternatives)
                if not valid:
                    break
                if head is None:
                    head = embedded
                else:
                    tail.children.append(embedded)
                tail = embedded
            if not valid or head is None:
                continue
            # Attach the twig node's children below the chain's last node.
            child_sets: list[list[EmbeddingNode]] = []
            ok = True
            for child in node.children:
                embedded_children = embed_twig(child, tail.node_id)
                if not embedded_children:
                    ok = False
                    break
                child_sets.append(embedded_children)
            if not ok:
                continue
            for combination in _product(child_sets):
                if budget.full(len(results)):
                    return results
                clone = _clone_chain(head)
                clone_tail = clone
                while clone_tail.children:
                    clone_tail = clone_tail.children[0]
                clone_tail.children.extend(combination)
                results.append(clone)
        return results

    roots = embed_twig(query.root, None)
    unique: dict[tuple, Embedding] = {}
    for root in roots:
        unique.setdefault(root.signature(), Embedding(root))
    return list(unique.values())


def _product(sets: list[list[EmbeddingNode]]) -> Iterator[list[EmbeddingNode]]:
    if not sets:
        yield []
        return
    head, rest = sets[0], sets[1:]
    for choice in head:
        for remainder in _product(rest):
            yield [choice] + remainder


def _clone_chain(node: EmbeddingNode) -> EmbeddingNode:
    clone = EmbeddingNode(node.node_id, node.value_pred, list(node.branches))
    if node.children:
        clone.children = [_clone_chain(node.children[0])]
    return clone


def maximal_twigs(
    query: TwigQuery,
    synopsis: GraphSynopsis,
    max_depth: int = DEFAULT_MAX_DESCENDANT_DEPTH,
) -> list[TwigQuery]:
    """The set of maximal twig queries of ``query`` over ``synopsis``.

    Every node of a maximal twig carries a single-step path (paper
    Figure 5).  Distinct embeddings that share tag structure collapse to
    one maximal twig.
    """
    embeddings = enumerate_embeddings(query, synopsis, max_depth)

    def to_twig(node: EmbeddingNode, counter: list[int]) -> TwigNode:
        step = Step(
            synopsis.node(node.node_id).tag,
            value_pred=node.value_pred,
            branches=tuple(
                _branch_path(synopsis, alternatives[0])
                for alternatives in node.branches
            ),
        )
        twig_node = TwigNode(f"t{counter[0]}", Path((step,)))
        counter[0] += 1
        for child in node.children:
            twig_node.add_child(to_twig(child, counter))
        return twig_node

    unique: dict[str, TwigQuery] = {}
    for embedding in embeddings:
        candidate = TwigQuery(to_twig(embedding.root, [0]))
        unique.setdefault(candidate.text(), candidate)
    return list(unique.values())


def _branch_path(synopsis: GraphSynopsis, chain: EmbeddingNode) -> Path:
    steps: list[Step] = []
    current: Optional[EmbeddingNode] = chain
    while current is not None:
        steps.append(
            Step(synopsis.node(current.node_id).tag, value_pred=current.value_pred)
        )
        current = current.children[0] if current.children else None
    return Path(tuple(steps))


def validate_embedding(embedding: Embedding, synopsis: GraphSynopsis) -> None:
    """Check that every embedding edge exists in the synopsis (tests)."""
    for node in embedding.nodes():
        for child in node.children:
            if synopsis.edge(node.node_id, child.node_id) is None:
                raise EstimationError(
                    f"embedding uses missing edge "
                    f"{node.node_id}->{child.node_id}"
                )
