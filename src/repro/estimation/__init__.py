"""Estimation framework: maximal twigs, embeddings, TREEPARSE, estimators.

Public surface:

* :func:`enumerate_embeddings`, :func:`maximal_twigs` — query expansion
  over a synopsis (paper Section 4, Figure 5);
* :func:`tree_parse` — the TREEPARSE algorithm (Figure 7);
* :class:`TwigEstimator` — twig selectivity estimates with the Forward
  Independence / Correlation Scope Independence / Forward Uniformity
  assumptions;
* :class:`PathEstimator` — the single-path (structural XSKETCH) estimator.
"""

from .embeddings import (
    DEFAULT_MAX_DESCENDANT_DEPTH,
    DEFAULT_MAX_EMBEDDINGS,
    Embedding,
    EmbeddingBudget,
    EmbeddingNode,
    enumerate_embeddings,
    maximal_twigs,
    validate_embedding,
)
from .estimator import BatchContext, EstimateReport, TwigEstimator
from .path_estimator import PathEstimator
from .treeparse import ExtendedUse, HistogramUse, NodePlan, tree_parse

__all__ = [
    "BatchContext",
    "DEFAULT_MAX_DESCENDANT_DEPTH",
    "DEFAULT_MAX_EMBEDDINGS",
    "Embedding",
    "EmbeddingBudget",
    "EmbeddingNode",
    "EstimateReport",
    "ExtendedUse",
    "HistogramUse",
    "NodePlan",
    "PathEstimator",
    "TwigEstimator",
    "enumerate_embeddings",
    "maximal_twigs",
    "tree_parse",
    "validate_embedding",
]
