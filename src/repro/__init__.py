"""Twig XSKETCH: selectivity estimation for XML twig queries.

Reproduction of Polyzotis, Garofalakis, Ioannidis, "Selectivity Estimation
for XML Twigs", ICDE 2004. See DESIGN.md for the system inventory and
EXPERIMENTS.md for the reproduced tables/figures.
"""

__version__ = "1.0.0"
