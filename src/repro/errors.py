"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DocumentError(ReproError):
    """A document tree is malformed or an operation on it is invalid."""


class ParseError(ReproError):
    """Raised when XML text or a query string cannot be parsed.

    Attributes:
        text: the offending input (possibly truncated).
        position: character offset of the failure, when known.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text[:200]
        self.position = position


class QueryError(ReproError):
    """A twig query is structurally invalid (e.g. empty path, bad predicate)."""


class SynopsisError(ReproError):
    """A synopsis violates a structural invariant (partition, edges, ...)."""


class SynopsisIntegrityError(SynopsisError):
    """A persisted synopsis failed an integrity check on load.

    Raised by :mod:`repro.synopsis.persist` for unknown format versions,
    payload-digest mismatches, and schema violations (missing/extra/
    mistyped keys), and by strict loads for invariant violations found by
    :func:`repro.synopsis.validate.validate_sketch` — never a raw
    ``KeyError``/``TypeError``.

    Attributes:
        path: dotted/indexed location of the offending content inside the
            payload (e.g. ``"edges[3].child_count"``), or ``""`` when the
            failure is not attributable to one field (digest mismatch).
    """

    def __init__(self, message: str, path: str = ""):
        super().__init__(message if not path else f"{path}: {message}")
        self.path = path


class EstimationError(ReproError):
    """The estimation framework cannot produce an estimate for a query."""


class ServiceError(ReproError):
    """An :class:`repro.serve.EstimatorService` request is invalid
    (unknown sketch name, duplicate registration, bad arguments).

    Estimation *failures* never surface as exceptions from the service —
    they degrade through the fallback cascade; this error marks caller
    mistakes only."""


class BuildError(ReproError):
    """XBUILD or a refinement operation failed or was misconfigured."""


class WorkloadError(ReproError):
    """Workload generation could not satisfy the requested constraints."""


class ParallelError(ReproError):
    """A :class:`repro.parallel.WorkerPool` operation failed.

    Carries the remote traceback text of a worker-side failure in
    ``worker_traceback`` (empty for master-side failures such as using a
    closed pool).
    """

    def __init__(self, message: str, worker_traceback: str = ""):
        super().__init__(message)
        self.worker_traceback = worker_traceback


class ResourceLimitError(ReproError):
    """A guarded operation exceeded a resource budget (steps, depth, size).

    Raised by :class:`repro.resilience.guards.Budget`; catching it also
    catches :class:`DeadlineExceeded`, its wall-clock specialization.
    """


class DeadlineExceeded(ResourceLimitError):
    """A guarded operation ran past its wall-clock deadline."""


class CheckpointError(ReproError):
    """A build checkpoint is unreadable, or incompatible with the build
    (different document, seed, byte budget, or synopsis configuration)."""


class FaultInjected(ReproError):
    """An error injected by :class:`repro.resilience.faults.FaultPlan`.

    Only tests raise this (through an activated fault plan); production
    code never does.  It derives from :class:`ReproError` so recovery
    paths exercised by fault injection behave exactly as they would for a
    real library failure.
    """
