"""Shared machinery for the synthetic data-set generators.

The three data sets of the paper's evaluation (XMark, IMDB, SwissProt) are
reproduced as seeded generators (see DESIGN.md §3 for the substitution
rationale).  This module provides the small common vocabulary they use:
an element-budget tracker and a handful of seeded sampling helpers.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..doc.node import DocumentNode


class ElementBudget:
    """Tracks how many elements a generator may still create.

    Generators consult :meth:`want` before emitting optional repeating
    structure, so documents land near (never wildly above) the requested
    element count while remaining structurally valid.
    """

    def __init__(self, target: int):
        if target < 10:
            raise ValueError("element budget must be at least 10")
        self.target = target
        self.used = 0

    def charge(self, amount: int = 1) -> None:
        """Record that ``amount`` elements were created."""
        self.used += amount

    @property
    def exhausted(self) -> bool:
        """True once the target is reached."""
        return self.used >= self.target

    def want(self, amount: int = 1) -> bool:
        """True when ``amount`` more elements still fit the budget."""
        return self.used + amount <= self.target


def child(parent: DocumentNode, budget: ElementBudget, tag: str, value=None):
    """Create a budget-charged child element."""
    budget.charge()
    return parent.new_child(tag, value)


def weighted_choice(rng: random.Random, pairs: Sequence[tuple[str, float]]) -> str:
    """Pick a key with probability proportional to its weight."""
    total = sum(weight for _, weight in pairs)
    roll = rng.random() * total
    for key, weight in pairs:
        roll -= weight
        if roll <= 0:
            return key
    return pairs[-1][0]


def person_name(rng: random.Random) -> str:
    """A synthetic person name (deterministic under the rng's seed)."""
    first = rng.choice(
        ["Ada", "Alan", "Edsger", "Grace", "Barbara", "Donald", "John", "Tove",
         "Leslie", "Edgar", "Jim", "Michael", "Hector", "Moshe", "Jennifer"]
    )
    last = rng.choice(
        ["Codd", "Gray", "Stonebraker", "Ullman", "Widom", "Lamport",
         "Hopper", "Liskov", "Knuth", "Dijkstra", "Bayer", "Vardi",
         "Garcia-Molina", "Naughton", "DeWitt"]
    )
    return f"{first} {last}"


def words(rng: random.Random, count: int) -> str:
    """A synthetic text snippet of ``count`` words."""
    lexicon = [
        "auction", "query", "index", "stream", "twig", "join", "path",
        "element", "schema", "node", "graph", "histogram", "estimate",
        "protein", "sequence", "movie", "scene", "market", "bid", "price",
    ]
    return " ".join(rng.choice(lexicon) for _ in range(count))
