"""Data sets: synthetic substitutes for the paper's three corpora plus the
hand-built documents of the paper's figures.

* :func:`generate_xmark` — uniform auction-site data (regular structure);
* :func:`generate_imdb` — movie data with strong joint-count correlations;
* :func:`generate_sprot` — protein annotations with mild skew;
* :func:`figure1_document`, :func:`figure4_documents`,
  :func:`movie_document` — the paper's running examples.
"""

from .imdb import generate_imdb
from .paperfig import figure1_document, figure4_documents, movie_document
from .sprot import generate_sprot
from .xmark import generate_xmark

__all__ = [
    "figure1_document",
    "figure4_documents",
    "generate_imdb",
    "generate_sprot",
    "generate_xmark",
    "movie_document",
]
