"""SwissProt substitute: a synthetic protein-annotation document.

The paper's SwissProt data set contains protein entries with references,
features, and keywords.  Its relevant property for Figure 9(c) is that it
is *more regular* than IMDB — CSTs and XSKETCHes land close together at
50 KB on it — while still carrying mild skew.  The generator produces
Entry records whose Ref/Feature counts are mildly correlated with the
organism class (two populations instead of IMDB's five heavily divergent
ones).
"""

from __future__ import annotations

import random

from ..doc.node import DocumentNode
from ..doc.tree import DocumentTree
from .generator import ElementBudget, child, person_name, weighted_choice, words

#: organism class -> (weight, ref range, feature range, keyword range)
CLASSES = {
    "eukaryota": (0.6, (1, 4), (2, 8), (1, 5)),
    "bacteria": (0.4, (1, 3), (1, 4), (1, 3)),
}


def _entry(root: DocumentNode, budget: ElementBudget, rng: random.Random, eid: int):
    organism_class = weighted_choice(
        rng, [(name, spec[0]) for name, spec in CLASSES.items()]
    )
    __, refs, features, keywords = CLASSES[organism_class]

    entry = child(root, budget, "Entry")
    child(entry, budget, "@id", f"P{eid:05d}")
    child(entry, budget, "AC", f"Q{rng.randrange(99999):05d}")
    child(entry, budget, "Mod", rng.randint(1990, 2003))
    protein = child(entry, budget, "Protein")
    child(protein, budget, "Name", words(rng, 2))
    organism = child(entry, budget, "Org")
    child(organism, budget, "Class", organism_class)

    if rng.random() < 0.5 and budget.want(2):
        gene = child(entry, budget, "Gene")
        child(gene, budget, "Name", words(rng, 1).upper())

    for _ in range(rng.randint(*refs)):
        if budget.want(5):
            reference = child(entry, budget, "Ref")
            child(reference, budget, "Author", person_name(rng))
            if rng.random() < 0.6 and budget.want():
                child(reference, budget, "Author", person_name(rng))
            child(reference, budget, "Title", words(rng, 4))
            child(reference, budget, "Cite", words(rng, 2))

    for _ in range(rng.randint(*features)):
        if budget.want(4):
            feature = child(entry, budget, "Features")
            child(feature, budget, "Type", rng.choice(
                ["DOMAIN", "CHAIN", "SITE", "HELIX", "STRAND"]
            ))
            child(feature, budget, "From", rng.randint(1, 400))
            child(feature, budget, "To", rng.randint(400, 900))

    for _ in range(rng.randint(*keywords)):
        if budget.want():
            child(entry, budget, "Keyword", words(rng, 1))


def generate_sprot(elements: int = 20_000, seed: int = 3) -> DocumentTree:
    """Generate the SwissProt-substitute protein document.

    Args:
        elements: approximate target element count.
        seed: RNG seed (same seed → identical document).
    """
    rng = random.Random(seed)
    budget = ElementBudget(elements)
    root = DocumentNode("sptr")
    budget.charge()
    entry_id = 0
    while not budget.exhausted:
        _entry(root, budget, rng, entry_id)
        entry_id += 1
    return DocumentTree(root, name="sprot")
