"""IMDB substitute: a synthetic movie document with strong correlations.

The paper's IMDB data set is real-life movie data whose structure is
heavily skewed and correlated — the coarsest XSKETCH starts at 124% error
there.  This generator plants the correlation patterns the paper's
discussion calls out (Sections 1 and 3.2):

* per-genre joint skew — an Action movie carries many actors AND many
  producers AND many keywords, a Documentary few of each; independent 1-D
  count histograms therefore misestimate twig selectivities badly;
* structural signals for the genre — Documentaries usually have a
  ``narrator`` and often no producers, Action movies usually have
  ``stunts``; this is what lets structural refinements (f-stabilize on
  movie→producer, movie→narrator, ...) separate the correlated
  subpopulations, mirroring how XBUILD reduces the error;
* backward correlation — movies nested under ``series/episode`` have
  systematically fewer actors than top-level movies, so the parent path
  matters (b-stabilize signal);
* value correlation — year values differ by genre, so value predicates
  correlate with structure (the extra error source in Figure 9(b)).
"""

from __future__ import annotations

import random

from ..doc.node import DocumentNode
from ..doc.tree import DocumentTree
from .generator import ElementBudget, child, person_name, weighted_choice, words

#: genre -> (weight, actor range, producer range, keyword range, year range,
#:           P(has producers), P(structural marker))
GENRES: dict[str, tuple] = {
    "Action": (0.30, (12, 30), (3, 8), (5, 12), (1995, 2003), 0.95, 0.9),
    "Drama": (0.30, (5, 12), (1, 4), (2, 6), (1980, 2003), 0.85, 0.0),
    "Comedy": (0.20, (4, 10), (1, 3), (2, 5), (1985, 2003), 0.80, 0.0),
    "Documentary": (0.15, (0, 2), (0, 1), (1, 3), (1960, 1995), 0.25, 0.9),
    "Noir": (0.05, (3, 6), (1, 2), (1, 4), (1940, 1960), 0.70, 0.0),
}

#: marker element per genre (empty string = none)
MARKERS = {"Action": "stunts", "Documentary": "narrator"}


def _movie(
    parent: DocumentNode,
    budget: ElementBudget,
    rng: random.Random,
    movie_id: int,
    in_series: bool,
):
    (__, actors, producers, keywords, years, producer_prob, marker_prob) = GENRES[
        genre := weighted_choice(
            rng, [(name, spec[0]) for name, spec in GENRES.items()]
        )
    ]
    movie = child(parent, budget, "movie")
    child(movie, budget, "@id", movie_id)
    child(movie, budget, "type", genre)
    child(movie, budget, "title", words(rng, 3))
    child(movie, budget, "year", rng.randint(*years))

    actor_count = rng.randint(*actors)
    if in_series:
        # episodes carry skeleton casts: the backward correlation
        actor_count = max(0, actor_count // 4)
    for _ in range(actor_count):
        if budget.want():
            child(movie, budget, "actor", person_name(rng))

    if rng.random() < producer_prob:
        for _ in range(rng.randint(max(1, producers[0]), max(1, producers[1]))):
            if budget.want():
                child(movie, budget, "producer", person_name(rng))

    for _ in range(rng.randint(*keywords)):
        if budget.want():
            child(movie, budget, "keyword", words(rng, 1))

    marker = MARKERS.get(genre)
    if marker and rng.random() < marker_prob and budget.want():
        child(movie, budget, marker, words(rng, 1))

    # review volume follows the cast size: another joint-count correlation
    review_count = min(6, actor_count // 5)
    for _ in range(review_count):
        if budget.want(2):
            review = child(movie, budget, "review")
            child(review, budget, "rating", rng.randint(1, 10))


def _series(parent: DocumentNode, budget: ElementBudget, rng: random.Random, sid: int):
    series = child(parent, budget, "series")
    child(series, budget, "title", words(rng, 2))
    for _ in range(rng.randint(2, 5)):
        if budget.want(12):
            episode = child(series, budget, "episode")
            child(episode, budget, "season", rng.randint(1, 9))
            _movie(episode, budget, rng, sid * 100, in_series=True)


def generate_imdb(elements: int = 20_000, seed: int = 2) -> DocumentTree:
    """Generate the IMDB-substitute movie document.

    Args:
        elements: approximate target element count.
        seed: RNG seed (same seed → identical document).
    """
    rng = random.Random(seed)
    budget = ElementBudget(elements)

    root = DocumentNode("imdb")
    budget.charge()
    movie_id = 0
    series_id = 0
    while not budget.exhausted:
        _movie(root, budget, rng, movie_id, in_series=False)
        movie_id += 1
        if movie_id % 4 == 0 and budget.want(40):
            _series(root, budget, rng, series_id)
            series_id += 1

    return DocumentTree(root, name="imdb")
