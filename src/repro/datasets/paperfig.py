"""Hand-built documents reproducing the paper's running examples.

* :func:`figure1_document` — the bibliography tree of Figure 1, consistent
  with Example 2.1 (the twig query there yields exactly 3 binding tuples),
  the Figure 3 synopsis (|A| = 3, |P| = 4, A→P backward- and forward-
  stable), and — up to the swap of p4/p5 noted below — the edge-distribution
  table of Example 3.1.
* :func:`figure4_documents` — the two documents of Figure 4 that share one
  zero-error single-path XSKETCH yet have twig selectivities 2000 vs 10100.

Note on Example 3.1: the conference text's Example 2.1 lists two binding
tuples pairing paper p5 with keywords k18 *and* k19 (so p5 has two
keywords), while the Example 3.1 table assigns C_K = 1 to p5 and C_K = 2 to
p4.  The two examples are mutually inconsistent as printed; we follow
Example 2.1 and swap the roles of p4/p5 in the distribution table, which
leaves every aggregate in the paper (fractions 0.25/0.25/0.50, the
conditional distribution F_P(k, y | p), and the worked estimate 10/3)
unchanged.
"""

from __future__ import annotations

from ..doc.node import DocumentNode
from ..doc.tree import DocumentTree


def figure1_document() -> DocumentTree:
    """The bibliography document of Figure 1.

    Structure (names follow the paper: first letter of the tag plus id):

    * author a1: name n6, paper p4 (year 1999, 1 keyword), paper p5
      (year 2002, 2 keywords: k18 k19, title t17), book b10, book b11;
    * author a2: name n7, paper p8 (year 2003, title t21, keyword k22);
    * author a3: name n12, paper p9 (year 1998, 1 keyword).

    Every paper has a title, a year, and one or more keywords; every book
    has a title; |A| = 3, |P| = 4, |B| = 2.
    """
    bib = DocumentNode("bib")

    a1 = bib.new_child("author")
    a1.new_child("name", "Ullman")
    p4 = a1.new_child("paper")
    p4.new_child("title", "Query Containment")
    p4.new_child("year", 1999)
    p4.new_child("keyword", "containment")
    p5 = a1.new_child("paper")
    p5.new_child("title", "Twig Joins")  # t17
    p5.new_child("keyword", "twig")  # k18
    p5.new_child("keyword", "join")  # k19
    p5.new_child("year", 2002)
    b10 = a1.new_child("book")
    b10.new_child("title", "Database Systems")
    b11 = a1.new_child("book")
    b11.new_child("title", "Compilers")

    a2 = bib.new_child("author")
    a2.new_child("name", "Widom")  # n7
    p8 = a2.new_child("paper")
    p8.new_child("title", "Streams")  # t21
    p8.new_child("keyword", "stream")  # k22
    p8.new_child("year", 2003)

    a3 = bib.new_child("author")
    a3.new_child("name", "Codd")
    p9 = a3.new_child("paper")
    p9.new_child("title", "Relational Model")
    p9.new_child("year", 1998)
    p9.new_child("keyword", "relations")

    return DocumentTree(bib, name="figure1")


def _figure4_doc(counts: list[tuple[int, int]], name: str) -> DocumentTree:
    """Root r with one ``a`` child per (b_count, c_count) pair."""
    root = DocumentNode("r")
    for b_count, c_count in counts:
        a = root.new_child("a")
        for _ in range(b_count):
            a.new_child("b")
        for _ in range(c_count):
            a.new_child("c")
    return DocumentTree(root, name=name)


def figure4_documents() -> tuple[DocumentTree, DocumentTree]:
    """The two documents of Figure 4(a) and 4(b).

    Both have |A| = 2, |B| = 110, |C| = 110 and identical (zero-error)
    single-path XSKETCHes; the twig pairing b/c siblings yields 2000
    binding tuples on the first document and 10100 on the second.
    """
    doc_a = _figure4_doc([(10, 100), (100, 10)], name="figure4a")
    doc_b = _figure4_doc([(100, 100), (10, 10)], name="figure4b")
    return doc_a, doc_b


def movie_document() -> DocumentTree:
    """A small movie document in the shape of the paper's introduction.

    Used by examples and tests exercising the ``//movie[/type=X]`` query of
    Section 1: action movies carry many actors/producers, documentaries few,
    so twig selectivity correlates strongly with the type value.
    """
    root = DocumentNode("movies")
    specs = [
        ("Action", 10, 3),
        ("Action", 8, 2),
        ("Documentary", 2, 1),
        ("Documentary", 1, 1),
        ("Drama", 5, 2),
    ]
    for index, (genre, actors, producers) in enumerate(specs):
        movie = root.new_child("movie")
        movie.new_child("type", genre)
        movie.new_child("title", f"Movie {index}")
        for actor_index in range(actors):
            movie.new_child("actor", f"Actor {index}.{actor_index}")
        for producer_index in range(producers):
            movie.new_child("producer", f"Producer {index}.{producer_index}")
    return DocumentTree(root, name="movies-small")
