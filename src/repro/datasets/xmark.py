"""XMark substitute: a synthetic auction-site document.

The paper's XMark data set is produced by the public XMark benchmark
generator (an auction site with regions/items, people, and open/closed
auctions).  This generator reproduces that DTD's skeleton — including its
two *recursive* parts, ``parlist/listitem`` descriptions and nested text
markup (``emph``/``keyword``/``bold``) — with **uniform, independent**
count distributions.  The two properties the paper leans on are therefore
preserved:

* counts are uniform and independent, so even the coarsest XSKETCH is
  accurate on it ("generated from uniform distributions and ... more
  regular in structure than IMDB");
* the recursive structure yields many distinct label paths, so a suffix
  trie the size of a small synopsis must prune aggressively — the
  mechanism behind CST's disadvantage in Figure 9(c).

``generate_xmark(elements, seed)`` is deterministic for a fixed seed and
lands within a few percent of the requested element count.
"""

from __future__ import annotations

import random

from ..doc.node import DocumentNode
from ..doc.tree import DocumentTree
from .generator import ElementBudget, child, person_name, words

REGIONS = ("africa", "asia", "europe", "namerica", "samerica")
CATEGORY_COUNT = 12
MARKUP_TAGS = ("emph", "keyword", "bold")


def _markup(
    parent: DocumentNode,
    budget: ElementBudget,
    rng: random.Random,
    depth: int,
) -> None:
    """Nested text markup, the DTD's second recursion: emph/keyword/bold
    elements that may contain each other."""
    tag = rng.choice(MARKUP_TAGS)
    node = child(parent, budget, tag, words(rng, 2))
    if depth < 3 and rng.random() < 0.4 and budget.want(2):
        node.value = None
        child(node, budget, "text", words(rng, 2))
        _markup(node, budget, rng, depth + 1)


def _text_block(parent: DocumentNode, budget: ElementBudget, rng: random.Random):
    text = child(parent, budget, "text", words(rng, 5))
    if rng.random() < 0.5 and budget.want(2):
        text.value = None
        _markup(text, budget, rng, 0)


def _parlist(
    parent: DocumentNode,
    budget: ElementBudget,
    rng: random.Random,
    depth: int,
):
    """The DTD's first recursion: parlist → listitem* → (text | parlist)."""
    parlist = child(parent, budget, "parlist")
    for _ in range(rng.randint(1, 3)):
        if not budget.want(2):
            return
        listitem = child(parlist, budget, "listitem")
        if depth < 3 and rng.random() < 0.35 and budget.want(3):
            _parlist(listitem, budget, rng, depth + 1)
        else:
            _text_block(listitem, budget, rng)


def _item(region: DocumentNode, budget: ElementBudget, rng: random.Random, item_id: int):
    item = child(region, budget, "item")
    child(item, budget, "@id", item_id)
    child(item, budget, "name", words(rng, 2))
    for _ in range(rng.randint(1, 2)):
        if budget.want():
            child(item, budget, "incategory", rng.randrange(CATEGORY_COUNT))
    child(item, budget, "quantity", rng.randint(1, 10))
    child(item, budget, "location", words(rng, 1))
    if rng.random() < 0.4 and budget.want():
        child(item, budget, "payment", rng.choice(
            ["cash", "credit", "check", "wire"]
        ))
    if rng.random() < 0.3 and budget.want():
        child(item, budget, "shipping", words(rng, 2))
    if rng.random() < 0.2 and budget.want():
        child(item, budget, "homepage", f"http://items.example/{item_id}")
    description = child(item, budget, "description")
    _parlist(description, budget, rng, 0)
    if rng.random() < 0.5 and budget.want(3):
        mailbox = child(item, budget, "mailbox")
        for _ in range(rng.randint(1, 2)):
            if budget.want(4):
                mail = child(mailbox, budget, "mail")
                child(mail, budget, "from", person_name(rng))
                child(mail, budget, "date", rng.randint(1998, 2003))
                if rng.random() < 0.4 and budget.want(2):
                    _text_block(mail, budget, rng)


def _person(people: DocumentNode, budget: ElementBudget, rng: random.Random, pid: int):
    person = child(people, budget, "person")
    child(person, budget, "@id", pid)
    child(person, budget, "name", person_name(rng))
    child(person, budget, "emailaddress", f"user{pid}@example.com")
    if rng.random() < 0.3 and budget.want():
        child(person, budget, "phone", f"+1-555-{rng.randrange(10000):04d}")
    if rng.random() < 0.6 and budget.want(4):
        address = child(person, budget, "address")
        child(address, budget, "street", words(rng, 2))
        child(address, budget, "city", words(rng, 1))
        child(address, budget, "country", rng.choice(REGIONS))
    if rng.random() < 0.25 and budget.want():
        child(person, budget, "homepage", f"http://people.example/{pid}")
    if rng.random() < 0.25 and budget.want():
        child(person, budget, "creditcard", f"{rng.randrange(10**4):04d}")
    if rng.random() < 0.5 and budget.want(5):
        profile = child(person, budget, "profile")
        child(profile, budget, "income", rng.randint(20_000, 150_000))
        if rng.random() < 0.5 and budget.want():
            child(profile, budget, "education", rng.choice(
                ["High School", "College", "Graduate School"]
            ))
        if rng.random() < 0.5 and budget.want():
            child(profile, budget, "gender", rng.choice(["male", "female"]))
        if rng.random() < 0.6 and budget.want():
            child(profile, budget, "age", rng.randint(18, 80))
        for _ in range(rng.randint(0, 3)):
            if budget.want():
                child(profile, budget, "interest", rng.randrange(CATEGORY_COUNT))
    if rng.random() < 0.4 and budget.want(2):
        watches = child(person, budget, "watches")
        for _ in range(rng.randint(1, 3)):
            if budget.want():
                child(watches, budget, "watch", rng.randrange(10_000))


def _open_auction(
    auctions: DocumentNode, budget: ElementBudget, rng: random.Random
):
    auction = child(auctions, budget, "open_auction")
    child(auction, budget, "initial", round(rng.uniform(1, 100), 2))
    if rng.random() < 0.4 and budget.want():
        child(auction, budget, "reserve", round(rng.uniform(50, 300), 2))
    child(auction, budget, "current", round(rng.uniform(1, 500), 2))
    child(auction, budget, "itemref", rng.randrange(10_000))
    child(auction, budget, "seller", rng.randrange(10_000))
    if rng.random() < 0.3 and budget.want():
        child(auction, budget, "privacy", rng.choice(["Yes", "No"]))
    if budget.want(3):
        interval = child(auction, budget, "interval")
        child(interval, budget, "start", rng.randint(1998, 2001))
        child(interval, budget, "end", rng.randint(2001, 2003))
    for _ in range(rng.randint(0, 4)):
        if budget.want(3):
            bidder = child(auction, budget, "bidder")
            child(bidder, budget, "date", rng.randint(1998, 2003))
            child(bidder, budget, "increase", round(rng.uniform(1, 25), 2))
    if rng.random() < 0.4 and budget.want(3):
        annotation = child(auction, budget, "annotation")
        child(annotation, budget, "author", person_name(rng))
        if budget.want(3):
            inner = child(annotation, budget, "description")
            _text_block(inner, budget, rng)


def _closed_auction(
    auctions: DocumentNode, budget: ElementBudget, rng: random.Random
):
    auction = child(auctions, budget, "closed_auction")
    child(auction, budget, "seller", rng.randrange(10_000))
    child(auction, budget, "buyer", rng.randrange(10_000))
    child(auction, budget, "itemref", rng.randrange(10_000))
    child(auction, budget, "price", round(rng.uniform(1, 500), 2))
    child(auction, budget, "date", rng.randint(1998, 2003))
    if rng.random() < 0.3 and budget.want():
        child(auction, budget, "type", rng.choice(["Regular", "Featured"]))
    if rng.random() < 0.3 and budget.want(3):
        annotation = child(auction, budget, "annotation")
        child(annotation, budget, "author", person_name(rng))
        if budget.want(3):
            inner = child(annotation, budget, "description")
            _text_block(inner, budget, rng)


def generate_xmark(elements: int = 20_000, seed: int = 1) -> DocumentTree:
    """Generate the XMark-substitute auction document.

    Args:
        elements: approximate target element count.
        seed: RNG seed (same seed → identical document).
    """
    rng = random.Random(seed)
    budget = ElementBudget(elements)

    site = DocumentNode("site")
    budget.charge()
    regions = child(site, budget, "regions")
    region_nodes = [child(regions, budget, region) for region in REGIONS]
    people = child(site, budget, "people")
    open_auctions = child(site, budget, "open_auctions")
    closed_auctions = child(site, budget, "closed_auctions")

    # Round-robin the four populations so truncation by the budget keeps
    # the document balanced.
    item_id = 0
    person_id = 0
    while not budget.exhausted:
        _item(rng.choice(region_nodes), budget, rng, item_id)
        item_id += 1
        if budget.want(10):
            _person(people, budget, rng, person_id)
            person_id += 1
        if budget.want(12):
            _open_auction(open_auctions, budget, rng)
        if budget.want(8):
            _closed_auction(closed_auctions, budget, rng)

    return DocumentTree(site, name="xmark")
