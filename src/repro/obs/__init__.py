"""Observability: metrics, span tracing, and estimate-explain.

The cross-cutting instrumentation layer every long-running subsystem
reports through:

* :class:`MetricsRegistry` — thread-safe labelled :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` metrics with a JSON snapshot and a
  Prometheus text exporter; :func:`default_registry` is the
  process-global instance the instrumented subsystems (XBUILD, the
  estimators, the serving tier, the XML parser) record into;
* :class:`SpanTracer` — context-manager span tracing with monotonic
  clocks, per-thread parent/child nesting, and a :class:`JsonlSink`;
  :data:`NULL_TRACER` is the shared disabled instance, so un-traced hot
  paths pay a single ``if``;
* :class:`ExplainRecorder` / :func:`render_explanation` — per-estimate
  expansion trails, histogram lookups, and the serving tier chosen
  (``repro estimate --explain``);
* :mod:`repro.obs.export` — exposition formats and the export-schema
  validators (metrics, serve-eval, and benchmark envelopes) behind
  ``python -m repro.obs`` (the CI smoke gate);
* :mod:`repro.obs.trace_report` — ``repro trace-report``: aggregate a
  ``--trace`` JSONL file into per-span-kind timings and the critical
  path.

See README.md "Observability" and DESIGN.md S24.
"""

from .explain import ExplainEvent, ExplainRecorder, render_explanation
from .export import (
    BENCH_SCHEMA,
    SERVE_EVAL_SCHEMA,
    load_payload,
    render_prometheus,
    validate_bench_payload,
    validate_metrics_payload,
    validate_payload,
    validate_serve_eval_payload,
    write_export,
)
from .metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)
from .trace_report import (
    KindStats,
    TraceReport,
    load_spans,
    render_trace_report,
    trace_report,
)
from .tracing import NULL_TRACER, JsonlSink, Span, SpanTracer

__all__ = [
    "BENCH_SCHEMA",
    "Counter",
    "DEFAULT_BUCKETS",
    "ExplainEvent",
    "ExplainRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "KindStats",
    "METRICS_SCHEMA",
    "MetricsError",
    "MetricsRegistry",
    "NULL_TRACER",
    "SERVE_EVAL_SCHEMA",
    "Span",
    "SpanTracer",
    "TraceReport",
    "default_registry",
    "load_payload",
    "load_spans",
    "render_explanation",
    "render_prometheus",
    "render_trace_report",
    "reset_default_registry",
    "trace_report",
    "validate_bench_payload",
    "validate_metrics_payload",
    "validate_payload",
    "validate_serve_eval_payload",
    "write_export",
]
