"""A thread-safe, dependency-free metrics registry.

Three metric kinds, modelled on the Prometheus data model but with no
client-library dependency (the environment is stdlib-only):

* :class:`Counter` — a monotonically increasing total (requests served,
  oracle calls made);
* :class:`Gauge` — a value that goes up and down (current synopsis size,
  circuit-breaker state);
* :class:`Histogram` — bucketed observations with a running sum and
  count (request latencies); buckets are cumulative on export, exactly
  like Prometheus ``_bucket{le=...}`` series.

Every metric may carry **labels**: a fixed tuple of label names declared
at creation, with one independent series per distinct label-value
combination.  The registry is get-or-create — asking twice for the same
name returns the same object, and asking with a conflicting kind or
label set raises — so instrumented modules never need to coordinate
creation order.

Concurrency: the registry locks around metric creation; each metric
locks around its own series map.  Increments are a dict update under
that lock — cheap enough to sit on per-round and per-request paths
(the hammer test in ``tests/test_obs.py`` proves exact counts under
contention).

A process-global registry (:func:`default_registry`) is what
instrumented subsystems record into unless handed an explicit one;
:func:`reset_default_registry` swaps in a fresh one (test isolation).
"""

from __future__ import annotations

import math
import re
import threading
from typing import Iterable, Optional, Sequence

from ..errors import ReproError

#: JSON snapshot schema identifier (see :mod:`repro.obs.export`).
METRICS_SCHEMA = "repro.obs/metrics-v1"

#: default latency buckets, in seconds (sub-millisecond to 10 s).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricsError(ReproError):
    """A metric was created or used inconsistently (bad name, kind
    conflict, wrong label set)."""


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise MetricsError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not isinstance(label, str) or not _LABEL_RE.match(label):
            raise MetricsError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise MetricsError(f"duplicate label names in {names!r}")
    return names


class _Metric:
    """Common state: name, help text, label names, and the series map."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]):
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = threading.Lock()
        self._series: dict = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise MetricsError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_dict(self, key: tuple) -> dict[str, str]:
        return dict(zip(self.labelnames, key))

    def series(self) -> list[tuple[dict[str, str], object]]:
        """(labels, value) per series — scalars for counter/gauge,
        a state dict for histograms."""
        with self._lock:
            items = list(self._series.items())
        return [(self._labels_dict(key), value) for key, value in items]


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc {amount!r})"
            )
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current total of the labelled series (0.0 when never touched)."""
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)


class _HistogramSeries:
    """Per-label-combination histogram state (bucket counts, sum, count)."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, nbuckets: int):
        self.bucket_counts = [0] * nbuckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Bucketed observations with a running sum and count.

    ``buckets`` are the upper bounds of each bucket, strictly increasing;
    an implicit ``+Inf`` bucket catches everything above the last bound.
    On export, bucket counts are cumulative (Prometheus convention).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ) or not all(math.isfinite(b) for b in bounds):
            raise MetricsError(
                f"histogram {name!r} buckets must be a non-empty, finite, "
                f"strictly increasing sequence, got {buckets!r}"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labelled series."""
        value = float(value)
        if not math.isfinite(value):
            raise MetricsError(
                f"histogram {self.name!r} observation must be finite, "
                f"got {value!r}"
            )
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._series[key] = _HistogramSeries(
                    len(self.buckets) + 1
                )
            index = len(self.buckets)  # the +Inf bucket
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    index = position
                    break
            state.bucket_counts[index] += 1
            state.sum += value
            state.count += 1

    def snapshot_series(self, **labels) -> Optional[dict]:
        """Cumulative-bucket view of one labelled series, or None."""
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                return None
            return self._render_state(state)

    def _render_state(self, state: _HistogramSeries) -> dict:
        cumulative = []
        running = 0
        for bound, count in zip(self.buckets, state.bucket_counts):
            running += count
            cumulative.append([bound, running])
        cumulative.append(["+Inf", running + state.bucket_counts[-1]])
        return {
            "buckets": cumulative,
            "sum": state.sum,
            "count": state.count,
        }


class MetricsRegistry:
    """A named collection of metrics with snapshot/export support."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    # creation (get-or-create; conflicting redeclaration raises)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        _check_name(name)
        names = _check_labelnames(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != names:
                    raise MetricsError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{list(existing.labelnames)}"
                    )
                return existing
            metric = cls(name, help, names, **kwargs)
            self._metrics[name] = metric
            return metric

    def get(self, name: str) -> Optional[_Metric]:
        """The registered metric, or None."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-serializable snapshot of every series.

        Shape (schema :data:`METRICS_SCHEMA`)::

            {"schema": "repro.obs/metrics-v1",
             "metrics": [{"name": ..., "type": "counter", "help": ...,
                          "labelnames": [...],
                          "series": [{"labels": {...}, "value": 1.0}]},
                         ...]}

        Histogram series carry ``{"labels", "buckets", "sum", "count"}``
        with cumulative ``[upper_bound, count]`` bucket pairs ending at
        ``"+Inf"``.
        """
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        out = []
        for metric in metrics:
            series = []
            for labels, value in metric.series():
                if isinstance(metric, Histogram):
                    entry = {"labels": labels}
                    entry.update(metric._render_state(value))
                else:
                    entry = {"labels": labels, "value": value}
                series.append(entry)
            series.sort(key=lambda entry: sorted(entry["labels"].items()))
            out.append({
                "name": metric.name,
                "type": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "series": series,
            })
        return {"schema": METRICS_SCHEMA, "metrics": out}

    def render_prometheus(self) -> str:
        """The snapshot in the Prometheus text exposition format."""
        from .export import render_prometheus  # local: avoid cycle at import

        return render_prometheus(self.snapshot())


# ----------------------------------------------------------------------
# the process-global default registry
# ----------------------------------------------------------------------
_default_lock = threading.Lock()
_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry instrumented subsystems record into."""
    with _default_lock:
        return _default_registry


def reset_default_registry() -> MetricsRegistry:
    """Swap in a fresh default registry and return it (test isolation)."""
    global _default_registry
    with _default_lock:
        _default_registry = MetricsRegistry()
        return _default_registry
