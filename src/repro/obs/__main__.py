"""Validate an exported metrics payload: ``python -m repro.obs FILE``.

Reads a JSON export produced by ``repro metrics --format json`` or
``repro serve-eval --metrics-json`` (``-`` reads stdin), dispatches on
its ``schema`` field, and exits 0 when the payload is schema-valid,
1 otherwise with one problem per line on stderr.  This is the CI smoke
gate: any drift in the export shape fails the build here, not in a
downstream dashboard.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import validate_payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="validate an exported metrics JSON payload",
    )
    parser.add_argument(
        "source", help="JSON export file to validate ('-' reads stdin)"
    )
    args = parser.parse_args(argv)
    try:
        if args.source == "-":
            payload = json.load(sys.stdin)
        else:
            with open(args.source, "r", encoding="utf8") as handle:
                payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load {args.source}: {exc}", file=sys.stderr)
        return 1
    problems = validate_payload(payload)
    for problem in problems:
        print(f"invalid: {problem}", file=sys.stderr)
    if not problems:
        schema = payload.get("schema", "?")
        print(f"{args.source}: valid {schema} payload")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
