"""Exporters and export-schema validation for metrics snapshots.

Two wire formats come out of a :class:`~repro.obs.metrics.MetricsRegistry`:

* the **JSON snapshot** (``registry.snapshot()``, schema
  :data:`~repro.obs.metrics.METRICS_SCHEMA`) — what ``repro metrics
  --format json`` and ``repro serve-eval --metrics-json`` emit;
* the **Prometheus text exposition format**
  (:func:`render_prometheus`) — ``# HELP``/``# TYPE`` headers, one
  sample per line, histogram ``_bucket``/``_sum``/``_count`` expansion
  with cumulative ``le`` labels.

The validators are the other half of the CI contract: the workflow's
smoke step pipes a live ``serve-eval`` export through
``python -m repro.obs``, which calls :func:`validate_payload` and fails
the build on any schema drift.  Validation is deliberately hand-rolled
(no ``jsonschema`` in the environment) and returns *every* problem it
finds as a list of human-readable strings rather than stopping at the
first.
"""

from __future__ import annotations

import json
import sys
from typing import Optional

from .metrics import METRICS_SCHEMA

#: schema identifier of the ``serve-eval --metrics-json`` envelope
SERVE_EVAL_SCHEMA = "repro.obs/serve-eval-v1"

#: schema identifier of the benchmark harness's BENCH_twig.json envelope
BENCH_SCHEMA = "repro.obs/bench-v1"

_METRIC_TYPES = ("counter", "gauge", "histogram")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_number(value) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    lines: list[str] = []
    for metric in snapshot.get("metrics", []):
        name = metric["name"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {metric['type']}")
        for series in metric["series"]:
            labels = series.get("labels", {})
            if metric["type"] == "histogram":
                for bound, count in series["buckets"]:
                    le = "+Inf" if bound == "+Inf" else _format_number(bound)
                    le_label = 'le="%s"' % le
                    lines.append(
                        f"{name}_bucket{_format_labels(labels, le_label)} "
                        f"{_format_number(count)}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_number(series['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} "
                    f"{_format_number(series['count'])}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_number(series['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
def validate_metrics_payload(payload) -> list[str]:
    """Every schema problem in a metrics snapshot (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema must be {METRICS_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, list):
        problems.append("'metrics' must be a list")
        return problems
    for position, metric in enumerate(metrics):
        where = f"metrics[{position}]"
        if not isinstance(metric, dict):
            problems.append(f"{where} must be an object")
            continue
        name = metric.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}.name must be a non-empty string")
        else:
            where = f"metrics[{position}] ({name})"
        if metric.get("type") not in _METRIC_TYPES:
            problems.append(
                f"{where}.type must be one of {_METRIC_TYPES}, "
                f"got {metric.get('type')!r}"
            )
        if not isinstance(metric.get("labelnames"), list):
            problems.append(f"{where}.labelnames must be a list")
        series = metric.get("series")
        if not isinstance(series, list):
            problems.append(f"{where}.series must be a list")
            continue
        for index, entry in enumerate(series):
            problems.extend(
                _validate_series(entry, metric, f"{where}.series[{index}]")
            )
    return problems


def _validate_series(entry, metric: dict, where: str) -> list[str]:
    problems = []
    if not isinstance(entry, dict):
        return [f"{where} must be an object"]
    labels = entry.get("labels")
    if not isinstance(labels, dict):
        problems.append(f"{where}.labels must be an object")
    elif isinstance(metric.get("labelnames"), list) and set(labels) != set(
        metric["labelnames"]
    ):
        problems.append(
            f"{where}.labels keys {sorted(labels)} do not match "
            f"labelnames {sorted(metric['labelnames'])}"
        )
    if metric.get("type") == "histogram":
        buckets = entry.get("buckets")
        if not isinstance(buckets, list) or not buckets:
            problems.append(f"{where}.buckets must be a non-empty list")
        else:
            if buckets[-1][0] != "+Inf":
                problems.append(f"{where}.buckets must end with '+Inf'")
            counts = [pair[1] for pair in buckets if isinstance(pair, list)]
            if counts != sorted(counts):
                problems.append(f"{where}.buckets must be cumulative")
        for key in ("sum", "count"):
            if not isinstance(entry.get(key), (int, float)):
                problems.append(f"{where}.{key} must be a number")
    else:
        if not isinstance(entry.get("value"), (int, float)):
            problems.append(f"{where}.value must be a number")
    return problems


def validate_serve_eval_payload(payload) -> list[str]:
    """Schema problems in a ``serve-eval --metrics-json`` envelope."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != SERVE_EVAL_SCHEMA:
        problems.append(
            f"schema must be {SERVE_EVAL_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    requests = payload.get("requests")
    if not isinstance(requests, list) or not requests:
        problems.append("'requests' must be a non-empty list")
    else:
        for index, request in enumerate(requests):
            where = f"requests[{index}]"
            if not isinstance(request, dict):
                problems.append(f"{where} must be an object")
                continue
            for key, kinds in (
                ("query", str),
                ("estimate", (int, float)),
                ("tier", str),
                ("latency", (int, float)),
                ("warnings", list),
            ):
                if not isinstance(request.get(key), kinds):
                    problems.append(f"{where}.{key} missing or mistyped")
    breakers = payload.get("breakers")
    if not isinstance(breakers, dict) or not breakers:
        problems.append("'breakers' must be a non-empty object")
    else:
        for tier, state in breakers.items():
            if state not in ("closed", "open", "half-open"):
                problems.append(
                    f"breakers[{tier!r}] has unknown state {state!r}"
                )
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("'metrics' must be an embedded metrics snapshot")
    else:
        problems.extend(validate_metrics_payload(metrics))
    return problems


def validate_bench_payload(payload) -> list[str]:
    """Schema problems in a ``BENCH_twig.json`` benchmark envelope."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema must be {BENCH_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        problems.append("'results' must be a non-empty list")
    else:
        for index, result in enumerate(results):
            where = f"results[{index}]"
            if not isinstance(result, dict):
                problems.append(f"{where} must be an object")
                continue
            name = result.get("name")
            if not isinstance(name, str) or not name:
                problems.append(f"{where}.name must be a non-empty string")
            seconds = result.get("seconds")
            if not isinstance(seconds, (int, float)) or seconds < 0:
                problems.append(
                    f"{where}.seconds must be a non-negative number"
                )
            if "data" not in result:
                problems.append(f"{where}.data is missing")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("'metrics' must be an embedded metrics snapshot")
    else:
        problems.extend(validate_metrics_payload(metrics))
    return problems


def validate_payload(payload) -> list[str]:
    """Dispatch on the payload's ``schema`` field (the CLI validator)."""
    if isinstance(payload, dict) and payload.get("schema") == SERVE_EVAL_SCHEMA:
        return validate_serve_eval_payload(payload)
    if isinstance(payload, dict) and payload.get("schema") == BENCH_SCHEMA:
        return validate_bench_payload(payload)
    return validate_metrics_payload(payload)


def write_export(text: str, destination: Optional[str]) -> None:
    """Write rendered output to a path, or stdout for ``None``/``"-"``."""
    if destination is None or destination == "-":
        sys.stdout.write(text if text.endswith("\n") else text + "\n")
        return
    with open(destination, "w", encoding="utf8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")


def load_payload(source: str):
    """Parse JSON from a file path, or stdin for ``"-"``."""
    if source == "-":
        return json.load(sys.stdin)
    with open(source, "r", encoding="utf8") as handle:
        return json.load(handle)
