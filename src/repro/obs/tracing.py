"""Span tracing for the long-running paths (build, estimate, serve).

A **span** is one timed region of work with a name, attributes, and a
parent — nesting follows the call structure, tracked per thread.  The
API is a context manager::

    with tracer.span("xbuild.round", round=7) as span:
        ...
        span.annotate(applied="hsplit", gain=0.12)

Design constraints (this rides on hot paths):

* **no-op by default** — the module-level :data:`NULL_TRACER` answers
  ``span()`` with a shared inert object, so an un-instrumented run pays
  one attribute check and one ``if`` per call site;
* **monotonic clocks** — durations come from ``time.perf_counter``,
  immune to wall-clock steps; the absolute wall time of the tracer's
  epoch is recorded once so sinks can reconstruct timestamps;
* **bounded memory** — finished spans are kept in a ring of at most
  ``max_kept`` (newest win) for in-process inspection; a
  :class:`JsonlSink` streams every span to disk regardless.

The JSONL record per span::

    {"name": ..., "span_id": 3, "parent_id": 1, "thread": ...,
     "start": 0.0123, "duration": 0.0017, "attrs": {...}}

``start`` is seconds since the tracer's epoch.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Union


@dataclass
class Span:
    """One finished (or in-flight) traced region."""

    name: str
    span_id: int
    parent_id: Optional[int]
    thread: int
    start: float
    duration: Optional[float] = None
    attrs: dict = field(default_factory=dict)

    def annotate(self, **attrs) -> None:
        """Attach attributes to the span (last write per key wins)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The shared inert span of a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def annotate(self, **attrs) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens/closes one real span."""

    __slots__ = ("_tracer", "_span", "_name", "_attrs")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: dict):
        self._tracer = tracer
        self._span = None
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return None


class JsonlSink:
    """Stream finished spans to a JSON-lines file.

    The file is opened lazily on the first span and closed by
    :meth:`close` (the tracer's ``close()``/``__exit__`` calls it).
    """

    def __init__(self, path):
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = None
        self.written = 0

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf8")
            self._handle.write(line + "\n")
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class SpanTracer:
    """Factory and collector of spans.

    Args:
        sink: where finished spans go — a :class:`JsonlSink`, a path
            (wrapped in one), or None (in-memory ring only).
        enabled: a disabled tracer's ``span()`` returns a shared no-op.
        max_kept: size of the in-memory ring of finished spans.
        clock: monotonic time source (override in tests).
    """

    def __init__(
        self,
        sink: Union[None, str, JsonlSink] = None,
        *,
        enabled: bool = True,
        max_kept: int = 10_000,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if sink is not None and not isinstance(sink, JsonlSink):
            sink = JsonlSink(sink)
        self.sink = sink
        self.enabled = enabled
        self._clock = clock
        self._epoch = clock()
        #: wall-clock time of the epoch, for timestamp reconstruction
        self.epoch_unix = time.time()
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        self.finished: deque[Span] = deque(maxlen=max_kept)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context manager timing one region; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or None."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def close(self) -> None:
        """Flush and close the sink (if any)."""
        if self.sink is not None:
            self.sink.close()

    def __enter__(self) -> "SpanTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _open(self, name: str, attrs: dict) -> Span:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=stack[-1].span_id if stack else None,
            thread=threading.get_ident(),
            start=self._clock() - self._epoch,
            attrs=dict(attrs),
        )
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.duration = (self._clock() - self._epoch) - span.start
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # mis-nested exit: drop through it
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        self.finished.append(span)
        if self.sink is not None:
            self.sink.write(span.to_dict())


#: the shared disabled tracer — instrumented code defaults to it, so an
#: un-traced hot path pays exactly one ``if not self.enabled`` check.
NULL_TRACER = SpanTracer(enabled=False)
