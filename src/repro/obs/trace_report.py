"""Aggregate a span-trace JSONL file into a profiling summary.

``repro build --trace FILE`` and ``repro serve-eval --trace FILE``
stream one JSON object per finished span (see
:class:`~repro.obs.tracing.JsonlSink`).  This module turns that stream
into the two views a profiling session actually needs:

* **per-kind statistics** — spans grouped by name, with count, total
  and **self time** (total minus the time spent in direct children, the
  number that says where the clock actually went), mean, and max;
* the **critical path** — starting from the longest root span, the
  chain of longest children all the way down.  Work off that chain is
  overlapped or minor; speeding anything on it up moves the end-to-end
  wall clock.

``repro trace-report FILE`` renders both (``--json`` for the
machine-readable form).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..errors import ReproError

__all__ = [
    "KindStats",
    "TraceReport",
    "load_spans",
    "render_trace_report",
    "trace_report",
]


@dataclass(frozen=True)
class KindStats:
    """Aggregated timings for one span name."""

    name: str
    count: int
    total: float
    self_time: float
    mean: float
    max: float


@dataclass(frozen=True)
class PathEntry:
    """One hop of the critical path."""

    name: str
    span_id: int
    duration: float
    self_time: float
    depth: int


@dataclass(frozen=True)
class TraceReport:
    """The aggregation of one trace file.

    Attributes:
        spans: finished spans read (unfinished ones are dropped).
        wall: duration of the longest root span — the trace's
            end-to-end wall clock.
        kinds: per-name statistics, longest self time first.
        critical_path: longest-child chain from the longest root.
    """

    spans: int
    wall: float
    kinds: tuple[KindStats, ...]
    critical_path: tuple[PathEntry, ...]

    def to_dict(self) -> dict:
        return {
            "spans": self.spans,
            "wall": self.wall,
            "kinds": [vars(kind) | {} for kind in self.kinds],
            "critical_path": [vars(hop) | {} for hop in self.critical_path],
        }


def load_spans(path: str) -> list[dict]:
    """Read a ``--trace`` JSONL file; raises :class:`ReproError` on junk."""
    spans = []
    try:
        with open(path, "r", encoding="utf8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ReproError(
                        f"{path}:{number}: not a JSON span record: {exc}"
                    ) from None
                if not isinstance(record, dict) or "name" not in record:
                    raise ReproError(
                        f"{path}:{number}: span records need a 'name' field"
                    )
                spans.append(record)
    except OSError as exc:
        raise ReproError(f"cannot read trace file: {exc}") from exc
    return spans


def trace_report(spans: list[dict]) -> TraceReport:
    """Aggregate span records (see module docstring for the two views)."""
    finished = [
        span
        for span in spans
        if isinstance(span.get("duration"), (int, float))
    ]
    children: dict = {}
    for span in finished:
        children.setdefault(span.get("parent_id"), []).append(span)

    # self time = duration minus time attributed to direct children
    totals: dict[str, list[float]] = {}
    selfs: dict[str, float] = {}
    self_of: dict[int, float] = {}
    for span in finished:
        name = span["name"]
        duration = float(span["duration"])
        child_time = sum(
            float(child["duration"])
            for child in children.get(span.get("span_id"), [])
        )
        own = max(0.0, duration - child_time)
        totals.setdefault(name, []).append(duration)
        selfs[name] = selfs.get(name, 0.0) + own
        self_of[span.get("span_id")] = own

    kinds = tuple(
        sorted(
            (
                KindStats(
                    name=name,
                    count=len(durations),
                    total=sum(durations),
                    self_time=selfs[name],
                    mean=sum(durations) / len(durations),
                    max=max(durations),
                )
                for name, durations in totals.items()
            ),
            key=lambda kind: (-kind.self_time, kind.name),
        )
    )

    roots = children.get(None, [])
    path: list[PathEntry] = []
    if roots:
        current = max(roots, key=lambda span: float(span["duration"]))
        depth = 0
        while current is not None:
            path.append(
                PathEntry(
                    name=current["name"],
                    span_id=current.get("span_id"),
                    duration=float(current["duration"]),
                    self_time=self_of.get(current.get("span_id"), 0.0),
                    depth=depth,
                )
            )
            depth += 1
            below = children.get(current.get("span_id"), [])
            current = (
                max(below, key=lambda span: float(span["duration"]))
                if below
                else None
            )
    wall = path[0].duration if path else 0.0
    return TraceReport(
        spans=len(finished),
        wall=wall,
        kinds=kinds,
        critical_path=tuple(path),
    )


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}ms"


def render_trace_report(report: TraceReport, top: int = 0) -> str:
    """Human-readable report; ``top`` limits the per-kind rows (0 = all)."""
    lines = [
        f"{report.spans} spans, wall {_ms(report.wall)}",
        "",
        f"{'span':<24} {'count':>6} {'total':>10} {'self':>10} "
        f"{'mean':>9} {'max':>9}",
    ]
    kinds = report.kinds[:top] if top else report.kinds
    for kind in kinds:
        lines.append(
            f"{kind.name:<24} {kind.count:>6} {_ms(kind.total):>10} "
            f"{_ms(kind.self_time):>10} {_ms(kind.mean):>9} "
            f"{_ms(kind.max):>9}"
        )
    if top and len(report.kinds) > top:
        lines.append(f"... {len(report.kinds) - top} more span kind(s)")
    lines.append("")
    lines.append("critical path (longest child at every level):")
    for hop in report.critical_path:
        share = hop.duration / report.wall * 100 if report.wall else 0.0
        lines.append(
            f"  {'  ' * hop.depth}{hop.name}  "
            f"{_ms(hop.duration)} ({share:.0f}% of wall, "
            f"self {_ms(hop.self_time)})"
        )
    if not report.critical_path:
        lines.append("  (no finished root span)")
    return "\n".join(lines)
