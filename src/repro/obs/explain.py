"""Estimate-explain: record *why* an estimate came out the way it did.

The twig estimator's answer is a sum over embeddings of products of
histogram factors, uniformity fallbacks, value selectivities, and branch
probabilities — when a number looks wrong, the question is always *which
factor* collapsed it.  An :class:`ExplainRecorder` passed to
:class:`~repro.estimation.estimator.TwigEstimator` (or
:class:`~repro.estimation.path_estimator.PathEstimator`, or
:meth:`~repro.serve.EstimatorService.estimate`) captures:

* the per-synopsis-node **expansion trail** — every ``_expand`` frame
  with the synopsis node it visited and the sub-factor it returned,
  nested exactly like the recursion (memoization hits are marked, not
  re-expanded);
* every **histogram lookup** — which stored distribution was consulted,
  how many points survived marginalization/conditioning, and the factor
  it contributed;
* the uniformity fallbacks, value-predicate selectivities, and branch
  probabilities multiplied in along the way;
* for service requests, the **tier chosen** and every tier attempt
  before it.

:func:`render_explanation` turns the trail into indented human-readable
text (the ``repro estimate --explain`` output).

The recorder is deliberately dumb — an append-only event list with a
depth counter — so the estimator's hook cost is one ``if`` plus one
``list.append`` per recorded event, and only when a recorder was passed
at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: event kinds, in rough order of appearance in a trail
KIND_QUERY = "query"
KIND_TIER = "tier"
KIND_EMBEDDING = "embedding"
KIND_EXPAND = "expand"
KIND_MEMO = "memo"
KIND_HISTOGRAM = "histogram"
KIND_EXTENDED = "extended"
KIND_UNIFORM = "uniform"
KIND_VALUE = "value"
KIND_BRANCH = "branch"
KIND_STEP = "step"
KIND_RESULT = "result"


@dataclass
class ExplainEvent:
    """One recorded fact: what happened, where, and the factor it added.

    Attributes:
        kind: one of the ``KIND_*`` constants.
        depth: nesting depth at record time (drives rendering indent).
        label: the subject — a synopsis node (``tag#id``), a histogram
            scope, a tier name.
        detail: free-form context (points surviving, conditioning refs,
            failure text).
        value: the numeric contribution, when one exists.
    """

    kind: str
    depth: int
    label: str
    detail: str = ""
    value: Optional[float] = None


class ExplainRecorder:
    """Append-only trail of :class:`ExplainEvent` with nesting depth."""

    def __init__(self):
        self.events: list[ExplainEvent] = []
        self._depth = 0

    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        label: str,
        detail: str = "",
        value: Optional[float] = None,
    ) -> ExplainEvent:
        event = ExplainEvent(kind, self._depth, label, detail, value)
        self.events.append(event)
        return event

    def enter(
        self, kind: str, label: str, detail: str = ""
    ) -> ExplainEvent:
        """Record an event and deepen nesting until :meth:`exit`."""
        event = self.record(kind, label, detail)
        self._depth += 1
        return event

    def exit(self, event: ExplainEvent, value: Optional[float] = None) -> None:
        """Close an :meth:`enter` frame, attaching its resulting value."""
        self._depth = max(0, self._depth - 1)
        if value is not None:
            event.value = value

    # ------------------------------------------------------------------
    def embedding_total(self) -> float:
        """Sum of the recorded per-embedding contributions.

        By construction this equals the estimate the recorded run
        returned — the consistency check ``--explain`` is tested on.
        """
        return sum(
            event.value or 0.0
            for event in self.events
            if event.kind == KIND_EMBEDDING
        )

    def by_kind(self, kind: str) -> list[ExplainEvent]:
        return [event for event in self.events if event.kind == kind]


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return ""
    return f" = {value:.6g}"


def render_explanation(recorder: ExplainRecorder) -> str:
    """The trail as indented human-readable text, one event per line."""
    lines = []
    for event in recorder.events:
        indent = "  " * event.depth
        detail = f" ({event.detail})" if event.detail else ""
        lines.append(
            f"{indent}{event.kind}: {event.label}{detail}"
            f"{_format_value(event.value)}"
        )
    return "\n".join(lines)
