"""Checkpoint/resume for XBUILD: serialize in-flight construction state.

A (document, budget, seed) build walks hundreds of greedy rounds; a kill
signal, a deadline, or an injected fault should cost at most
``checkpoint_every`` rounds of work, not the whole build.  A
:class:`BuildCheckpoint` captures everything the loop needs to continue:

* the **refinement trail** — the applied :class:`Refinement` operations in
  order.  Refinements are pure functions of the sketch they are applied
  to, so replaying the trail over the coarsest synopsis reconstructs the
  in-flight sketch exactly;
* the **step records** (description, size, gain) behind the trail;
* the **RNG state** of the build's ``random.Random``, so candidate pools
  and sampled queries continue the original sequence bit-for-bit;
* a **document fingerprint** and the build's (seed, byte budget, synopsis
  config), checked at resume time — resuming against the wrong document
  or settings raises :class:`~repro.errors.CheckpointError`;
* the serialized **best-so-far sketch**, so a checkpoint file doubles as
  a usable partial synopsis (:meth:`BuildCheckpoint.best_sketch`) even if
  the build never resumes.

The invariant the resume path guarantees (and the test suite proves): a
build interrupted at any checkpoint boundary and resumed produces a
sketch identical to the uninterrupted build for the same seed.

File format: one JSON object, ``{"format": "xbuild-checkpoint",
"version": 1, ...}``; see :meth:`BuildCheckpoint.to_dict` for the keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..errors import CheckpointError

CHECKPOINT_FORMAT = "xbuild-checkpoint"
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# refinement (de)serialization
# ----------------------------------------------------------------------
def refinement_to_dict(refinement) -> dict:
    """Serialize one refinement operation to a JSON-compatible dict."""
    # imported here to keep this module import-light (see package docstring)
    from ..build.refinements import (
        BStabilize,
        EdgeExpand,
        EdgeRefine,
        FStabilize,
        ValueExpand,
        ValueRefine,
        ValueSplit,
    )

    if isinstance(refinement, (BStabilize, FStabilize)):
        return {
            "kind": type(refinement).__name__,
            "source": refinement.source,
            "target": refinement.target,
        }
    if isinstance(refinement, EdgeRefine):
        return {
            "kind": "EdgeRefine",
            "node_id": refinement.node_id,
            "index": refinement.index,
        }
    if isinstance(refinement, EdgeExpand):
        return {
            "kind": "EdgeExpand",
            "node_id": refinement.node_id,
            "index": refinement.index,
            "new_ref": [refinement.new_ref.source, refinement.new_ref.target],
        }
    if isinstance(refinement, ValueRefine):
        return {"kind": "ValueRefine", "node_id": refinement.node_id}
    if isinstance(refinement, ValueExpand):
        return {
            "kind": "ValueExpand",
            "node_id": refinement.node_id,
            "value_tag": refinement.value_tag,
            "scope": [[r.source, r.target] for r in refinement.scope],
        }
    if isinstance(refinement, ValueSplit):
        predicate = refinement.predicate
        return {
            "kind": "ValueSplit",
            "node_id": refinement.node_id,
            "predicate": {
                "op": predicate.op,
                "value": predicate.value,
                "high": predicate.high,
            },
            "child_tag": refinement.child_tag,
        }
    raise CheckpointError(
        f"cannot serialize refinement of type {type(refinement).__name__}"
    )


def refinement_from_dict(payload: dict):
    """Rebuild a refinement operation serialized by
    :func:`refinement_to_dict`."""
    from ..build.refinements import (
        BStabilize,
        EdgeExpand,
        EdgeRefine,
        FStabilize,
        ValueExpand,
        ValueRefine,
        ValueSplit,
    )
    from ..query.values import ValuePredicate
    from ..synopsis.distributions import EdgeRef

    try:
        kind = payload["kind"]
        if kind == "BStabilize":
            return BStabilize(payload["source"], payload["target"])
        if kind == "FStabilize":
            return FStabilize(payload["source"], payload["target"])
        if kind == "EdgeRefine":
            return EdgeRefine(payload["node_id"], payload["index"])
        if kind == "EdgeExpand":
            source, target = payload["new_ref"]
            return EdgeExpand(
                payload["node_id"], payload["index"], EdgeRef(source, target)
            )
        if kind == "ValueRefine":
            return ValueRefine(payload["node_id"])
        if kind == "ValueExpand":
            return ValueExpand(
                payload["node_id"],
                payload["value_tag"],
                tuple(EdgeRef(s, t) for s, t in payload["scope"]),
            )
        if kind == "ValueSplit":
            predicate = payload["predicate"]
            return ValueSplit(
                payload["node_id"],
                ValuePredicate(
                    predicate["op"], predicate["value"], predicate["high"]
                ),
                payload["child_tag"],
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed refinement entry: {exc}") from exc
    raise CheckpointError(f"unknown refinement kind {payload.get('kind')!r}")


# ----------------------------------------------------------------------
# identity helpers
# ----------------------------------------------------------------------
def tree_fingerprint(tree) -> dict:
    """A cheap identity for the document a build ran against."""
    return {
        "name": tree.name,
        "element_count": tree.element_count,
        "root_tag": tree.root.tag,
        "distinct_tags": len(tree.tags),
    }


def config_signature(config) -> dict:
    """Every :class:`XSketchConfig` field, as a comparable dict."""
    return {
        "engine": config.engine,
        "initial_edge_buckets": config.initial_edge_buckets,
        "initial_value_buckets": config.initial_value_buckets,
        "store_edge_counts": config.store_edge_counts,
        "include_backward": config.include_backward,
        "max_histogram_dims": config.max_histogram_dims,
        "extended_value_buckets": config.extended_value_buckets,
        "extended_count_buckets": config.extended_count_buckets,
    }


def _rng_state_to_json(state) -> list:
    """``random.Random.getstate()`` → JSON-compatible nested lists."""
    version, internal, gauss = state
    return [version, list(internal), gauss]


def _rng_state_from_json(payload) -> tuple:
    """Inverse of :func:`_rng_state_to_json`."""
    try:
        version, internal, gauss = payload
        return (version, tuple(internal), gauss)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed RNG state: {exc}") from exc


# ----------------------------------------------------------------------
# the checkpoint object
# ----------------------------------------------------------------------
@dataclass
class BuildCheckpoint:
    """One serialized XBUILD state (see module docstring).

    ``trail`` holds live :class:`Refinement` objects; ``steps`` holds
    plain dicts (``description``/``size_bytes``/``gain``) so this module
    needs no import from the build loop.
    """

    seed: int
    budget_bytes: int
    config: dict
    fingerprint: dict
    trail: list = field(default_factory=list)
    steps: list = field(default_factory=list)
    rng_state: Optional[tuple] = None
    stall: int = 0
    sketch_payload: Optional[dict] = None

    # ------------------------------------------------------------------
    def verify_compatible(
        self, *, seed: int, budget_bytes: int, config: dict, fingerprint: dict
    ) -> None:
        """Raise :class:`CheckpointError` unless a resumed build with these
        settings would be bit-identical to the checkpointed one."""
        mismatches = []
        if seed != self.seed:
            mismatches.append(f"seed {seed} != checkpoint seed {self.seed}")
        if budget_bytes != self.budget_bytes:
            mismatches.append(
                f"budget {budget_bytes} != checkpoint budget "
                f"{self.budget_bytes}"
            )
        if config != self.config:
            mismatches.append("synopsis configuration differs")
        if fingerprint != self.fingerprint:
            mismatches.append(
                f"document fingerprint {fingerprint} != checkpoint "
                f"fingerprint {self.fingerprint}"
            )
        if mismatches:
            raise CheckpointError(
                "checkpoint is incompatible with this build: "
                + "; ".join(mismatches)
            )

    def best_sketch(self):
        """The checkpoint's best-so-far synopsis, estimation-ready.

        Loaded through :func:`repro.synopsis.persist.sketch_from_dict`, so
        the result supports estimation but not further refinement (use
        resume for that).
        """
        from ..synopsis.persist import sketch_from_dict

        if self.sketch_payload is None:
            raise CheckpointError("checkpoint carries no sketch payload")
        return sketch_from_dict(self.sketch_payload)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to the JSON checkpoint-file layout."""
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "seed": self.seed,
            "budget_bytes": self.budget_bytes,
            "config": self.config,
            "fingerprint": self.fingerprint,
            "trail": [refinement_to_dict(r) for r in self.trail],
            "steps": self.steps,
            "rng_state": (
                _rng_state_to_json(self.rng_state)
                if self.rng_state is not None
                else None
            ),
            "stall": self.stall,
            "sketch": self.sketch_payload,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BuildCheckpoint":
        """Load a checkpoint serialized by :meth:`to_dict`."""
        if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError("not an XBUILD checkpoint payload")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {payload.get('version')!r}"
            )
        try:
            return cls(
                seed=payload["seed"],
                budget_bytes=payload["budget_bytes"],
                config=dict(payload["config"]),
                fingerprint=dict(payload["fingerprint"]),
                trail=[refinement_from_dict(r) for r in payload["trail"]],
                steps=[dict(step) for step in payload["steps"]],
                rng_state=(
                    _rng_state_from_json(payload["rng_state"])
                    if payload["rng_state"] is not None
                    else None
                ),
                stall=payload.get("stall", 0),
                sketch_payload=payload.get("sketch"),
            )
        except (KeyError, TypeError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc


def save_checkpoint(checkpoint: BuildCheckpoint, path) -> None:
    """Write the checkpoint to ``path`` as JSON."""
    try:
        with open(str(path), "w", encoding="utf8") as handle:
            json.dump(checkpoint.to_dict(), handle)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc


def load_checkpoint(path) -> BuildCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    try:
        with open(str(path), encoding="utf8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot load checkpoint {path}: {exc}") from exc
    return BuildCheckpoint.from_dict(payload)
