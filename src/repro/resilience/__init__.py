"""Resilience layer: budgets, retry, fault injection, checkpoint/resume.

The long-running paths of this repository — XBUILD's greedy construction
loop, document ingestion, the experiment harness — were written for the
happy path.  This package gives them a shared failure-handling substrate:

* :mod:`~repro.resilience.guards` — :class:`Budget`: wall-clock deadline,
  step, recursion-depth, and size limits behind cheap check calls;
* :mod:`~repro.resilience.retry` — deterministic seeded
  retry-with-backoff (:class:`RetryPolicy`, :func:`retry`);
* :mod:`~repro.resilience.checkpoint` — :class:`BuildCheckpoint` and the
  replay-based resume protocol for XBUILD;
* :mod:`~repro.resilience.faults` — seeded :class:`FaultPlan` injection
  at the library's instrumented failure sites, so every recovery path
  above is testable on demand.

This package stays import-light at module level (stdlib +
:mod:`repro.errors` only): the rest of the library instruments itself
with :func:`fault_check` calls, so importing resilience must never drag
in the build or synopsis layers.  Heavy imports live inside functions.
"""

from __future__ import annotations

from .checkpoint import (
    CHECKPOINT_VERSION,
    BuildCheckpoint,
    config_signature,
    load_checkpoint,
    refinement_from_dict,
    refinement_to_dict,
    save_checkpoint,
    tree_fingerprint,
)
from .faults import (
    SITE_BUILD_APPLY,
    SITE_BUILD_ROUND,
    SITE_BUILD_STEP,
    SITE_ORACLE,
    SITE_PARSE,
    SITES,
    Fault,
    FaultPlan,
    fault_check,
)
from .guards import Budget
from .retry import RetryPolicy, retry

__all__ = [
    "Budget",
    "RetryPolicy",
    "retry",
    "Fault",
    "FaultPlan",
    "fault_check",
    "SITES",
    "SITE_PARSE",
    "SITE_ORACLE",
    "SITE_BUILD_ROUND",
    "SITE_BUILD_APPLY",
    "SITE_BUILD_STEP",
    "BuildCheckpoint",
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "refinement_to_dict",
    "refinement_from_dict",
    "tree_fingerprint",
    "config_signature",
]
