"""Seeded fault injection for testing recovery paths.

Every recovery path in the resilience layer — checkpoint resume, lenient
parsing, suite isolation, retry — must be *provable*, which requires
failing the guarded code on demand at a precise point.  This module
instruments the library's failure-prone sites with ``fault_check(site)``
calls (no-ops in production: one global ``is None`` test) and lets tests
arm a :class:`FaultPlan` around them::

    plan = FaultPlan(Fault(SITE_BUILD_STEP, after=3))
    with plan.active():
        XBuild(tree, budget).run()      # raises FaultInjected at step 4

Faults fire deterministically by hit count (``after``/``times``) or as a
seeded coin flip (``probability``), never from ambient randomness — the
same plan against the same code always fails at the same place.

Instrumented sites (the :data:`SITES` registry):

* ``doc.parse`` — entry of :func:`repro.doc.parser.parse_string`;
* ``oracle.true_count`` — each truth-oracle evaluation in
  :mod:`repro.build.oracles`;
* ``build.round`` — top of each XBUILD greedy round;
* ``build.apply`` — before each candidate refinement application;
* ``build.step`` — after a refinement is applied (and any checkpoint
  written), i.e. *at* the checkpoint boundary.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from ..errors import FaultInjected

SITE_PARSE = "doc.parse"
SITE_ORACLE = "oracle.true_count"
SITE_BUILD_ROUND = "build.round"
SITE_BUILD_APPLY = "build.apply"
SITE_BUILD_STEP = "build.step"

#: every site the library instruments, for plan validation
SITES = (
    SITE_PARSE,
    SITE_ORACLE,
    SITE_BUILD_ROUND,
    SITE_BUILD_APPLY,
    SITE_BUILD_STEP,
)


@dataclass
class Fault:
    """One planned failure at an instrumented site.

    Attributes:
        site: which :data:`SITES` entry to fail at.
        after: hits to let pass before the fault arms — ``after=3`` fails
            the 4th hit of the site.
        times: how many hits fail once armed (``None`` = every one).
        probability: chance an armed hit fails, drawn from the plan's
            seeded RNG; 1.0 = always.
        message: override for the injected error message.
        error: exception *type* to raise; defaults to
            :class:`~repro.errors.FaultInjected`.
        fired: how many times this fault has raised (set by the plan).
    """

    site: str
    after: int = 0
    times: Optional[int] = 1
    probability: float = 1.0
    message: str = ""
    error: Optional[type] = None
    fired: int = field(default=0, compare=False)

    def exhausted(self) -> bool:
        """True once the fault has raised its full quota."""
        return self.times is not None and self.fired >= self.times


class FaultPlan:
    """A set of planned faults plus the counters that drive them.

    Args:
        *faults: the :class:`Fault` entries; sites must come from
            :data:`SITES` (catches typos at construction time).
        seed: RNG seed for probabilistic faults.

    ``hits`` records every instrumented call seen while active (keyed by
    site), and ``injected`` records each ``(site, hit_number)`` that
    actually raised, so tests can assert exactly where a run died.
    """

    def __init__(self, *faults: Fault, seed: int = 17):
        for fault in faults:
            if fault.site not in SITES:
                raise FaultInjected(
                    f"fault plan names unknown site {fault.site!r}; "
                    f"instrumented sites are {', '.join(SITES)}"
                )
        self.faults = list(faults)
        self.seed = seed
        self.hits: dict[str, int] = {}
        self.injected: list[tuple[str, int]] = []
        self._rng = random.Random(seed)

    def check(self, site: str) -> None:
        """Count a hit at ``site`` and raise when a planned fault fires."""
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        for fault in self.faults:
            if fault.site != site or fault.exhausted():
                continue
            if count <= fault.after:
                continue
            if fault.probability < 1.0 and self._rng.random() >= fault.probability:
                continue
            fault.fired += 1
            self.injected.append((site, count))
            error_type = fault.error if fault.error is not None else FaultInjected
            message = fault.message or (
                f"injected fault at {site} (hit {count})"
            )
            raise error_type(message)

    @contextmanager
    def active(self):
        """Install the plan as the process-wide active plan."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous


#: the currently armed plan; production code never sets this
_ACTIVE: Optional[FaultPlan] = None


def fault_check(site: str) -> None:
    """Instrumentation hook: no-op unless a :class:`FaultPlan` is active."""
    if _ACTIVE is not None:
        _ACTIVE.check(site)
