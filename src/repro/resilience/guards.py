"""Resource budgets for the long-running paths.

A :class:`Budget` bundles the limits a long-running operation must respect
— a wall-clock deadline, a step count, a recursion depth, an input size —
behind cheap ``check_*``/``charge_*`` calls sprinkled through the hot
loop.  Violations raise :class:`~repro.errors.DeadlineExceeded` or
:class:`~repro.errors.ResourceLimitError`, both :class:`ReproError`
subclasses, so callers distinguish "ran out of budget" from "broke".

Budgets are injectable: pass ``clock=`` a fake monotonic clock in tests to
exercise deadline paths without sleeping.  A budget with every limit left
``None`` is a no-op — every check passes — so guarded code needs no
``if budget is not None`` branches.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Optional

from ..errors import DeadlineExceeded, ResourceLimitError


class Budget:
    """Wall-clock / step / recursion / size limits for one operation.

    Args:
        deadline: wall-clock budget in seconds, measured from construction
            (``None`` = unlimited).
        max_steps: how many :meth:`step` calls may pass.
        max_depth: how deep :meth:`recursion` frames may nest.
        max_bytes: how many bytes :meth:`charge_bytes` may accumulate.
        clock: monotonic time source (override in tests).

    The instance is usable as a context manager purely for scoping
    readability (``with Budget(deadline=5) as budget: ...``); entering and
    exiting does not reset any counter.
    """

    def __init__(
        self,
        *,
        deadline: Optional[float] = None,
        max_steps: Optional[int] = None,
        max_depth: Optional[int] = None,
        max_bytes: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        for label, limit in (
            ("deadline", deadline),
            ("max_steps", max_steps),
            ("max_depth", max_depth),
            ("max_bytes", max_bytes),
        ):
            if limit is not None and limit <= 0:
                raise ResourceLimitError(
                    f"budget {label} must be positive, got {limit!r}"
                )
        self._clock = clock
        self._started = clock()
        self.deadline = deadline
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.max_bytes = max_bytes
        self.steps = 0
        self.bytes_charged = 0
        self._depth = 0

    # ------------------------------------------------------------------
    # wall clock
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._clock() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline; None when unlimited."""
        if self.deadline is None:
            return None
        return self.deadline - self.elapsed()

    def expired(self) -> bool:
        """True when the wall-clock deadline has passed."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check_deadline(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` when past the deadline."""
        if self.expired():
            raise DeadlineExceeded(
                f"{what} exceeded its {self.deadline:g}s deadline "
                f"(elapsed {self.elapsed():.2f}s)"
            )

    # ------------------------------------------------------------------
    # countable resources
    # ------------------------------------------------------------------
    def step(self, what: str = "loop") -> int:
        """Count one step; raise when the step limit is exhausted.

        Returns the new step count, so callers can log progress.
        """
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise ResourceLimitError(
                f"{what} exceeded its step limit of {self.max_steps}"
            )
        return self.steps

    def charge_bytes(self, count: int, what: str = "input") -> int:
        """Accumulate ``count`` bytes; raise past the size limit."""
        self.bytes_charged += count
        if self.max_bytes is not None and self.bytes_charged > self.max_bytes:
            raise ResourceLimitError(
                f"{what} exceeded its size limit of {self.max_bytes} bytes "
                f"({self.bytes_charged} charged)"
            )
        return self.bytes_charged

    @contextmanager
    def recursion(self, what: str = "recursion"):
        """Guard one nesting level; raise past the depth limit."""
        self._depth += 1
        try:
            if self.max_depth is not None and self._depth > self.max_depth:
                raise ResourceLimitError(
                    f"{what} exceeded its depth limit of {self.max_depth}"
                )
            yield self._depth
        finally:
            self._depth -= 1

    # ------------------------------------------------------------------
    def __enter__(self) -> "Budget":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Budget deadline={self.deadline} steps={self.steps}"
            f"/{self.max_steps} elapsed={self.elapsed():.2f}s>"
        )
