"""Deterministic seeded retry-with-backoff for flaky callables.

The experiment harness runs for minutes over generated corpora; a
transient failure (an injected fault in tests, a flaky data source in a
deployment) should cost one retry, not the whole suite.  The decorator
here is deliberately deterministic: backoff jitter comes from a seeded
:class:`random.Random`, so a given (policy, seed) pair always produces
the same delay sequence — reproducibility is the repository's core
invariant and the resilience layer must not be the place it leaks.

Budget overruns are *not* transient: :class:`RetryPolicy.give_up_on`
defaults to :class:`~repro.errors.DeadlineExceeded`, which re-raises
immediately instead of burning the remaining wall clock on retries.
"""

from __future__ import annotations

import functools
import random
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import DeadlineExceeded, ReproError


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts, how long between them, and what is retryable.

    Attributes:
        attempts: total call attempts (1 = no retry).
        base_delay: delay before the first retry, in seconds.
        multiplier: exponential backoff factor per further retry.
        max_delay: cap on any single delay.
        jitter: fractional jitter — each delay is scaled by a seeded
            ``1 + jitter * U[0, 1)`` draw.
        retry_on: exception types that trigger a retry.
        give_up_on: exception types re-raised immediately even when they
            match ``retry_on`` (deadline overruns by default).
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    retry_on: tuple = (ReproError,)
    give_up_on: tuple = (DeadlineExceeded,)

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("retry policy needs at least one attempt")

    def delay_for(self, retry_index: int, rng: random.Random) -> float:
        """The backoff delay before retry ``retry_index`` (1-based)."""
        raw = self.base_delay * self.multiplier ** (retry_index - 1)
        return min(raw, self.max_delay) * (1.0 + self.jitter * rng.random())


def retry(
    policy: Optional[RetryPolicy] = None,
    *,
    seed: int = 17,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
):
    """Decorate a callable with seeded retry-with-backoff.

    Each *invocation* gets a fresh ``random.Random(seed)``, so the delay
    sequence is identical across runs and across calls.  ``on_retry`` (if
    given) observes ``(retry_index, error, delay)`` before each sleep.
    After the last attempt the final exception propagates unchanged.

    Usage::

        @retry(RetryPolicy(attempts=3), seed=7)
        def fetch():
            ...

        fetch = retry()(flaky_fn)   # or wrap an existing callable
    """
    policy = policy if policy is not None else RetryPolicy()

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            rng = random.Random(seed)
            for attempt in range(1, policy.attempts + 1):
                try:
                    return fn(*args, **kwargs)
                except policy.give_up_on:
                    raise
                except policy.retry_on as error:
                    if attempt == policy.attempts:
                        raise
                    delay = policy.delay_for(attempt, rng)
                    if on_retry is not None:
                        on_retry(attempt, error, delay)
                    sleep(delay)
            raise AssertionError("unreachable")  # pragma: no cover

        return wrapper

    return decorate
