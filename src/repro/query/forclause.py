"""Parse XQuery-style ``for`` clauses into :class:`TwigQuery` objects.

The paper represents twig queries interchangeably as trees or as ``for``
clauses::

    for t0 in //movie[type = "Action"],
        t1 in t0/actor,
        t2 in t0/producer

Each clause after the first must start with a previously-bound variable
followed by ``/`` and a path; the ``for`` keyword and trailing ``return``
clause are optional and ignored.
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .ast import TwigNode, TwigQuery
from .parser import parse_path

_CLAUSE_RE = re.compile(
    r"^\s*(?P<var>\$?\w+)\s+in\s+(?P<expr>.+?)\s*$", re.DOTALL
)


def _split_clauses(text: str) -> list[tuple[int, str]]:
    """Split on top-level commas (commas inside [] / {} / quotes are kept).

    Returns ``(offset, clause)`` pairs, where ``offset`` is the position of
    the stripped clause within ``text`` — kept so parse errors can report
    where in the original input a bad clause starts.
    """
    spans: list[tuple[int, str]] = []
    depth = 0
    quote = ""
    start = 0
    for index, char in enumerate(text):
        if quote:
            if char == quote:
                quote = ""
            continue
        if char in "'\"":
            quote = char
        elif char in "[{(":
            depth += 1
        elif char in "]})":
            depth -= 1
        elif char == "," and depth == 0:
            spans.append((start, text[start:index]))
            start = index + 1
    spans.append((start, text[start:]))
    return [
        (offset + len(clause) - len(clause.lstrip()), clause.strip())
        for offset, clause in spans
        if clause.strip()
    ]


def parse_for_clause(text: str) -> TwigQuery:
    """Parse a ``for`` clause into a twig query.

    Raises:
        ParseError: for malformed clauses, unknown parent variables, or a
            non-root clause that does not navigate from a variable.
    """
    lead = len(text) - len(text.lstrip())
    body = text.strip()
    if body.lower().startswith("for "):
        body = body[4:]
        lead += 4
    return_pos = re.search(r"\breturn\b", body)
    if return_pos:
        body = body[: return_pos.start()]

    nodes: dict[str, TwigNode] = {}
    root: TwigNode | None = None
    for offset, clause in _split_clauses(body):
        position = lead + offset
        match = _CLAUSE_RE.match(clause)
        if not match:
            raise ParseError(
                f"malformed for-clause entry: {clause!r}",
                text=clause,
                position=position,
            )
        var = match.group("var").lstrip("$")
        expr = match.group("expr").strip()
        if var in nodes:
            raise ParseError(
                f"variable {var!r} bound twice", text=clause, position=position
            )

        parent_var = None
        first_token = re.match(r"^\$?(\w+)\s*(//|/)", expr)
        if first_token and first_token.group(1) in nodes:
            parent_var = first_token.group(1)
            # Keep "//" (descendant axis) but drop a single "/" (child axis).
            axis = first_token.group(2)
            expr = ("//" if axis == "//" else "") + expr[first_token.end() :]
        node = TwigNode(var, parse_path(expr))
        if parent_var is None:
            if root is not None:
                raise ParseError(
                    f"clause {clause!r} does not navigate from a bound variable",
                    text=clause,
                    position=position,
                )
            root = node
        else:
            nodes[parent_var].add_child(node)
        nodes[var] = node

    if root is None:
        raise ParseError("for clause binds no variables", text=text, position=0)
    return TwigQuery(root)
