"""Twig queries: AST, parsers, value predicates, and exact evaluation.

Public surface:

* :class:`Step`, :class:`Path`, :class:`TwigNode`, :class:`TwigQuery`,
  :func:`twig` — the query model;
* :func:`parse_path`, :func:`parse_for_clause` — string syntaxes;
* :class:`ValuePredicate` — the ``{σ}`` predicates;
* :func:`count_bindings`, :func:`enumerate_bindings`, :func:`eval_path`,
  :func:`path_exists` — exact (ground-truth) evaluation.
"""

from .ast import CHILD, DESCENDANT, Path, Step, TwigNode, TwigQuery, twig
from .evaluator import count_bindings, enumerate_bindings, eval_path, path_exists
from .forclause import parse_for_clause
from .parser import parse_path
from .values import ValuePredicate

__all__ = [
    "CHILD",
    "DESCENDANT",
    "Path",
    "Step",
    "TwigNode",
    "TwigQuery",
    "ValuePredicate",
    "count_bindings",
    "enumerate_bindings",
    "eval_path",
    "parse_for_clause",
    "parse_path",
    "path_exists",
    "twig",
]
