"""Parser for the library's XPath-subset path syntax.

The concrete syntax mirrors the paper's abstract grammar
``l1{σ1}[branch1]/.../ln{σn}[branchn]`` plus the descendant axis ``//``:

* ``author/paper/title`` — child steps;
* ``//keyword`` — descendant step (anywhere below the context);
* ``paper{>2000}`` — value predicate on the step's own element;
* ``paper[year{>2000}]`` — branching predicate (existential sub-path);
* ``paper[year > 2000]`` and ``movie[/type = "Action"]`` — XPath-flavoured
  sugar: a branch whose *last* step carries the comparison;
* ``year{1990..1999}`` — closed range predicate.

String literals may be quoted (single or double); unquoted literals are
coerced to int/float when they parse as numbers.
"""

from __future__ import annotations

from ..doc.parser import coerce_value
from ..errors import ParseError
from .ast import CHILD, DESCENDANT, Path, Step
from .values import ValuePredicate

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_@#")
_NAME_BODY = _NAME_START | set("0123456789-.")
_COMPARISON_OPS = ("<=", ">=", "!=", "<", ">", "=")


class _Cursor:
    """Minimal scanning cursor over the query text."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(message, text=self.text, position=self.pos)

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, width: int = 1) -> str:
        return self.text[self.pos : self.pos + width]

    def advance(self, width: int = 1) -> None:
        self.pos += width

    def skip_ws(self) -> None:
        while not self.eof() and self.text[self.pos].isspace():
            self.pos += 1

    def expect(self, token: str) -> None:
        if self.peek(len(token)) != token:
            raise self.error(f"expected {token!r}")
        self.advance(len(token))

    # ------------------------------------------------------------------
    def read_name(self) -> str:
        self.skip_ws()
        start = self.pos
        if self.eof() or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a tag name")
        self.pos += 1
        while not self.eof() and self.text[self.pos] in _NAME_BODY:
            self.pos += 1
        return self.text[start : self.pos]

    def read_literal(self, stop_chars: str):
        """Read a (possibly quoted) literal up to one of ``stop_chars``."""
        self.skip_ws()
        if self.eof():
            raise self.error("expected a literal value")
        quote = self.text[self.pos]
        if quote in "'\"":
            self.advance()
            start = self.pos
            while not self.eof() and self.text[self.pos] != quote:
                self.pos += 1
            if self.eof():
                raise self.error("unterminated string literal")
            raw = self.text[start : self.pos]
            self.advance()
            return raw
        start = self.pos
        while not self.eof() and self.text[self.pos] not in stop_chars:
            self.pos += 1
        raw = self.text[start : self.pos].strip()
        if not raw:
            raise self.error("expected a literal value")
        return coerce_value(raw)


def _read_comparison_op(cursor: _Cursor) -> str | None:
    cursor.skip_ws()
    for op in _COMPARISON_OPS:
        if cursor.peek(len(op)) == op:
            cursor.advance(len(op))
            return op
    return None


def _parse_value_pred(cursor: _Cursor) -> ValuePredicate:
    """Parse the body of ``{...}`` (the opening brace is consumed)."""
    op = _read_comparison_op(cursor)
    value = cursor.read_literal(stop_chars="}.")
    cursor.skip_ws()
    if cursor.peek(2) == "..":
        if op is not None:
            raise cursor.error("range predicate cannot carry an operator")
        cursor.advance(2)
        high = cursor.read_literal(stop_chars="}")
        cursor.expect("}")
        return ValuePredicate("range", value, high)
    cursor.expect("}")
    return ValuePredicate(op or "=", value)


def _parse_branch(cursor: _Cursor) -> Path:
    """Parse the body of ``[...]`` (the opening bracket is consumed).

    A branch is a path; XPath-style sugar ``[path OP literal]`` moves the
    comparison onto the branch's final step.
    """
    path = _parse_path(cursor, stop_chars="]<>=!")
    op = _read_comparison_op(cursor)
    if op is not None:
        value = cursor.read_literal(stop_chars="]")
        last = path.steps[-1]
        if last.value_pred is not None:
            raise cursor.error("step already carries a value predicate")
        patched = Step(last.tag, last.axis, ValuePredicate(op, value), last.branches)
        path = Path(path.steps[:-1] + (patched,))
    cursor.skip_ws()
    cursor.expect("]")
    return path


def _parse_step(cursor: _Cursor, axis: str) -> Step:
    tag = cursor.read_name()
    value_pred = None
    branches: list[Path] = []
    while True:
        cursor.skip_ws()
        head = cursor.peek()
        if head == "{":
            if value_pred is not None:
                raise cursor.error("step already carries a value predicate")
            cursor.advance()
            value_pred = _parse_value_pred(cursor)
        elif head == "[":
            cursor.advance()
            branches.append(_parse_branch(cursor))
        else:
            break
    return Step(tag, axis, value_pred, tuple(branches))


def _parse_path(cursor: _Cursor, stop_chars: str = "") -> Path:
    steps: list[Step] = []
    cursor.skip_ws()
    while True:
        if cursor.peek(2) == "//":
            cursor.advance(2)
            axis = DESCENDANT
        elif cursor.peek() == "/":
            cursor.advance()
            axis = CHILD
        else:
            axis = CHILD
            if steps:
                break
        steps.append(_parse_step(cursor, axis))
        cursor.skip_ws()
        if cursor.eof() or (stop_chars and cursor.peek() in stop_chars):
            break
        if cursor.peek() not in "/":
            break
    if not steps:
        raise cursor.error("empty path")
    return Path(tuple(steps))


def parse_path(text: str) -> Path:
    """Parse a path expression string into a :class:`Path`.

    Raises:
        ParseError: on any syntax error, with the failing offset.
    """
    cursor = _Cursor(text)
    path = _parse_path(cursor)
    cursor.skip_ws()
    if not cursor.eof():
        raise cursor.error("trailing input after path")
    return path
