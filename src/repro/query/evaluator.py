"""Exact evaluation of twig queries over document trees.

This is the ground-truth oracle of the reproduction: it computes the
paper's selectivity ``s(T_Q)`` — the number of binding tuples — exactly
(Example 2.1).  The evaluator also materializes the tuples themselves for
small results, which the tests use to check the example tables.

Semantics (Section 2 of the paper):

* a binding tuple assigns one document element to every twig node;
* a twig node's element must be in the result of the node's path evaluated
  from the parent node's element (the root path is evaluated from the
  document root);
* intermediate elements of multi-step paths, branch matches, and value
  tests do not contribute variables — they only restrict the result sets.

Because documents are trees, each element is reached by a path through a
unique chain of intermediates, so result *sets* suffice (no bag semantics
needed) and the binding count factorizes over twig subtrees::

    count(t, e) = sum over e' in eval_path(P_t, e) of
                  product over children c of t of count(c, e')

which the evaluator computes without ever materializing tuples.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..doc.node import DocumentNode
from ..doc.tree import DocumentTree
from .ast import DESCENDANT, Path, Step, TwigNode, TwigQuery


class _VirtualRoot:
    """A super-root above the document root.

    The root twig node's path is absolute: ``bib`` must match the document
    root element itself (XPath ``/bib``), and ``//keyword`` must match
    keywords anywhere, including the root.  Evaluating from this shim
    instead of from the root element gives both behaviours.
    """

    __slots__ = ("children",)

    def __init__(self, root: DocumentNode):
        self.children = [root]

    def iter_descendants(self) -> Iterator[DocumentNode]:
        return self.children[0].iter_subtree()


def virtual_root(tree: DocumentTree) -> _VirtualRoot:
    """Evaluation context for absolute (root twig node) paths."""
    return _VirtualRoot(tree.root)


def absolute_path(path: Path) -> Path:
    """Rewrite a root twig node's path for evaluation from the virtual root.

    The paper writes ``for t0 in A`` to mean *all* elements with tag A (the
    extent of synopsis node A), so the first step of an absolute path uses
    descendant-or-self semantics: its axis becomes :data:`DESCENDANT`.
    """
    first = path.steps[0]
    if first.axis == DESCENDANT:
        return path
    rewritten = Step(first.tag, DESCENDANT, first.value_pred, first.branches)
    return Path((rewritten,) + path.steps[1:])


def _step_candidates(context: DocumentNode, step: Step) -> Iterator[DocumentNode]:
    """Elements reachable from ``context`` via the step's axis and tag."""
    if step.axis == DESCENDANT:
        for node in context.iter_descendants():
            if node.tag == step.tag:
                yield node
    else:
        for child in context.children:
            if child.tag == step.tag:
                yield child


def _step_matches(node: DocumentNode, step: Step) -> bool:
    """Apply the step's value predicate and branching predicates."""
    if step.value_pred is not None and not step.value_pred.matches(node.value):
        return False
    for branch in step.branches:
        if not path_exists(branch, node):
            return False
    return True


def eval_path(path: Path, context: DocumentNode) -> list[DocumentNode]:
    """All elements in the result of ``path`` evaluated from ``context``.

    The result is duplicate-free and in document order.
    """
    frontier = [context]
    for step in path.steps:
        seen: dict[int, DocumentNode] = {}
        for element in frontier:
            for candidate in _step_candidates(element, step):
                if id(candidate) in seen:
                    continue
                if _step_matches(candidate, step):
                    seen[id(candidate)] = candidate
        frontier = sorted(seen.values(), key=lambda n: n.node_id)
    return frontier


def path_exists(path: Path, context: DocumentNode) -> bool:
    """True when ``path`` has at least one match from ``context``.

    Short-circuits; used for branching predicates where only existence
    matters.
    """
    frontier: list[DocumentNode] = [context]
    for index, step in enumerate(path.steps):
        is_last = index == len(path.steps) - 1
        next_frontier: list[DocumentNode] = []
        seen: set[int] = set()
        for element in frontier:
            for candidate in _step_candidates(element, step):
                if id(candidate) in seen:
                    continue
                seen.add(id(candidate))
                if _step_matches(candidate, step):
                    if is_last:
                        return True
                    next_frontier.append(candidate)
        frontier = next_frontier
        if not frontier:
            return False
    return bool(frontier)


def _count_from(node: TwigNode, context: DocumentNode) -> int:
    matches = eval_path(node.path, context)
    if not node.children:
        return len(matches)
    total = 0
    for element in matches:
        product = 1
        for child in node.children:
            product *= _count_from(child, element)
            if product == 0:
                break
        total += product
    return total


def count_bindings(query: TwigQuery, tree: DocumentTree) -> int:
    """Exact selectivity ``s(T_Q)``: the number of binding tuples."""
    matches = eval_path(absolute_path(query.root.path), virtual_root(tree))
    total = 0
    for element in matches:
        product = 1
        for child in query.root.children:
            product *= _count_from(child, element)
            if product == 0:
                break
        total += product
    return total


def enumerate_bindings(
    query: TwigQuery, tree: DocumentTree, limit: Optional[int] = None
) -> list[dict[str, DocumentNode]]:
    """Materialize binding tuples as ``{var: element}`` dicts.

    Intended for tests and examples; raises no error on large results but
    stops after ``limit`` tuples when given.  Tuples are produced in
    document order of the root binding, then recursively of each child.
    """
    def subtree_bindings(
        node: TwigNode, context: DocumentNode, path: Optional[Path] = None
    ) -> Iterator[dict[str, DocumentNode]]:
        for element in eval_path(path if path is not None else node.path, context):
            for child_binding in children_product(node.children, element):
                yield {node.var: element, **child_binding}

    def children_product(
        children: list[TwigNode], element: DocumentNode
    ) -> Iterator[dict[str, DocumentNode]]:
        if not children:
            yield {}
            return
        head, rest = children[0], children[1:]
        for head_binding in subtree_bindings(head, element):
            for rest_binding in children_product(rest, element):
                yield {**head_binding, **rest_binding}

    results: list[dict[str, DocumentNode]] = []
    for binding in subtree_bindings(
        query.root, virtual_root(tree), absolute_path(query.root.path)
    ):
        results.append(binding)
        if limit is not None and len(results) >= limit:
            break
    return results
