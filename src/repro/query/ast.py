"""Abstract syntax for twig queries (the paper's Section 2).

A twig query is a node-labelled tree: each :class:`TwigNode` carries a
:class:`Path` describing the structural relationship between the elements it
binds and the elements bound by its parent node.  A :class:`Path` is a chain
of :class:`Step` objects, each of the paper's form ``l{σ}[branch]...`` — a
tag test with an optional value predicate and any number of *branching
predicates* (existential sub-paths).

``axis`` distinguishes child steps (``/``) from descendant steps (``//``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import QueryError
from .values import ValuePredicate

CHILD = "child"
DESCENDANT = "descendant"


@dataclass(frozen=True)
class Step:
    """One navigation step ``l{σ}[branch]...``.

    Attributes:
        tag: the element tag matched by the step.
        axis: :data:`CHILD` or :data:`DESCENDANT` — how the step relates to
            the previous context (``//`` is the descendant axis).
        value_pred: optional predicate on the value of the reached element.
        branches: existential sub-paths evaluated from the reached element;
            all must have at least one match.
    """

    tag: str
    axis: str = CHILD
    value_pred: Optional[ValuePredicate] = None
    branches: tuple["Path", ...] = ()

    def __post_init__(self):
        if self.axis not in (CHILD, DESCENDANT):
            raise QueryError(f"unknown axis {self.axis!r}")
        if not self.tag:
            raise QueryError("step tag must be non-empty")

    def text(self) -> str:
        """Render the step in the library's query syntax."""
        parts = [self.tag]
        if self.value_pred is not None:
            parts.append(self.value_pred.text())
        for branch in self.branches:
            parts.append(f"[{branch.text()}]")
        return "".join(parts)

    def without_predicates(self) -> "Step":
        """The bare structural step (used when matching against a synopsis)."""
        return Step(self.tag, self.axis)


@dataclass(frozen=True)
class Path:
    """A chain of steps, e.g. ``movie[/type{=Action}]/actor``."""

    steps: tuple[Step, ...]

    def __post_init__(self):
        if not self.steps:
            raise QueryError("a path must contain at least one step")

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def last(self) -> Step:
        """The step binding the result elements of the path."""
        return self.steps[-1]

    @property
    def is_single_step(self) -> bool:
        """True when the path is a single navigational step (maximal form)."""
        return len(self.steps) == 1

    def text(self) -> str:
        """Render the path in the library's query syntax."""
        pieces: list[str] = []
        for index, step in enumerate(self.steps):
            if step.axis == DESCENDANT:
                pieces.append("//")
            elif index > 0:
                pieces.append("/")
            pieces.append(step.text())
        return "".join(pieces)

    def tags(self) -> tuple[str, ...]:
        """The sequence of tags along the path."""
        return tuple(step.tag for step in self.steps)

    @staticmethod
    def of(*tags: str) -> "Path":
        """Build a simple child-axis path from tag names (test helper)."""
        return Path(tuple(Step(tag) for tag in tags))


class TwigNode:
    """A node of the twig-query tree: a variable bound by a path.

    The paper writes ``t_i : P_i``; here ``var`` is the variable name and
    ``path`` is ``P_i``.  Children are the twig nodes whose paths are
    evaluated from this node's binding.
    """

    __slots__ = ("var", "path", "children", "parent")

    def __init__(self, var: str, path: Path):
        self.var = var
        self.path = path
        self.children: list[TwigNode] = []
        self.parent: Optional[TwigNode] = None

    def add_child(self, child: "TwigNode") -> "TwigNode":
        """Attach ``child`` and return it (for chaining)."""
        if child.parent is not None:
            raise QueryError(f"twig node {child.var!r} already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    def iter_subtree(self) -> Iterator["TwigNode"]:
        """Depth-first pre-order iteration, matching the paper's convention."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def text(self) -> str:
        """Render as ``var in path`` plus child clauses, one per line."""
        lines = [f"{self.var} in {self.path.text()}"]
        for child in self.children:
            for line in child.text().splitlines():
                lines.append(f"  {line}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TwigNode {self.var}:{self.path.text()}>"


class TwigQuery:
    """A complete twig query — a tree of :class:`TwigNode` variables.

    The root node's path is evaluated from the document root; every other
    node's path is evaluated from its parent's binding.  ``s(T_Q)`` — the
    paper's selectivity — is the number of binding tuples, computed exactly
    by :func:`repro.query.evaluator.count_bindings` and estimated by
    :class:`repro.estimation.estimator.TwigEstimator`.
    """

    def __init__(self, root: TwigNode):
        self.root = root

    # ------------------------------------------------------------------
    def nodes(self) -> list[TwigNode]:
        """All twig nodes, depth-first pre-order (t_0, t_1, ..., t_m)."""
        return list(self.root.iter_subtree())

    @property
    def size(self) -> int:
        """Number of twig nodes (variables) in the query."""
        return len(self.nodes())

    def structural_node_count(self) -> int:
        """Total navigation steps across all node paths, including branch
        predicates — the paper's "total number of twig nodes per query"
        counts every node of the pattern tree, which is what the 4–8
        workload bound constrains."""

        def path_steps(path: Path) -> int:
            total = 0
            for step in path.steps:
                total += 1
                total += sum(path_steps(branch) for branch in step.branches)
            return total

        return sum(path_steps(node.path) for node in self.nodes())

    def internal_fanouts(self) -> list[int]:
        """Child counts of internal twig nodes (Table 2's "Avg. Fanout")."""
        return [len(n.children) for n in self.nodes() if n.children]

    def has_value_predicates(self) -> bool:
        """True when any step anywhere (including branches) tests a value."""

        def path_has(path: Path) -> bool:
            for step in path.steps:
                if step.value_pred is not None:
                    return True
                if any(path_has(branch) for branch in step.branches):
                    return True
            return False

        return any(path_has(node.path) for node in self.nodes())

    def text(self) -> str:
        """Multi-line rendering: the root clause plus indented children."""
        return self.root.text()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TwigQuery {self.size} nodes>"


def twig(root_path: Path, *child_specs) -> TwigQuery:
    """Convenience constructor for small twigs.

    ``child_specs`` are :class:`Path` objects (direct children of the root)
    or nested ``(Path, [child_specs...])`` tuples.  Variables are named
    ``t0, t1, ...`` in depth-first order, matching the paper's notation.
    """
    counter = [0]

    def next_var() -> str:
        name = f"t{counter[0]}"
        counter[0] += 1
        return name

    def attach(parent: TwigNode, spec) -> None:
        if isinstance(spec, Path):
            parent.add_child(TwigNode(next_var(), spec))
            return
        path, subspecs = spec
        node = parent.add_child(TwigNode(next_var(), path))
        for subspec in subspecs:
            attach(node, subspec)

    root = TwigNode(next_var(), root_path)
    for spec in child_specs:
        attach(root, spec)
    return TwigQuery(root)
