"""Value predicates: the ``{σ}`` part of the paper's path grammar.

The paper's XPath subset attaches a value predicate to a navigation step,
restricting the *value* of the element reached by the step.  The
experimental workloads use range predicates over integer domains ("cover a
random 10% range of the corresponding value domain"); equality over strings
is also supported because the IMDB motivation example filters
``movie[/type=X]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..errors import QueryError

Comparable = Union[int, float, str]

#: Operators accepted by :class:`ValuePredicate`.
OPERATORS = ("=", "!=", "<", "<=", ">", ">=", "range")


@dataclass(frozen=True)
class ValuePredicate:
    """A comparison against an element's value.

    ``op`` is one of :data:`OPERATORS`.  For ``range``, the predicate is the
    closed interval ``[low, high]`` and ``value`` holds ``low`` while
    ``high`` holds the upper bound; for every other operator ``high`` is
    ``None``.
    """

    op: str
    value: Comparable
    high: Optional[Comparable] = None

    def __post_init__(self):
        if self.op not in OPERATORS:
            raise QueryError(f"unknown value-predicate operator {self.op!r}")
        if self.op == "range":
            if self.high is None:
                raise QueryError("range predicate needs both bounds")
            if type(self.value) is not type(self.high) and not (
                isinstance(self.value, (int, float))
                and isinstance(self.high, (int, float))
            ):
                raise QueryError("range bounds must be of the same type")
        elif self.high is not None:
            raise QueryError(f"operator {self.op!r} takes a single bound")

    # ------------------------------------------------------------------
    def matches(self, value) -> bool:
        """Evaluate the predicate against a concrete element value.

        A ``None`` value (element without text) never matches.  Comparing a
        numeric bound with a string value (or vice versa) is treated as a
        non-match rather than an error, mirroring XPath's forgiving
        semantics.
        """
        if value is None:
            return False
        numeric_bound = isinstance(self.value, (int, float))
        numeric_value = isinstance(value, (int, float))
        if numeric_bound != numeric_value:
            return False
        if self.op == "=":
            return value == self.value
        if self.op == "!=":
            return value != self.value
        if self.op == "<":
            return value < self.value
        if self.op == "<=":
            return value <= self.value
        if self.op == ">":
            return value > self.value
        if self.op == ">=":
            return value >= self.value
        # range
        return self.value <= value <= self.high

    # ------------------------------------------------------------------
    def text(self) -> str:
        """Render in the library's query syntax, e.g. ``{>2000}``."""
        if self.op == "range":
            return f"{{{self.value}..{self.high}}}"
        rendered = self.value if not isinstance(self.value, str) else self.value
        return f"{{{self.op}{rendered}}}"

    @staticmethod
    def between(low: Comparable, high: Comparable) -> "ValuePredicate":
        """Convenience constructor for a closed range predicate."""
        return ValuePredicate("range", low, high)

    @staticmethod
    def equals(value: Comparable) -> "ValuePredicate":
        """Convenience constructor for equality."""
        return ValuePredicate("=", value)
