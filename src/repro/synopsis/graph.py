"""The generic graph-synopsis model (paper Section 3.1).

A :class:`GraphSynopsis` partitions the elements of a document tree into
*synopsis nodes* with a common tag; a synopsis edge ``u → v`` exists when
some document edge connects an element of ``u``'s extent to an element of
``v``'s extent.  Each edge stores two counts:

* ``child_count`` — the number of elements of ``v`` whose parent is in ``u``
  (the paper's ``|u → v|``); since documents are trees, each element has
  one parent and these counts partition ``|v|`` across incoming edges;
* ``parent_count`` — the number of elements of ``u`` with at least one child
  in ``v``.

Stability (Section 3.1) falls out of the counts:
``u → v`` is Backward-stable iff ``child_count == |v|`` and
Forward-stable iff ``parent_count == |u|``.

The synopsis keeps the element→node assignment, which construction
(splitting) and exact edge-distribution computation need; the assignment is
scaffolding and is *not* charged to the synopsis size budget (see
:mod:`repro.synopsis.size`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..doc.node import DocumentNode
from ..doc.tree import DocumentTree
from ..errors import SynopsisError


@dataclass
class SynopsisNode:
    """One node of the synopsis: a set of same-tag document elements."""

    node_id: int
    tag: str
    extent: list[DocumentNode]

    @property
    def count(self) -> int:
        """Extent size — the paper's ``|u|``."""
        return len(self.extent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SynopsisNode #{self.node_id} {self.tag} |{self.count}|>"


@dataclass
class SynopsisEdge:
    """One synopsis edge with its counts and derived stabilities."""

    source: int
    target: int
    child_count: int
    parent_count: int
    source_size: int
    target_size: int

    @property
    def backward_stable(self) -> bool:
        """All elements of the target have a parent in the source."""
        return self.child_count == self.target_size

    @property
    def forward_stable(self) -> bool:
        """All elements of the source have a child in the target."""
        return self.parent_count == self.source_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = ("B" if self.backward_stable else "") + (
            "F" if self.forward_stable else ""
        )
        return f"<Edge {self.source}->{self.target} {flags or '-'}>"


class GraphSynopsis:
    """A partition of a document's elements plus the induced edge graph.

    Build one with :func:`label_split_synopsis` (the coarsest summary) or
    :meth:`from_partition`; refine it with :meth:`split_node`.
    """

    def __init__(self, tree: DocumentTree):
        self.tree = tree
        self.nodes: dict[int, SynopsisNode] = {}
        self.edges: dict[tuple[int, int], SynopsisEdge] = {}
        # assignment[element.node_id] -> synopsis node id
        self.assignment: list[int] = []
        self._next_id = 0
        # lazy adjacency index over ``edges`` — rebuilt after mutations
        self._adjacency: Optional[tuple[dict, dict]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_partition(
        cls, tree: DocumentTree, groups: Iterable[list[DocumentNode]]
    ) -> "GraphSynopsis":
        """Create a synopsis from an explicit partition of the elements.

        Raises:
            SynopsisError: if a group mixes tags, or the groups do not
                exactly cover the document's elements.
        """
        synopsis = cls(tree)
        synopsis.assignment = [-1] * tree.element_count
        for group in groups:
            synopsis._add_node(group)
        uncovered = [i for i, nid in enumerate(synopsis.assignment) if nid < 0]
        if uncovered:
            raise SynopsisError(
                f"partition misses {len(uncovered)} elements "
                f"(first: id {uncovered[0]})"
            )
        synopsis._recompute_all_edges()
        return synopsis

    def _add_node(self, extent: list[DocumentNode]) -> SynopsisNode:
        if not extent:
            raise SynopsisError("synopsis node needs a non-empty extent")
        tags = {element.tag for element in extent}
        if len(tags) != 1:
            raise SynopsisError(f"extent mixes tags: {sorted(tags)}")
        node = SynopsisNode(self._next_id, tags.pop(), list(extent))
        self._next_id += 1
        self.nodes[node.node_id] = node
        for element in extent:
            if self.assignment[element.node_id] >= 0:
                raise SynopsisError(
                    f"element {element.node_id} assigned to two synopsis nodes"
                )
            self.assignment[element.node_id] = node.node_id
        return node

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def _recompute_all_edges(self) -> None:
        self._adjacency = None
        self.edges = {}
        counts: dict[tuple[int, int], int] = {}
        parents: dict[tuple[int, int], set[int]] = {}
        for parent, child in self.tree.iter_edges():
            key = (self.assignment[parent.node_id], self.assignment[child.node_id])
            counts[key] = counts.get(key, 0) + 1
            parents.setdefault(key, set()).add(parent.node_id)
        for (source, target), child_count in counts.items():
            self.edges[(source, target)] = SynopsisEdge(
                source,
                target,
                child_count,
                len(parents[(source, target)]),
                self.nodes[source].count,
                self.nodes[target].count,
            )

    def _recompute_edges_touching(self, node_ids: set[int]) -> None:
        """Rebuild edges incident to ``node_ids`` (after a split)."""
        self._adjacency = None
        for key in [k for k in self.edges if k[0] in node_ids or k[1] in node_ids]:
            del self.edges[key]
        counts: dict[tuple[int, int], int] = {}
        parents: dict[tuple[int, int], set[int]] = {}

        def record(parent: DocumentNode, child: DocumentNode) -> None:
            key = (
                self.assignment[parent.node_id],
                self.assignment[child.node_id],
            )
            if key[0] in node_ids or key[1] in node_ids:
                counts[key] = counts.get(key, 0) + 1
                parents.setdefault(key, set()).add(parent.node_id)

        seen_pairs: set[tuple[int, int]] = set()
        for node_id in node_ids:
            for element in self.nodes[node_id].extent:
                for child in element.children:
                    pair = (element.node_id, child.node_id)
                    if pair not in seen_pairs:
                        seen_pairs.add(pair)
                        record(element, child)
                if element.parent is not None:
                    pair = (element.parent.node_id, element.node_id)
                    if pair not in seen_pairs:
                        seen_pairs.add(pair)
                        record(element.parent, element)
        for (source, target), child_count in counts.items():
            self.edges[(source, target)] = SynopsisEdge(
                source,
                target,
                child_count,
                len(parents[(source, target)]),
                self.nodes[source].count,
                self.nodes[target].count,
            )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> SynopsisNode:
        """The synopsis node with the given id."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise SynopsisError(f"no synopsis node #{node_id}") from None

    def edge(self, source: int, target: int) -> Optional[SynopsisEdge]:
        """The edge source→target, or None when absent."""
        return self.edges.get((source, target))

    def node_of(self, element: DocumentNode) -> int:
        """The synopsis node id containing ``element``."""
        return self.assignment[element.node_id]

    def _adjacency_index(self) -> tuple[dict, dict]:
        """(children, parents) edge lists per node id, in ``edges`` order."""
        if self._adjacency is None:
            children: dict[int, list[SynopsisEdge]] = {}
            parents: dict[int, list[SynopsisEdge]] = {}
            for edge in self.edges.values():
                children.setdefault(edge.source, []).append(edge)
                parents.setdefault(edge.target, []).append(edge)
            self._adjacency = (children, parents)
        return self._adjacency

    def children_of(self, node_id: int) -> list[SynopsisEdge]:
        """Outgoing edges of a synopsis node."""
        return list(self._adjacency_index()[0].get(node_id, ()))

    def parents_of(self, node_id: int) -> list[SynopsisEdge]:
        """Incoming edges of a synopsis node."""
        return list(self._adjacency_index()[1].get(node_id, ()))

    def nodes_with_tag(self, tag: str) -> list[SynopsisNode]:
        """All synopsis nodes whose elements carry ``tag``."""
        return [node for node in self.nodes.values() if node.tag == tag]

    def iter_nodes(self) -> Iterator[SynopsisNode]:
        """All synopsis nodes (insertion order)."""
        return iter(self.nodes.values())

    @property
    def node_count(self) -> int:
        """Number of synopsis nodes."""
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        """Number of synopsis edges."""
        return len(self.edges)

    # ------------------------------------------------------------------
    # nearest-ancestor lookup (used by backward counts)
    # ------------------------------------------------------------------
    def ancestor_in(self, element: DocumentNode, node_id: int) -> Optional[DocumentNode]:
        """The nearest ancestor of ``element`` lying in node ``node_id``."""
        for ancestor in element.iter_ancestors():
            if self.assignment[ancestor.node_id] == node_id:
                return ancestor
        return None

    # ------------------------------------------------------------------
    # refinement support
    # ------------------------------------------------------------------
    def split_node(
        self, node_id: int, part: set[int]
    ) -> tuple[int, int]:
        """Split node ``node_id`` into (elements in ``part``, the rest).

        Args:
            node_id: the node to split.
            part: document node ids selecting the first piece; must be a
                proper, non-empty subset of the extent.

        Returns:
            The ids of the two new synopsis nodes (part first).

        Raises:
            SynopsisError: when the subset is empty or not proper.
        """
        node = self.node(node_id)
        inside = [e for e in node.extent if e.node_id in part]
        outside = [e for e in node.extent if e.node_id not in part]
        if not inside or not outside:
            raise SynopsisError("split subset must be proper and non-empty")
        del self.nodes[node_id]
        first = SynopsisNode(self._next_id, node.tag, inside)
        self._next_id += 1
        second = SynopsisNode(self._next_id, node.tag, outside)
        self._next_id += 1
        self.nodes[first.node_id] = first
        self.nodes[second.node_id] = second
        for element in inside:
            self.assignment[element.node_id] = first.node_id
        for element in outside:
            self.assignment[element.node_id] = second.node_id
        # Edges touching the old node or its neighborhood must be rebuilt;
        # include neighbor node ids because their source/target sizes are
        # unchanged but their counts toward the split parts changed.
        affected = {first.node_id, second.node_id}
        affected.update(
            self.assignment[e.parent.node_id]
            for e in node.extent
            if e.parent is not None
        )
        affected.update(
            self.assignment[c.node_id] for e in node.extent for c in e.children
        )
        self._recompute_edges_touching(affected)
        return first.node_id, second.node_id

    def copy(self) -> "GraphSynopsis":
        """A structural copy sharing the document (cheap enough for XBUILD
        candidate evaluation: extent lists are copied shallowly)."""
        duplicate = GraphSynopsis(self.tree)
        duplicate.assignment = list(self.assignment)
        duplicate._next_id = self._next_id
        duplicate.nodes = {
            node_id: SynopsisNode(node.node_id, node.tag, list(node.extent))
            for node_id, node in self.nodes.items()
        }
        duplicate.edges = {
            key: SynopsisEdge(
                edge.source,
                edge.target,
                edge.child_count,
                edge.parent_count,
                edge.source_size,
                edge.target_size,
            )
            for key, edge in self.edges.items()
        }
        return duplicate

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the partition and edge-count invariants (test support)."""
        covered = 0
        for node in self.nodes.values():
            for element in node.extent:
                if self.assignment[element.node_id] != node.node_id:
                    raise SynopsisError(
                        f"assignment mismatch for element {element.node_id}"
                    )
                if element.tag != node.tag:
                    raise SynopsisError("extent element tag mismatch")
            covered += node.count
        if covered != self.tree.element_count:
            raise SynopsisError(
                f"partition covers {covered} of {self.tree.element_count} elements"
            )
        # Incoming child_counts partition each node's extent (tree data).
        for node_id, node in self.nodes.items():
            incoming = sum(e.child_count for e in self.parents_of(node_id))
            expected = node.count - (
                1 if self.assignment[self.tree.root.node_id] == node_id else 0
            )
            if incoming != expected:
                raise SynopsisError(
                    f"incoming counts of node #{node_id} sum to {incoming}, "
                    f"expected {expected}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GraphSynopsis nodes={self.node_count} edges={self.edge_count}>"


def label_split_synopsis(tree: DocumentTree) -> GraphSynopsis:
    """The coarsest synopsis: one node per distinct tag (paper Figure 3a).

    This is the ``S_0(G)`` starting point of XBUILD and the leftmost point
    of every error-vs-size curve in Figure 9.
    """
    return GraphSynopsis.from_partition(
        tree, (tree.extent(tag) for tag in tree.tags)
    )
