"""Exact edge distributions ``f_i(C_1, ..., C_k)`` (paper Section 3.2).

An edge distribution at synopsis node ``n_i`` is a fraction distribution
over the elements of ``n_i``; each dimension is an :class:`EdgeRef`:

* a **forward count** — an edge ``n_i → n_d``: the dimension value for
  element ``e`` is the number of ``e``'s children lying in ``n_d``;
* a **backward count** — an edge ``n_a → n_z`` where ``n_a`` is an
  ancestor node: the value is the number of children in ``n_z`` of ``e``'s
  nearest ancestor in ``n_a``.

This module computes the distribution exactly from the document (via the
synopsis extents); compression to a histogram happens in
:mod:`repro.synopsis.summary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import SynopsisError
from ..histogram.sparse import SparseDistribution
from .graph import GraphSynopsis


@dataclass(frozen=True, order=True)
class EdgeRef:
    """Identity of a count dimension: the synopsis edge it counts.

    At node ``n``, a ref with ``source == n`` is a forward count; any other
    source is a backward count anchored at that ancestor node.
    """

    source: int
    target: int

    def is_forward_at(self, node_id: int) -> bool:
        """True when this ref is a forward count at ``node_id``."""
        return self.source == node_id


def exact_edge_distribution(
    synopsis: GraphSynopsis, node_id: int, scope: Sequence[EdgeRef]
) -> SparseDistribution:
    """The exact distribution of ``scope`` counts over node ``node_id``.

    Raises:
        SynopsisError: when ``scope`` is empty, names a missing edge, or a
            backward ref's anchor is unreachable for some element (the
            construction algorithm only proposes TSN edges, for which this
            cannot happen; a zero count is recorded when an anchor is
            missing for an element so that non-TSN scopes remain usable in
            tests).
    """
    if not scope:
        raise SynopsisError("edge-distribution scope must be non-empty")
    node = synopsis.node(node_id)
    for ref in scope:
        if synopsis.edge(ref.source, ref.target) is None:
            raise SynopsisError(
                f"scope references missing edge {ref.source}->{ref.target}"
            )

    forward_targets = [r.target for r in scope if r.is_forward_at(node_id)]
    backward_refs = [r for r in scope if not r.is_forward_at(node_id)]

    observations: list[tuple[int, ...]] = []
    for element in node.extent:
        values: dict[EdgeRef, int] = {}
        if forward_targets:
            tally: dict[int, int] = {}
            for child in element.children:
                child_node = synopsis.node_of(child)
                tally[child_node] = tally.get(child_node, 0) + 1
            for ref in scope:
                if ref.is_forward_at(node_id):
                    values[ref] = tally.get(ref.target, 0)
        for ref in backward_refs:
            anchor = (
                element
                if ref.source == node_id
                else synopsis.ancestor_in(element, ref.source)
            )
            if anchor is None:
                values[ref] = 0
                continue
            values[ref] = sum(
                1
                for child in anchor.children
                if synopsis.node_of(child) == ref.target
            )
        observations.append(tuple(values[ref] for ref in scope))
    return SparseDistribution.from_observations(observations)


def mean_child_count(
    synopsis: GraphSynopsis, source: int, target: int
) -> float:
    """Average number of ``target`` children per ``source`` element.

    This is the Forward Uniformity value ``|n_i → n_j| / |n_i|``.
    """
    edge = synopsis.edge(source, target)
    if edge is None:
        return 0.0
    return edge.child_count / synopsis.node(source).count
