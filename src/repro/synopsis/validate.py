"""Invariant validation over Twig XSKETCHes (serving-side integrity).

A synopsis is built once and then consulted by every optimizer
invocation, usually after a save/load hop through
:mod:`repro.synopsis.persist`.  This module checks that a sketch —
freshly built (:class:`~repro.synopsis.graph.GraphSynopsis`) or loaded
(:class:`~repro.synopsis.persist.FrozenGraph`) — still satisfies the
structural invariants the estimators silently rely on:

* extent counts are finite, non-negative integers;
* edge endpoints resolve, and edge counts fit their extents
  (``parent_count ≤ child_count``, ``child_count ≤ |target|``,
  ``parent_count ≤ |source|``) — which is exactly what makes the derived
  B-/F-stability flags coherent with the topology;
* the edges' cached ``source_size``/``target_size`` match the node
  counts the flags are computed against;
* incoming child counts partition each extent: every element but the
  document root has exactly one parent, so the per-node deficits
  ``|v| − Σ incoming child_count`` are non-negative and sum to 1;
* histogram scopes reference live nodes and existing edges, masses are
  finite, non-negative, and total ≈ 1, and (for the mean-preserving
  ``centroid``/``exact`` engines) the mass-weighted mean of every
  forward dimension reproduces the stored edge total.

Violations come back as structured :class:`Violation` records rather
than exceptions, so callers can report all of them at once;
:func:`raise_on_violations` converts error-severity ones into a single
:class:`~repro.errors.SynopsisIntegrityError` for strict loads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SynopsisIntegrityError
from .distributions import EdgeRef
from .summary import TwigXSketch

#: relative tolerance for mass/mean consistency of mean-preserving engines
MASS_TOLERANCE = 1e-6

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    """One failed invariant.

    Attributes:
        code: stable machine-readable identifier (e.g. ``node-count``).
        path: where in the sketch (``nodes[3]``-style, mirroring the
            persisted JSON layout).
        message: human-readable explanation with the offending values.
        severity: :data:`ERROR` for invariants the estimators depend on,
            :data:`WARNING` for approximations that merely degrade
            accuracy.
    """

    code: str
    path: str
    message: str
    severity: str = ERROR

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[{self.severity}] {self.code} at {self.path}: {self.message}"


def _is_count(value) -> bool:
    """True for a finite, non-negative integral count (bools excluded)."""
    if isinstance(value, bool):
        return False
    if isinstance(value, int):
        return value >= 0
    return isinstance(value, float) and math.isfinite(value) and value >= 0


def validate_sketch(sketch: TwigXSketch) -> list[Violation]:
    """Every invariant violation of ``sketch``, empty when healthy."""
    violations: list[Violation] = []
    violations.extend(_check_nodes(sketch))
    edges_ok = _check_edges(sketch, violations)
    if edges_ok:
        violations.extend(_check_partition(sketch))
    violations.extend(_check_edge_histograms(sketch))
    violations.extend(_check_value_histograms(sketch))
    violations.extend(_check_extended_histograms(sketch))
    return violations


def error_violations(violations: list[Violation]) -> list[Violation]:
    """Just the error-severity entries."""
    return [v for v in violations if v.severity == ERROR]


def raise_on_violations(violations: list[Violation], source: str = "synopsis") -> None:
    """Raise :class:`SynopsisIntegrityError` when any error is present."""
    errors = error_violations(violations)
    if not errors:
        return
    head = "; ".join(
        f"{v.code} at {v.path}: {v.message}" for v in errors[:3]
    )
    more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
    raise SynopsisIntegrityError(
        f"{source} violates {len(errors)} invariant(s): {head}{more}",
        path=errors[0].path,
    )


# ----------------------------------------------------------------------
# individual invariant groups
# ----------------------------------------------------------------------
def _check_nodes(sketch: TwigXSketch) -> list[Violation]:
    violations: list[Violation] = []
    if not sketch.graph.nodes:
        violations.append(
            Violation("empty-graph", "nodes", "synopsis has no nodes")
        )
    for node_id, node in sketch.graph.nodes.items():
        where = f"nodes[{node_id}]"
        if not _is_count(node.count):
            violations.append(
                Violation(
                    "node-count",
                    f"{where}.count",
                    f"extent count must be a finite non-negative "
                    f"integer, got {node.count!r}",
                )
            )
        if not isinstance(node.tag, str) or not node.tag:
            violations.append(
                Violation(
                    "node-tag", f"{where}.tag",
                    f"tag must be a non-empty string, got {node.tag!r}",
                )
            )
    return violations


def _check_edges(sketch: TwigXSketch, violations: list[Violation]) -> bool:
    """Edge invariants; returns True when endpoint/count checks all hold
    (the partition check is meaningless otherwise)."""
    graph = sketch.graph
    sound = True
    for index, ((source, target), edge) in enumerate(graph.edges.items()):
        where = f"edges[{index}]"
        if source not in graph.nodes or target not in graph.nodes:
            violations.append(
                Violation(
                    "edge-endpoint", where,
                    f"edge {source}->{target} references a missing node",
                )
            )
            sound = False
            continue
        if not _is_count(edge.child_count) or not _is_count(edge.parent_count):
            violations.append(
                Violation(
                    "edge-count", where,
                    f"edge {source}->{target} counts must be finite "
                    f"non-negative ({edge.child_count!r}, "
                    f"{edge.parent_count!r})",
                )
            )
            sound = False
            continue
        if edge.child_count < 1 or edge.parent_count < 1:
            violations.append(
                Violation(
                    "edge-witness", where,
                    f"edge {source}->{target} exists without a witness "
                    f"document edge (child_count={edge.child_count}, "
                    f"parent_count={edge.parent_count})",
                )
            )
            sound = False
        if edge.parent_count > edge.child_count:
            violations.append(
                Violation(
                    "edge-count-order", where,
                    f"parent_count {edge.parent_count} exceeds "
                    f"child_count {edge.child_count}",
                )
            )
            sound = False
        source_count = graph.nodes[source].count
        target_count = graph.nodes[target].count
        if _is_count(target_count) and edge.child_count > target_count:
            violations.append(
                Violation(
                    "edge-count-range", where,
                    f"child_count {edge.child_count} exceeds target "
                    f"extent |{target}| = {target_count}",
                )
            )
            sound = False
        if _is_count(source_count) and edge.parent_count > source_count:
            violations.append(
                Violation(
                    "edge-count-range", where,
                    f"parent_count {edge.parent_count} exceeds source "
                    f"extent |{source}| = {source_count}",
                )
            )
            sound = False
        # The stability flags are derived from the cached sizes, so a
        # stale size silently flips B-/F-stability for the estimators.
        if edge.source_size != source_count or edge.target_size != target_count:
            violations.append(
                Violation(
                    "edge-size-stale", where,
                    f"cached sizes ({edge.source_size}, {edge.target_size}) "
                    f"disagree with node counts ({source_count}, "
                    f"{target_count}); stability flags are unreliable",
                )
            )
            sound = False
    return sound


def _check_partition(sketch: TwigXSketch) -> list[Violation]:
    """Incoming child counts partition each extent (tree data): one node
    hosts the document root (deficit 1), every other deficit is 0."""
    graph = sketch.graph
    violations: list[Violation] = []
    incoming: dict[int, float] = {node_id: 0 for node_id in graph.nodes}
    for (source, target), edge in graph.edges.items():
        incoming[target] += edge.child_count
    total_deficit = 0.0
    for node_id, node in graph.nodes.items():
        if not _is_count(node.count):
            return violations  # already reported by _check_nodes
        deficit = node.count - incoming[node_id]
        if deficit < 0:
            violations.append(
                Violation(
                    "tree-partition", f"nodes[{node_id}]",
                    f"incoming child counts sum to {incoming[node_id]}, "
                    f"exceeding the extent size {node.count}",
                )
            )
            return violations
        total_deficit += deficit
    if total_deficit != 1:
        violations.append(
            Violation(
                "tree-partition", "edges",
                f"extent sizes exceed incoming child counts by "
                f"{total_deficit:g} elements; a tree document has "
                f"exactly one root (expected deficit 1)",
            )
        )
    return violations


def _check_points(
    points, dimensions: int, where: str, violations: list[Violation]
) -> bool:
    """Shared mass/arity checks; returns True when the points are sane."""
    total_mass = 0.0
    for position, (vector, mass) in enumerate(points):
        if len(vector) != dimensions:
            violations.append(
                Violation(
                    "histogram-arity", f"{where}.points[{position}]",
                    f"count vector has {len(vector)} dimensions, "
                    f"scope has {dimensions}",
                )
            )
            return False
        if not isinstance(mass, (int, float)) or not math.isfinite(mass) or mass < 0:
            violations.append(
                Violation(
                    "histogram-mass", f"{where}.points[{position}]",
                    f"bucket mass must be finite and non-negative, "
                    f"got {mass!r}",
                )
            )
            return False
        if any(
            not isinstance(c, (int, float)) or not math.isfinite(c) or c < 0
            for c in vector
        ):
            violations.append(
                Violation(
                    "histogram-count", f"{where}.points[{position}]",
                    f"count vector {vector!r} has a negative or "
                    f"non-finite coordinate",
                )
            )
            return False
        total_mass += mass
    if total_mass > 1 + MASS_TOLERANCE:
        violations.append(
            Violation(
                "histogram-mass", where,
                f"bucket masses sum to {total_mass:g} > 1",
            )
        )
        return False
    return True


def _check_edge_histograms(sketch: TwigXSketch) -> list[Violation]:
    violations: list[Violation] = []
    graph = sketch.graph
    mean_preserving = sketch.config.engine in ("centroid", "exact")
    for node_id, histograms in sketch.edge_stats.items():
        if node_id not in graph.nodes:
            violations.append(
                Violation(
                    "histogram-node", f"edge_histograms[{node_id}]",
                    f"edge histograms stored for missing node #{node_id}",
                )
            )
            continue
        for position, histogram in enumerate(histograms):
            where = f"edge_histograms[{node_id}][{position}]"
            scope_ok = True
            for ref in histogram.scope:
                if graph.edge(ref.source, ref.target) is None:
                    violations.append(
                        Violation(
                            "histogram-scope", f"{where}.scope",
                            f"scope references missing edge "
                            f"{ref.source}->{ref.target}",
                        )
                    )
                    scope_ok = False
            if not scope_ok:
                continue
            points = histogram.points()
            if not _check_points(
                points, histogram.dimensions, where, violations
            ):
                continue
            if not mean_preserving:
                continue
            # Mean-preserving engines: the mass-weighted mean of a
            # forward dimension times the extent size is the edge total.
            node_count = graph.nodes[node_id].count
            if not _is_count(node_count) or node_count == 0:
                continue
            for dim, ref in enumerate(histogram.scope):
                if not ref.is_forward_at(node_id):
                    continue
                edge = graph.edge(ref.source, ref.target)
                mean = sum(mass * vector[dim] for vector, mass in points)
                if not math.isclose(
                    mean * node_count,
                    edge.child_count,
                    rel_tol=MASS_TOLERANCE,
                    abs_tol=MASS_TOLERANCE,
                ):
                    violations.append(
                        Violation(
                            "histogram-edge-total", f"{where}.points",
                            f"dimension {dim} ({ref.source}->{ref.target}) "
                            f"has mass-weighted total "
                            f"{mean * node_count:g}, edge stores "
                            f"{edge.child_count}",
                        )
                    )
    return violations


def _check_value_histograms(sketch: TwigXSketch) -> list[Violation]:
    violations: list[Violation] = []
    for node_id, summary in sketch.value_stats.items():
        where = f"value_histograms[{node_id}]"
        if node_id not in sketch.graph.nodes:
            violations.append(
                Violation(
                    "histogram-node", where,
                    f"value histogram stored for missing node #{node_id}",
                )
            )
            continue
        total = getattr(summary.histogram, "total", None)
        if total is not None and not _is_count(total):
            violations.append(
                Violation(
                    "value-total", f"{where}.total",
                    f"value histogram total must be a finite "
                    f"non-negative count, got {total!r}",
                )
            )
        if not _is_count(summary.budget) or summary.budget == 0:
            violations.append(
                Violation(
                    "histogram-budget", f"{where}.budget",
                    f"bucket budget must be positive, got {summary.budget!r}",
                )
            )
    return violations


def _check_extended_histograms(sketch: TwigXSketch) -> list[Violation]:
    violations: list[Violation] = []
    graph = sketch.graph
    for node_id, summaries in sketch.extended_stats.items():
        if node_id not in graph.nodes:
            violations.append(
                Violation(
                    "histogram-node", f"extended_histograms[{node_id}]",
                    f"extended summaries stored for missing node #{node_id}",
                )
            )
            continue
        for position, summary in enumerate(summaries):
            where = f"extended_histograms[{node_id}][{position}]"
            for ref in summary.scope:
                if not isinstance(ref, EdgeRef) or graph.edge(
                    ref.source, ref.target
                ) is None:
                    violations.append(
                        Violation(
                            "histogram-scope", f"{where}.scope",
                            f"scope references missing edge {ref!r}",
                        )
                    )
    return violations
