"""Persist Twig XSKETCHes: serialize to JSON, load estimation-ready.

A synopsis is built once (XBUILD over the document) and then consulted by
every optimizer invocation — usually in a different process.  This module
serializes exactly the *stored* synopsis (nodes, labelled edges, histogram
buckets — the content the DESIGN.md size model charges for) and loads it
back without any document access:

* :func:`save_sketch` / :func:`sketch_to_dict` — TwigXSketch → JSON;
* :func:`load_sketch` / :func:`sketch_from_dict` — JSON → a
  :class:`TwigXSketch` whose graph is a :class:`FrozenGraph` (topology,
  counts, and stabilities only, no extents).

A loaded sketch supports everything estimation needs —
:class:`~repro.estimation.estimator.TwigEstimator`,
:class:`~repro.estimation.path_estimator.PathEstimator` — but not
construction (refinements need extents; they raise on a frozen graph).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..errors import SynopsisError
from ..histogram.joint import ValueCountHistogram
from ..histogram.value import NumericValueHistogram, StringValueHistogram
from .distributions import EdgeRef
from .graph import SynopsisEdge
from .summary import (
    EdgeHistogram,
    ExtendedValueSummary,
    TwigXSketch,
    ValueSummary,
    XSketchConfig,
)

FORMAT_VERSION = 1


@dataclass
class FrozenNode:
    """A loaded synopsis node: identity, tag, and extent size only."""

    node_id: int
    tag: str
    count: int


class FrozenGraph:
    """The stored part of a graph synopsis (no extents, no document).

    Implements the read API the estimators use; mutation helpers
    (splitting) raise :class:`SynopsisError`.
    """

    def __init__(self, nodes: list[FrozenNode], edges: list[SynopsisEdge]):
        self.nodes: dict[int, FrozenNode] = {n.node_id: n for n in nodes}
        self.edges: dict[tuple[int, int], SynopsisEdge] = {
            (e.source, e.target): e for e in edges
        }

    # -- read API (mirrors GraphSynopsis) -------------------------------
    def node(self, node_id: int) -> FrozenNode:
        """The node with the given id."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise SynopsisError(f"no synopsis node #{node_id}") from None

    def edge(self, source: int, target: int):
        """The edge source→target, or None."""
        return self.edges.get((source, target))

    def children_of(self, node_id: int) -> list[SynopsisEdge]:
        """Outgoing edges of a node."""
        return [e for key, e in self.edges.items() if key[0] == node_id]

    def parents_of(self, node_id: int) -> list[SynopsisEdge]:
        """Incoming edges of a node."""
        return [e for key, e in self.edges.items() if key[1] == node_id]

    def nodes_with_tag(self, tag: str) -> list[FrozenNode]:
        """All nodes whose elements carry ``tag``."""
        return [n for n in self.nodes.values() if n.tag == tag]

    def iter_nodes(self):
        """All nodes (insertion order)."""
        return iter(self.nodes.values())

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return len(self.edges)

    # -- mutation is unavailable ----------------------------------------
    def split_node(self, node_id: int, part):
        raise SynopsisError(
            "a loaded synopsis has no extents; refinement requires the "
            "original document"
        )

    def copy(self) -> "FrozenGraph":
        """Frozen graphs are immutable; copy returns self."""
        return self


class _PointsHistogram:
    """Engine wrapper for loaded edge histograms: just the points."""

    def __init__(self, points):
        self._points = [(tuple(v), m) for v, m in points]

    def points(self):
        return list(self._points)

    def bucket_count(self) -> int:
        return len(self._points)


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def sketch_to_dict(sketch: TwigXSketch) -> dict:
    """Serialize the stored synopsis content to a JSON-compatible dict."""
    config = sketch.config
    return {
        "version": FORMAT_VERSION,
        "config": {
            "engine": config.engine,
            "store_edge_counts": config.store_edge_counts,
            "include_backward": config.include_backward,
            "max_histogram_dims": config.max_histogram_dims,
        },
        "nodes": [
            {"id": n.node_id, "tag": n.tag, "count": n.count}
            for n in sketch.graph.iter_nodes()
        ],
        "edges": [
            {
                "source": e.source,
                "target": e.target,
                "child_count": e.child_count,
                "parent_count": e.parent_count,
                "source_size": e.source_size,
                "target_size": e.target_size,
            }
            for e in sketch.graph.edges.values()
        ],
        "edge_histograms": [
            {
                "node": node_id,
                "scope": [[r.source, r.target] for r in h.scope],
                "budget": h.budget,
                "points": [[list(v), m] for v, m in h.points()],
            }
            for node_id, histograms in sketch.edge_stats.items()
            for h in histograms
        ],
        "value_histograms": [
            {
                "node": node_id,
                "budget": summary.budget,
                "state": summary.histogram.to_state(),
            }
            for node_id, summary in sketch.value_stats.items()
        ],
        "extended_histograms": [
            {
                "node": node_id,
                "value_tag": s.value_tag,
                "scope": [[r.source, r.target] for r in s.scope],
                "value_budget": s.value_budget,
                "count_budget": s.count_budget,
                "state": s.histogram.to_state(),
            }
            for node_id, summaries in sketch.extended_stats.items()
            for s in summaries
        ],
    }


def sketch_from_dict(payload: dict) -> TwigXSketch:
    """Load a synopsis serialized by :func:`sketch_to_dict`."""
    if payload.get("version") != FORMAT_VERSION:
        raise SynopsisError(
            f"unsupported synopsis format version {payload.get('version')!r}"
        )
    config_data = payload["config"]
    config = XSketchConfig(
        engine=config_data["engine"],
        store_edge_counts=config_data["store_edge_counts"],
        include_backward=config_data["include_backward"],
        max_histogram_dims=config_data["max_histogram_dims"],
    )
    graph = FrozenGraph(
        [FrozenNode(n["id"], n["tag"], n["count"]) for n in payload["nodes"]],
        [
            SynopsisEdge(
                e["source"],
                e["target"],
                e["child_count"],
                e["parent_count"],
                e["source_size"],
                e["target_size"],
            )
            for e in payload["edges"]
        ],
    )
    sketch = TwigXSketch.__new__(TwigXSketch)
    sketch.graph = graph
    sketch.config = config
    sketch.edge_stats = {}
    sketch.value_stats = {}
    sketch.extended_stats = {}
    for entry in payload["edge_histograms"]:
        histogram = EdgeHistogram(
            entry["node"],
            tuple(EdgeRef(s, t) for s, t in entry["scope"]),
            _PointsHistogram(entry["points"]),
            entry["budget"],
        )
        sketch.edge_stats.setdefault(entry["node"], []).append(histogram)
    for entry in payload["value_histograms"]:
        state = entry["state"]
        engine_cls = (
            NumericValueHistogram
            if state["kind"] == "numeric"
            else StringValueHistogram
        )
        sketch.value_stats[entry["node"]] = ValueSummary(
            entry["node"], engine_cls.from_state(state), entry["budget"]
        )
    for entry in payload["extended_histograms"]:
        summary = ExtendedValueSummary(
            entry["node"],
            entry["value_tag"],
            tuple(EdgeRef(s, t) for s, t in entry["scope"]),
            ValueCountHistogram.from_state(entry["state"]),
            entry["value_budget"],
            entry["count_budget"],
        )
        sketch.extended_stats.setdefault(entry["node"], []).append(summary)
    return sketch


def save_sketch(sketch: TwigXSketch, path) -> None:
    """Write the synopsis to a JSON file."""
    with open(str(path), "w", encoding="utf8") as handle:
        json.dump(sketch_to_dict(sketch), handle)


def load_sketch(path) -> TwigXSketch:
    """Load a synopsis from a JSON file written by :func:`save_sketch`."""
    try:
        with open(str(path), encoding="utf8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SynopsisError(f"cannot load synopsis from {path}: {exc}") from exc
    return sketch_from_dict(payload)
