"""Persist Twig XSKETCHes: serialize to JSON, load estimation-ready.

A synopsis is built once (XBUILD over the document) and then consulted by
every optimizer invocation — usually in a different process.  This module
serializes exactly the *stored* synopsis (nodes, labelled edges, histogram
buckets — the content the DESIGN.md size model charges for) and loads it
back without any document access:

* :func:`save_sketch` / :func:`sketch_to_dict` — TwigXSketch → JSON;
* :func:`load_sketch` / :func:`sketch_from_dict` — JSON → a
  :class:`TwigXSketch` whose graph is a :class:`FrozenGraph` (topology,
  counts, and stabilities only, no extents).

A loaded sketch supports everything estimation needs —
:class:`~repro.estimation.estimator.TwigEstimator`,
:class:`~repro.estimation.path_estimator.PathEstimator` — but not
construction (refinements need extents; they raise on a frozen graph).

Integrity.  Format version 2 embeds a sha256 digest of the canonical
payload (:func:`payload_digest`), verified on every load, so any byte of
silent corruption — truncation, bit flips, hand edits — surfaces as a
typed :class:`~repro.errors.SynopsisIntegrityError` naming the offending
path instead of a raw ``KeyError``/``TypeError`` or, worse, a silently
wrong estimate.  Version-1 files (pre-digest) still load, gated by the
same schema checks.  Loads run in two modes: *fast* (digest + schema —
the default) or *strict* (additionally runs every invariant in
:mod:`repro.synopsis.validate` over the reconstructed sketch).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..errors import SynopsisError, SynopsisIntegrityError
from ..histogram.joint import ValueCountHistogram
from ..histogram.value import NumericValueHistogram, StringValueHistogram
from .distributions import EdgeRef
from .graph import SynopsisEdge
from .summary import (
    EdgeHistogram,
    ExtendedValueSummary,
    TwigXSketch,
    ValueSummary,
    XSketchConfig,
)

FORMAT_VERSION = 2
#: versions :func:`sketch_from_dict` knows how to read
SUPPORTED_VERSIONS = (1, 2)

_TOP_LEVEL_KEYS = {
    "version",
    "config",
    "nodes",
    "edges",
    "edge_histograms",
    "value_histograms",
    "extended_histograms",
}
_CONFIG_KEYS = {
    "engine",
    "store_edge_counts",
    "include_backward",
    "max_histogram_dims",
}
_NODE_KEYS = {"id", "tag", "count"}
_EDGE_KEYS = {
    "source",
    "target",
    "child_count",
    "parent_count",
    "source_size",
    "target_size",
}
_EDGE_HISTOGRAM_KEYS = {"node", "scope", "budget", "points"}
_VALUE_HISTOGRAM_KEYS = {"node", "budget", "state"}
_EXTENDED_KEYS = {
    "node",
    "value_tag",
    "scope",
    "value_budget",
    "count_budget",
    "state",
}


@dataclass
class FrozenNode:
    """A loaded synopsis node: identity, tag, and extent size only."""

    node_id: int
    tag: str
    count: int


class FrozenGraph:
    """The stored part of a graph synopsis (no extents, no document).

    Implements the read API the estimators use; mutation helpers
    (splitting) raise :class:`SynopsisError`.
    """

    def __init__(self, nodes: list[FrozenNode], edges: list[SynopsisEdge]):
        self.nodes: dict[int, FrozenNode] = {n.node_id: n for n in nodes}
        self.edges: dict[tuple[int, int], SynopsisEdge] = {
            (e.source, e.target): e for e in edges
        }

    # -- read API (mirrors GraphSynopsis) -------------------------------
    def node(self, node_id: int) -> FrozenNode:
        """The node with the given id."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise SynopsisError(f"no synopsis node #{node_id}") from None

    def edge(self, source: int, target: int):
        """The edge source→target, or None."""
        return self.edges.get((source, target))

    def children_of(self, node_id: int) -> list[SynopsisEdge]:
        """Outgoing edges of a node."""
        return [e for key, e in self.edges.items() if key[0] == node_id]

    def parents_of(self, node_id: int) -> list[SynopsisEdge]:
        """Incoming edges of a node."""
        return [e for key, e in self.edges.items() if key[1] == node_id]

    def nodes_with_tag(self, tag: str) -> list[FrozenNode]:
        """All nodes whose elements carry ``tag``."""
        return [n for n in self.nodes.values() if n.tag == tag]

    def iter_nodes(self):
        """All nodes (insertion order)."""
        return iter(self.nodes.values())

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return len(self.edges)

    # -- mutation is unavailable ----------------------------------------
    def split_node(self, node_id: int, part):
        raise SynopsisError(
            "a loaded synopsis has no extents; refinement requires the "
            "original document"
        )

    def copy(self) -> "FrozenGraph":
        """Frozen graphs are immutable; copy returns self."""
        return self


class _PointsHistogram:
    """Engine wrapper for loaded edge histograms: just the points."""

    def __init__(self, points):
        self._points = [(tuple(v), m) for v, m in points]

    def points(self):
        return list(self._points)

    def bucket_count(self) -> int:
        return len(self._points)


# ----------------------------------------------------------------------
# schema guards
# ----------------------------------------------------------------------
def _fail(message: str, path: str) -> SynopsisIntegrityError:
    return SynopsisIntegrityError(message, path=path)


def _require_mapping(value, path: str) -> dict:
    if not isinstance(value, dict):
        raise _fail(f"expected an object, got {type(value).__name__}", path)
    return value


def _require_list(value, path: str) -> list:
    if not isinstance(value, list):
        raise _fail(f"expected an array, got {type(value).__name__}", path)
    return value


def _check_keys(mapping: dict, required: set, path: str) -> None:
    missing = sorted(required - mapping.keys())
    if missing:
        raise _fail(f"missing required key(s) {missing}", path)
    extra = sorted(mapping.keys() - required)
    if extra:
        raise _fail(f"unknown key(s) {extra}", path)


def _field(mapping: dict, key: str, kinds, path: str):
    """A typed field access that can only fail with an integrity error."""
    if key not in mapping:
        raise _fail(f"missing required key {key!r}", path)
    value = mapping[key]
    if kinds is int and isinstance(value, bool):
        raise _fail(f"{key!r} must be an integer, got a boolean", path)
    if kinds is not None and not isinstance(value, kinds):
        expected = getattr(kinds, "__name__", str(kinds))
        raise _fail(
            f"{key!r} must be {expected}, got {type(value).__name__}", path
        )
    return value


def _scope_refs(entry: dict, path: str) -> tuple[EdgeRef, ...]:
    refs = []
    for index, pair in enumerate(_require_list(entry["scope"], f"{path}.scope")):
        pair = _require_list(pair, f"{path}.scope[{index}]")
        if len(pair) != 2 or not all(
            isinstance(end, int) and not isinstance(end, bool) for end in pair
        ):
            raise _fail(
                f"scope entries are [source, target] integer pairs, "
                f"got {pair!r}",
                f"{path}.scope[{index}]",
            )
        refs.append(EdgeRef(pair[0], pair[1]))
    return tuple(refs)


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def payload_digest(payload: dict) -> str:
    """sha256 over the canonical JSON of the payload without its digest."""
    body = {key: value for key, value in payload.items() if key != "digest"}
    canonical = json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=True
    )
    return hashlib.sha256(canonical.encode("utf8")).hexdigest()


def sketch_to_dict(sketch: TwigXSketch) -> dict:
    """Serialize the stored synopsis content to a JSON-compatible dict.

    The result carries :data:`FORMAT_VERSION` and a sha256 ``digest`` of
    its canonical body, which :func:`sketch_from_dict` verifies.
    """
    config = sketch.config
    payload = {
        "version": FORMAT_VERSION,
        "config": {
            "engine": config.engine,
            "store_edge_counts": config.store_edge_counts,
            "include_backward": config.include_backward,
            "max_histogram_dims": config.max_histogram_dims,
        },
        "nodes": [
            {"id": n.node_id, "tag": n.tag, "count": n.count}
            for n in sketch.graph.iter_nodes()
        ],
        "edges": [
            {
                "source": e.source,
                "target": e.target,
                "child_count": e.child_count,
                "parent_count": e.parent_count,
                "source_size": e.source_size,
                "target_size": e.target_size,
            }
            for e in sketch.graph.edges.values()
        ],
        "edge_histograms": [
            {
                "node": node_id,
                "scope": [[r.source, r.target] for r in h.scope],
                "budget": h.budget,
                "points": [[list(v), m] for v, m in h.points()],
            }
            for node_id, histograms in sketch.edge_stats.items()
            for h in histograms
        ],
        "value_histograms": [
            {
                "node": node_id,
                "budget": summary.budget,
                "state": summary.histogram.to_state(),
            }
            for node_id, summary in sketch.value_stats.items()
        ],
        "extended_histograms": [
            {
                "node": node_id,
                "value_tag": s.value_tag,
                "scope": [[r.source, r.target] for r in s.scope],
                "value_budget": s.value_budget,
                "count_budget": s.count_budget,
                "state": s.histogram.to_state(),
            }
            for node_id, summaries in sketch.extended_stats.items()
            for s in summaries
        ],
    }
    payload["digest"] = payload_digest(payload)
    return payload


def _load_config(payload: dict) -> XSketchConfig:
    config_data = _require_mapping(payload["config"], "config")
    _check_keys(config_data, _CONFIG_KEYS, "config")
    try:
        return XSketchConfig(
            engine=_field(config_data, "engine", str, "config"),
            store_edge_counts=_field(
                config_data, "store_edge_counts", bool, "config"
            ),
            include_backward=_field(
                config_data, "include_backward", bool, "config"
            ),
            max_histogram_dims=_field(
                config_data, "max_histogram_dims", int, "config"
            ),
        )
    except SynopsisIntegrityError:
        raise
    except SynopsisError as exc:
        raise _fail(str(exc), "config") from exc


def _load_graph(payload: dict) -> FrozenGraph:
    nodes: list[FrozenNode] = []
    seen_ids: set[int] = set()
    for index, entry in enumerate(_require_list(payload["nodes"], "nodes")):
        path = f"nodes[{index}]"
        entry = _require_mapping(entry, path)
        _check_keys(entry, _NODE_KEYS, path)
        node_id = _field(entry, "id", int, path)
        if node_id in seen_ids:
            raise _fail(f"duplicate node id {node_id}", path)
        seen_ids.add(node_id)
        nodes.append(
            FrozenNode(
                node_id,
                _field(entry, "tag", str, path),
                _field(entry, "count", int, path),
            )
        )
    edges: list[SynopsisEdge] = []
    seen_edges: set[tuple[int, int]] = set()
    for index, entry in enumerate(_require_list(payload["edges"], "edges")):
        path = f"edges[{index}]"
        entry = _require_mapping(entry, path)
        _check_keys(entry, _EDGE_KEYS, path)
        source = _field(entry, "source", int, path)
        target = _field(entry, "target", int, path)
        if source not in seen_ids or target not in seen_ids:
            raise _fail(
                f"edge {source}->{target} references an undeclared node",
                path,
            )
        if (source, target) in seen_edges:
            raise _fail(f"duplicate edge {source}->{target}", path)
        seen_edges.add((source, target))
        edges.append(
            SynopsisEdge(
                source,
                target,
                _field(entry, "child_count", int, path),
                _field(entry, "parent_count", int, path),
                _field(entry, "source_size", int, path),
                _field(entry, "target_size", int, path),
            )
        )
    return FrozenGraph(nodes, edges)


def sketch_from_dict(payload: dict, strict: bool = False) -> TwigXSketch:
    """Load a synopsis serialized by :func:`sketch_to_dict`.

    Args:
        payload: the parsed JSON payload.
        strict: additionally run every invariant check in
            :mod:`repro.synopsis.validate` over the reconstructed sketch
            (fast mode verifies the digest and the schema only).

    Raises:
        SynopsisIntegrityError: unknown format version, digest mismatch,
            or any schema/invariant violation — with the offending path.
    """
    payload = _require_mapping(payload, "$")
    version = payload.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise _fail(
            f"unsupported synopsis format version {version!r} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})",
            "version",
        )
    required = set(_TOP_LEVEL_KEYS)
    if version >= 2:
        required.add("digest")
    _check_keys(payload, required, "$")
    if version >= 2:
        stored = _field(payload, "digest", str, "$")
        computed = payload_digest(payload)
        if stored != computed:
            raise _fail(
                f"payload digest mismatch: stored {stored[:12]}…, "
                f"computed {computed[:12]}… — the file was modified or "
                f"corrupted after it was written",
                "digest",
            )

    config = _load_config(payload)
    graph = _load_graph(payload)
    sketch = TwigXSketch.__new__(TwigXSketch)
    sketch.graph = graph
    sketch.config = config
    sketch.edge_stats = {}
    sketch.value_stats = {}
    sketch.extended_stats = {}
    entries = _require_list(payload["edge_histograms"], "edge_histograms")
    for index, entry in enumerate(entries):
        path = f"edge_histograms[{index}]"
        entry = _require_mapping(entry, path)
        _check_keys(entry, _EDGE_HISTOGRAM_KEYS, path)
        points = _require_list(entry["points"], f"{path}.points")
        for position, point in enumerate(points):
            point_path = f"{path}.points[{position}]"
            point = _require_list(point, point_path)
            if len(point) != 2 or not isinstance(point[0], list):
                raise _fail(
                    "points are [count-vector, mass] pairs", point_path
                )
            vector, mass = point
            for coordinate in vector:
                if isinstance(coordinate, bool) or not isinstance(
                    coordinate, (int, float)
                ):
                    raise _fail(
                        f"count vector holds non-numeric entry "
                        f"{coordinate!r}",
                        point_path,
                    )
            if isinstance(mass, bool) or not isinstance(mass, (int, float)):
                raise _fail(
                    f"bucket mass {mass!r} is not a number", point_path
                )
        histogram = EdgeHistogram(
            _field(entry, "node", int, path),
            _scope_refs(entry, path),
            _PointsHistogram(points),
            _field(entry, "budget", int, path),
        )
        sketch.edge_stats.setdefault(entry["node"], []).append(histogram)
    entries = _require_list(payload["value_histograms"], "value_histograms")
    for index, entry in enumerate(entries):
        path = f"value_histograms[{index}]"
        entry = _require_mapping(entry, path)
        _check_keys(entry, _VALUE_HISTOGRAM_KEYS, path)
        state = _require_mapping(entry["state"], f"{path}.state")
        kind = state.get("kind")
        if kind not in ("numeric", "string"):
            raise _fail(
                f"unknown value-histogram kind {kind!r}", f"{path}.state.kind"
            )
        engine_cls = (
            NumericValueHistogram if kind == "numeric" else StringValueHistogram
        )
        try:
            engine = engine_cls.from_state(state)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise _fail(
                f"value-histogram state is unreadable: {exc}",
                f"{path}.state",
            ) from exc
        sketch.value_stats[entry["node"]] = ValueSummary(
            _field(entry, "node", int, path),
            engine,
            _field(entry, "budget", int, path),
        )
    entries = _require_list(
        payload["extended_histograms"], "extended_histograms"
    )
    for index, entry in enumerate(entries):
        path = f"extended_histograms[{index}]"
        entry = _require_mapping(entry, path)
        _check_keys(entry, _EXTENDED_KEYS, path)
        value_tag = entry["value_tag"]
        if value_tag is not None and not isinstance(value_tag, str):
            raise _fail(
                f"'value_tag' must be a string or null, "
                f"got {type(value_tag).__name__}",
                path,
            )
        try:
            engine = ValueCountHistogram.from_state(
                _require_mapping(entry["state"], f"{path}.state")
            )
        except SynopsisIntegrityError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise _fail(
                f"extended-histogram state is unreadable: {exc}",
                f"{path}.state",
            ) from exc
        summary = ExtendedValueSummary(
            _field(entry, "node", int, path),
            value_tag,
            _scope_refs(entry, path),
            engine,
            _field(entry, "value_budget", int, path),
            _field(entry, "count_budget", int, path),
        )
        sketch.extended_stats.setdefault(entry["node"], []).append(summary)
    if strict:
        from .validate import raise_on_violations, validate_sketch

        raise_on_violations(validate_sketch(sketch), source="loaded synopsis")
    return sketch


def save_sketch(sketch: TwigXSketch, path) -> None:
    """Write the synopsis (with its payload digest) to a JSON file."""
    with open(str(path), "w", encoding="utf8") as handle:
        json.dump(sketch_to_dict(sketch), handle)


def load_sketch(path, strict: bool = False) -> TwigXSketch:
    """Load a synopsis from a JSON file written by :func:`save_sketch`.

    Args:
        path: the file to read.
        strict: validate every invariant after loading (see
            :func:`sketch_from_dict`); fast mode checks digest and schema.

    Raises:
        SynopsisError: the file is missing or unreadable.
        SynopsisIntegrityError: the file's content is corrupt — not JSON,
            unknown version, digest mismatch, or schema violation.
    """
    try:
        with open(str(path), encoding="utf8") as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
        raise SynopsisIntegrityError(
            f"cannot decode synopsis {path}: {exc}"
        ) from exc
    except OSError as exc:
        raise SynopsisError(f"cannot load synopsis from {path}: {exc}") from exc
    return sketch_from_dict(payload, strict=strict)
