"""Size accounting for Twig XSKETCH synopses.

The x-axis of every Figure 9 plot is the synopsis storage size.  This
module defines the byte-cost model (documented in DESIGN.md §5):

* 12 bytes per synopsis node — tag id, extent count, node id;
* 6 bytes per edge (endpoint ids + stability bits), plus 4 bytes when the
  configuration stores per-edge child counts;
* per edge histogram: a header of ``4 + 4·k`` bytes for the scope
  descriptor (k = dimensionality) and ``4 + 4·k`` bytes per bucket
  (mass + one centroid coordinate per dimension);
* per value histogram: an 8-byte header and 16 bytes per bucket (numeric:
  lo/hi/mass/distinct; string: hashed key/mass).

Extents and the element→node assignment are construction-time scaffolding
and are *not* part of the stored synopsis.
"""

from __future__ import annotations

NODE_BYTES = 12
EDGE_BYTES = 6
EDGE_COUNT_BYTES = 4
HISTOGRAM_HEADER_BYTES = 4
HISTOGRAM_DIM_BYTES = 4
BUCKET_BASE_BYTES = 4
BUCKET_DIM_BYTES = 4
VALUE_HISTOGRAM_HEADER_BYTES = 8
VALUE_BUCKET_BYTES = 16
EXTENDED_HEADER_BYTES = 12
EXTENDED_VALUE_BUCKET_BYTES = 12


def edge_histogram_bytes(dimensions: int, buckets: int) -> int:
    """Stored size of one edge histogram with the given shape."""
    header = HISTOGRAM_HEADER_BYTES + HISTOGRAM_DIM_BYTES * dimensions
    per_bucket = BUCKET_BASE_BYTES + BUCKET_DIM_BYTES * dimensions
    return header + per_bucket * buckets


def value_histogram_bytes(buckets: int) -> int:
    """Stored size of one value histogram with the given bucket count."""
    return VALUE_HISTOGRAM_HEADER_BYTES + VALUE_BUCKET_BYTES * buckets


def extended_histogram_bytes(
    dimensions: int, value_buckets: int, count_points: int
) -> int:
    """Stored size of one extended value histogram ``H^v(V, C1..Ck)``:
    a header with the value-ref and count-scope descriptor, a range/key
    record per value bucket, and one centroid record per stored count
    point (mass + one coordinate per count dimension)."""
    header = EXTENDED_HEADER_BYTES + HISTOGRAM_DIM_BYTES * dimensions
    per_point = BUCKET_BASE_BYTES + BUCKET_DIM_BYTES * dimensions
    return (
        header
        + EXTENDED_VALUE_BUCKET_BYTES * value_buckets
        + per_point * count_points
    )


def graph_bytes(node_count: int, edge_count: int, store_edge_counts: bool) -> int:
    """Stored size of the bare graph synopsis (nodes + labelled edges)."""
    per_edge = EDGE_BYTES + (EDGE_COUNT_BYTES if store_edge_counts else 0)
    return NODE_BYTES * node_count + per_edge * edge_count


def as_kb(size_bytes: int) -> float:
    """Bytes → kilobytes, for reporting against the paper's KB axes."""
    return size_bytes / 1024.0
