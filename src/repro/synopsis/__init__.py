"""Synopsis substrate: graph summaries, stabilities, TSN, and XSKETCHes.

Public surface:

* :class:`GraphSynopsis`, :func:`label_split_synopsis` — the generic graph
  summary (paper 3.1);
* :func:`twig_stable_neighborhood`, :func:`stable_count_edges` — TSNs;
* :class:`EdgeRef`, :func:`exact_edge_distribution` — edge distributions;
* :class:`TwigXSketch`, :class:`XSketchConfig` — the full summary model
  (Definition 3.1) with size accounting in :mod:`repro.synopsis.size`.
"""

from .distributions import EdgeRef, exact_edge_distribution, mean_child_count
from .persist import (
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    FrozenGraph,
    load_sketch,
    payload_digest,
    save_sketch,
    sketch_from_dict,
    sketch_to_dict,
)
from .validate import (
    Violation,
    error_violations,
    raise_on_violations,
    validate_sketch,
)
from .graph import GraphSynopsis, SynopsisEdge, SynopsisNode, label_split_synopsis
from .summary import (
    EdgeHistogram,
    ExtendedValueSummary,
    TwigXSketch,
    ValueSummary,
    XSketchConfig,
)
from .tsn import (
    TwigStableNeighborhood,
    bstable_ancestors,
    stable_count_edges,
    twig_stable_neighborhood,
)

__all__ = [
    "EdgeHistogram",
    "EdgeRef",
    "ExtendedValueSummary",
    "FORMAT_VERSION",
    "FrozenGraph",
    "SUPPORTED_VERSIONS",
    "Violation",
    "GraphSynopsis",
    "SynopsisEdge",
    "SynopsisNode",
    "TwigStableNeighborhood",
    "TwigXSketch",
    "ValueSummary",
    "XSketchConfig",
    "bstable_ancestors",
    "error_violations",
    "exact_edge_distribution",
    "label_split_synopsis",
    "load_sketch",
    "payload_digest",
    "raise_on_violations",
    "save_sketch",
    "sketch_from_dict",
    "sketch_to_dict",
    "mean_child_count",
    "stable_count_edges",
    "twig_stable_neighborhood",
    "validate_sketch",
]
