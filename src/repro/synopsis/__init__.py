"""Synopsis substrate: graph summaries, stabilities, TSN, and XSKETCHes.

Public surface:

* :class:`GraphSynopsis`, :func:`label_split_synopsis` — the generic graph
  summary (paper 3.1);
* :func:`twig_stable_neighborhood`, :func:`stable_count_edges` — TSNs;
* :class:`EdgeRef`, :func:`exact_edge_distribution` — edge distributions;
* :class:`TwigXSketch`, :class:`XSketchConfig` — the full summary model
  (Definition 3.1) with size accounting in :mod:`repro.synopsis.size`.
"""

from .distributions import EdgeRef, exact_edge_distribution, mean_child_count
from .persist import (
    FrozenGraph,
    load_sketch,
    save_sketch,
    sketch_from_dict,
    sketch_to_dict,
)
from .graph import GraphSynopsis, SynopsisEdge, SynopsisNode, label_split_synopsis
from .summary import (
    EdgeHistogram,
    ExtendedValueSummary,
    TwigXSketch,
    ValueSummary,
    XSketchConfig,
)
from .tsn import (
    TwigStableNeighborhood,
    bstable_ancestors,
    stable_count_edges,
    twig_stable_neighborhood,
)

__all__ = [
    "EdgeHistogram",
    "EdgeRef",
    "ExtendedValueSummary",
    "FrozenGraph",
    "GraphSynopsis",
    "SynopsisEdge",
    "SynopsisNode",
    "TwigStableNeighborhood",
    "TwigXSketch",
    "ValueSummary",
    "XSketchConfig",
    "bstable_ancestors",
    "exact_edge_distribution",
    "label_split_synopsis",
    "load_sketch",
    "save_sketch",
    "sketch_from_dict",
    "sketch_to_dict",
    "mean_child_count",
    "stable_count_edges",
    "twig_stable_neighborhood",
]
