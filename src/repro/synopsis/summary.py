"""The Twig XSKETCH summary (paper Definition 3.1).

A :class:`TwigXSketch` is a graph synopsis whose edges carry stability
labels, plus per-node *edge histograms* approximating edge distributions
and per-node *value histograms* approximating value distributions.

One generalization over the paper's "one histogram per node" phrasing:
each node holds a *list* of edge histograms with disjoint scopes.  This is
needed to express the paper's own initial synopsis ("single-dimensional
edge-histograms that cover path counts to forward-stable children only" —
one per F-stable child edge) inside Definition 3.1's model; counts held in
different histograms of the same node are combined under the Forward
Independence assumption, exactly as counts outside a single histogram's
scope would be.  The ``edge-expand`` refinement merges histograms into
higher-dimensional ones, recovering joint information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..doc.tree import DocumentTree
from ..errors import SynopsisError
from ..histogram.centroid import CentroidHistogram
from ..histogram.value import build_value_histogram
from ..histogram.wavelet import WaveletHistogram
from . import size as sizing
from .distributions import EdgeRef, exact_edge_distribution
from .graph import GraphSynopsis, label_split_synopsis

ENGINES = ("centroid", "wavelet", "exact")


@dataclass(frozen=True)
class XSketchConfig:
    """Tuning knobs of a Twig XSKETCH.

    Attributes:
        engine: histogram engine for edge distributions (:data:`ENGINES`).
        initial_edge_buckets: bucket budget of the histograms created for
            a fresh (coarsest or newly split) node.
        initial_value_buckets: bucket budget of fresh value histograms.
        store_edge_counts: store per-edge child counts (charged 4 bytes per
            edge); when False the estimator falls back to stability-based
            apportioning (ablation E8).
        include_backward: allow construction to propose backward counts
            (the paper's measured prototype does not; the full model does).
        max_histogram_dims: cap on edge-histogram dimensionality.
    """

    engine: str = "centroid"
    initial_edge_buckets: int = 2
    initial_value_buckets: int = 2
    store_edge_counts: bool = True
    include_backward: bool = False
    max_histogram_dims: int = 3
    #: bucket budgets of extended value histograms created by value-expand
    extended_value_buckets: int = 6
    extended_count_buckets: int = 8

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise SynopsisError(f"unknown histogram engine {self.engine!r}")

    @staticmethod
    def prototype() -> "XSketchConfig":
        """The paper's measured prototype: forward counts to F-stable
        children only, single-dimensional value histograms."""
        return XSketchConfig(include_backward=False)

    @staticmethod
    def full() -> "XSketchConfig":
        """The full model: backward counts allowed during construction."""
        return XSketchConfig(include_backward=True)


@dataclass
class EdgeHistogram:
    """One stored edge histogram: a scope and a compression engine."""

    node_id: int
    scope: tuple[EdgeRef, ...]
    engine: object
    budget: int

    @property
    def dimensions(self) -> int:
        """Number of count dimensions (== len(scope))."""
        return len(self.scope)

    def points(self):
        """Delegate to the engine: (count vector, mass) representatives."""
        return self.engine.points()

    def bucket_count(self) -> int:
        """Stored buckets/coefficients (≤ budget)."""
        return self.engine.bucket_count()

    def index_of(self, ref: EdgeRef) -> Optional[int]:
        """Dimension index of ``ref`` in this histogram, or None."""
        try:
            return self.scope.index(ref)
        except ValueError:
            return None

    def size_bytes(self) -> int:
        """Stored size under the DESIGN.md cost model."""
        return sizing.edge_histogram_bytes(self.dimensions, self.bucket_count())


@dataclass
class ValueSummary:
    """One stored value histogram plus its budget."""

    node_id: int
    histogram: object
    budget: int

    def size_bytes(self) -> int:
        """Stored size under the DESIGN.md cost model."""
        return sizing.value_histogram_bytes(self.histogram.bucket_count())


@dataclass
class ExtendedValueSummary:
    """One extended value histogram ``H^v(V, C1..Ck)`` (paper §3.2, end).

    Attributes:
        node_id: the synopsis node whose elements are summarized.
        value_tag: where the value dimension comes from — ``None`` for the
            element's own value, or the tag of the (first) child carrying
            the value (e.g. a movie's ``type`` child).  Referencing the
            source by tag keeps the summary meaningful across structural
            splits of the value-carrying node.
        scope: the count dimensions (forward EdgeRefs at ``node_id``).
        histogram: a :class:`~repro.histogram.joint.ValueCountHistogram`.
    """

    node_id: int
    value_tag: Optional[str]
    scope: tuple[EdgeRef, ...]
    histogram: object
    value_budget: int
    count_budget: int

    def size_bytes(self) -> int:
        """Stored size under the DESIGN.md cost model."""
        return sizing.extended_histogram_bytes(
            len(self.scope),
            self.histogram.bucket_count(),
            self.histogram.count_point_total(),
        )


class TwigXSketch:
    """Graph synopsis + stabilities + edge/value histograms.

    Create with :meth:`coarsest` and refine through the operations in
    :mod:`repro.build`; estimate twig selectivities with
    :class:`repro.estimation.estimator.TwigEstimator`.
    """

    def __init__(self, graph: GraphSynopsis, config: XSketchConfig):
        self.graph = graph
        self.config = config
        self.edge_stats: dict[int, list[EdgeHistogram]] = {}
        self.value_stats: dict[int, ValueSummary] = {}
        self.extended_stats: dict[int, list[ExtendedValueSummary]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def coarsest(
        cls, tree: DocumentTree, config: Optional[XSketchConfig] = None
    ) -> "TwigXSketch":
        """The label-split synopsis ``S_0(G)`` with the paper's initial
        statistics: one 1-D edge histogram per F-stable child edge, plus a
        small value histogram per valued node."""
        sketch = cls(label_split_synopsis(tree), config or XSketchConfig())
        for node in sketch.graph.iter_nodes():
            sketch.install_default_stats(node.node_id)
        return sketch

    def install_default_stats(
        self,
        node_id: int,
        edge_buckets: Optional[int] = None,
        value_buckets: Optional[int] = None,
    ) -> None:
        """(Re)install the fresh-node statistics for ``node_id``.

        Bucket budgets default to the configuration's initial values; a
        node created by splitting inherits its parent's budgets so earlier
        edge-refine / value-refine work survives structural refinements.
        """
        edge_buckets = edge_buckets or self.config.initial_edge_buckets
        value_buckets = value_buckets or self.config.initial_value_buckets
        histograms: list[EdgeHistogram] = []
        for edge in self.graph.children_of(node_id):
            if edge.forward_stable:
                histograms.append(
                    self.make_edge_histogram(
                        node_id,
                        (EdgeRef(node_id, edge.target),),
                        edge_buckets,
                    )
                )
        if histograms:
            self.edge_stats[node_id] = histograms
        else:
            self.edge_stats.pop(node_id, None)
        summary = self.make_value_summary(node_id, value_buckets)
        if summary is not None:
            self.value_stats[node_id] = summary
        else:
            self.value_stats.pop(node_id, None)

    def make_edge_histogram(
        self, node_id: int, scope: Sequence[EdgeRef], buckets: int
    ) -> EdgeHistogram:
        """Build a histogram over ``scope`` from the exact distribution."""
        if len(scope) > self.config.max_histogram_dims:
            raise SynopsisError(
                f"scope of {len(scope)} dims exceeds the configured cap "
                f"of {self.config.max_histogram_dims}"
            )
        exact = exact_edge_distribution(self.graph, node_id, scope)
        engine: object
        if self.config.engine == "exact":
            engine = exact
        elif self.config.engine == "wavelet":
            engine = WaveletHistogram(exact, buckets)
        else:
            engine = CentroidHistogram(exact, buckets)
        return EdgeHistogram(node_id, tuple(scope), engine, buckets)

    def make_extended_summary(
        self,
        node_id: int,
        value_tag: Optional[str],
        scope: Sequence[EdgeRef],
        value_buckets: int,
        count_buckets: int,
    ) -> ExtendedValueSummary:
        """Build an extended value histogram ``H^v(V, C1..Ck)``.

        The value observation per element is its own value
        (``value_tag=None``) or the value of its *first* child tagged
        ``value_tag`` — well-defined for the single-occurrence children
        (``type``, ``year``) these summaries target.

        Raises:
            SynopsisError: for an empty scope, a missing edge, or a scope
                exceeding the dimensionality cap.
        """
        from ..histogram.joint import ValueCountHistogram

        scope = tuple(scope)
        if not scope:
            raise SynopsisError("extended summary needs count dimensions")
        if len(scope) > self.config.max_histogram_dims:
            raise SynopsisError(
                f"scope of {len(scope)} dims exceeds the configured cap"
            )
        for ref in scope:
            if self.graph.edge(ref.source, ref.target) is None:
                raise SynopsisError(
                    f"extended summary references missing edge "
                    f"{ref.source}->{ref.target}"
                )

        observations = []
        for element in self.graph.node(node_id).extent:
            tally: dict[int, int] = {}
            value = element.value if value_tag is None else None
            for child in element.children:
                child_node = self.graph.node_of(child)
                tally[child_node] = tally.get(child_node, 0) + 1
                if value_tag is not None and value is None and child.tag == value_tag:
                    value = child.value
            counts = tuple(tally.get(ref.target, 0) for ref in scope)
            observations.append((value, counts))
        histogram = ValueCountHistogram(observations, value_buckets, count_buckets)
        return ExtendedValueSummary(
            node_id, value_tag, scope, histogram, value_buckets, count_buckets
        )

    def extended_at(self, node_id: int) -> list[ExtendedValueSummary]:
        """The extended value summaries stored for ``node_id``."""
        return self.extended_stats.get(node_id, [])

    def make_value_summary(
        self, node_id: int, buckets: int
    ) -> Optional[ValueSummary]:
        """Build a value histogram for ``node_id``; None when valueless."""
        values = [
            element.value
            for element in self.graph.node(node_id).extent
            if element.value is not None
        ]
        if not values:
            return None
        return ValueSummary(node_id, build_value_histogram(values, buckets), buckets)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def histograms_at(self, node_id: int) -> list[EdgeHistogram]:
        """The edge histograms stored for ``node_id`` (possibly empty)."""
        return self.edge_stats.get(node_id, [])

    def value_summary(self, node_id: int) -> Optional[ValueSummary]:
        """The value histogram stored for ``node_id``, if any."""
        return self.value_stats.get(node_id)

    def covered_edges(self, node_id: int) -> set[EdgeRef]:
        """Union of the scopes of the node's histograms."""
        refs: set[EdgeRef] = set()
        for histogram in self.histograms_at(node_id):
            refs.update(histogram.scope)
        return refs

    def edge_child_count(self, source: int, target: int) -> float:
        """Estimate of ``|n_source → n_target|``.

        Uses the stored per-edge count when the configuration allows it;
        otherwise falls back to stability: a B-stable edge contributes the
        whole target extent, an unstable edge apportions the target extent
        across its incoming edges proportionally to source sizes.
        """
        edge = self.graph.edge(source, target)
        if edge is None:
            return 0.0
        if self.config.store_edge_counts:
            return float(edge.child_count)
        target_size = self.graph.node(target).count
        if edge.backward_stable:
            return float(target_size)
        incoming = self.graph.parents_of(target)
        total_source = sum(self.graph.node(e.source).count for e in incoming)
        if total_source <= 0:
            return 0.0
        return target_size * self.graph.node(source).count / total_source

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Stored size of the synopsis under the DESIGN.md cost model."""
        total = sizing.graph_bytes(
            self.graph.node_count,
            self.graph.edge_count,
            self.config.store_edge_counts,
        )
        for histograms in self.edge_stats.values():
            total += sum(h.size_bytes() for h in histograms)
        for summary in self.value_stats.values():
            total += summary.size_bytes()
        for summaries in self.extended_stats.values():
            total += sum(s.size_bytes() for s in summaries)
        return total

    def size_kb(self) -> float:
        """Stored size in kilobytes (the Figure 9 x-axis)."""
        return sizing.as_kb(self.size_bytes())

    # ------------------------------------------------------------------
    # refinement support
    # ------------------------------------------------------------------
    def copy(self) -> "TwigXSketch":
        """Independent copy; histogram engines (immutable) are shared."""
        duplicate = TwigXSketch(self.graph.copy(), self.config)
        duplicate.edge_stats = {
            node_id: list(histograms)
            for node_id, histograms in self.edge_stats.items()
        }
        duplicate.value_stats = dict(self.value_stats)
        duplicate.extended_stats = {
            node_id: list(summaries)
            for node_id, summaries in self.extended_stats.items()
        }
        return duplicate

    def split_node(self, node_id: int, part: set[int]) -> tuple[int, int]:
        """Split a node and migrate statistics.

        The two new nodes get fresh default statistics; histograms at other
        nodes whose scope references an edge incident to the split node are
        rebuilt with a remapped scope (same budget).

        Returns the two new node ids.
        """
        stale_refs_by_node = self._scopes_mentioning(node_id)
        old_histograms = self.edge_stats.get(node_id, [])
        inherited_edge_buckets = max(
            (h.budget for h in old_histograms),
            default=self.config.initial_edge_buckets,
        )
        old_value = self.value_stats.get(node_id)
        inherited_value_buckets = (
            old_value.budget if old_value is not None
            else self.config.initial_value_buckets
        )
        own_extended = self.extended_stats.get(node_id, [])
        first, second = self.graph.split_node(node_id, part)
        self.edge_stats.pop(node_id, None)
        self.value_stats.pop(node_id, None)
        self.extended_stats.pop(node_id, None)
        # Extended summaries at other nodes referencing the split node are
        # dropped (construction re-proposes them when still valuable).
        for other_id in list(self.extended_stats):
            kept = [
                summary
                for summary in self.extended_stats[other_id]
                if not any(
                    ref.source == node_id or ref.target == node_id
                    for ref in summary.scope
                )
            ]
            if kept:
                self.extended_stats[other_id] = kept
            else:
                del self.extended_stats[other_id]
        self.install_default_stats(
            first, inherited_edge_buckets, inherited_value_buckets
        )
        self.install_default_stats(
            second, inherited_edge_buckets, inherited_value_buckets
        )
        # The split node's own extended summaries are rebuilt per part
        # (remapping the count scope to the edges each part retains), so
        # value-expand work survives structural refinement.
        for part_id in (first, second):
            rebuilt: list[ExtendedValueSummary] = []
            for summary in own_extended:
                scope = tuple(
                    EdgeRef(part_id, ref.target)
                    for ref in summary.scope
                    if self.graph.edge(part_id, ref.target) is not None
                )
                if not scope:
                    continue
                rebuilt.append(
                    self.make_extended_summary(
                        part_id,
                        summary.value_tag,
                        scope,
                        summary.value_budget,
                        summary.count_budget,
                    )
                )
            if rebuilt:
                self.extended_stats[part_id] = rebuilt
        for other_id, histograms in stale_refs_by_node.items():
            if other_id == node_id or other_id not in self.edge_stats:
                continue
            rebuilt: list[EdgeHistogram] = []
            for histogram in self.edge_stats[other_id]:
                if histogram in histograms:
                    remapped = self._remap_scope(
                        other_id, histogram.scope, node_id, (first, second)
                    )
                    if remapped:
                        rebuilt.append(
                            self.make_edge_histogram(
                                other_id, remapped, histogram.budget
                            )
                        )
                else:
                    rebuilt.append(histogram)
            if rebuilt:
                self.edge_stats[other_id] = rebuilt
            else:
                self.edge_stats.pop(other_id, None)
        return first, second

    def _scopes_mentioning(self, node_id: int) -> dict[int, list[EdgeHistogram]]:
        stale: dict[int, list[EdgeHistogram]] = {}
        for other_id, histograms in self.edge_stats.items():
            touched = [
                h
                for h in histograms
                if any(r.source == node_id or r.target == node_id for r in h.scope)
            ]
            if touched:
                stale[other_id] = touched
        return stale

    def _remap_scope(
        self,
        node_id: int,
        scope: tuple[EdgeRef, ...],
        old_id: int,
        new_ids: tuple[int, int],
    ) -> tuple[EdgeRef, ...]:
        """Replace refs to a split node with refs to its surviving pieces.

        A ref whose *target* was split maps to the piece(s) that still form
        an edge with the source, preferring the piece with the larger child
        count when the dimensionality cap forbids keeping both.  A ref
        whose *source* (anchor) was split is dropped — the anchor identity
        is ambiguous after the split and the construction algorithm will
        re-propose it if still valuable.
        """
        remapped: list[EdgeRef] = []
        for ref in scope:
            if ref.source == old_id:
                continue
            if ref.target != old_id:
                if self.graph.edge(ref.source, ref.target) is not None:
                    remapped.append(ref)
                continue
            candidates = [
                EdgeRef(ref.source, new_id)
                for new_id in new_ids
                if self.graph.edge(ref.source, new_id) is not None
            ]
            candidates.sort(
                key=lambda r: self.graph.edge(r.source, r.target).child_count,
                reverse=True,
            )
            room = self.config.max_histogram_dims - len(remapped) - (
                len(scope) - scope.index(ref) - 1
            )
            remapped.extend(candidates[: max(1, room)])
        deduped = tuple(dict.fromkeys(remapped))
        return deduped[: self.config.max_histogram_dims]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural invariants: graph is valid, stats reference live
        nodes and existing edges."""
        self.graph.validate()
        for node_id, histograms in self.edge_stats.items():
            if node_id not in self.graph.nodes:
                raise SynopsisError(f"stats for dead node #{node_id}")
            for histogram in histograms:
                for ref in histogram.scope:
                    if self.graph.edge(ref.source, ref.target) is None:
                        raise SynopsisError(
                            f"histogram at #{node_id} references missing edge "
                            f"{ref.source}->{ref.target}"
                        )
        for node_id in self.value_stats:
            if node_id not in self.graph.nodes:
                raise SynopsisError(f"value stats for dead node #{node_id}")
        for node_id, summaries in self.extended_stats.items():
            if node_id not in self.graph.nodes:
                raise SynopsisError(f"extended stats for dead node #{node_id}")
            for summary in summaries:
                for ref in summary.scope:
                    if self.graph.edge(ref.source, ref.target) is None:
                        raise SynopsisError(
                            f"extended summary at #{node_id} references "
                            f"missing edge {ref.source}->{ref.target}"
                        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TwigXSketch nodes={self.graph.node_count} "
            f"edges={self.graph.edge_count} size={self.size_kb():.1f}KB>"
        )
