"""Twig Stable Neighborhoods (paper Section 3.2).

``TSN(n)`` is the set of synopsis nodes that either (a) reach ``n`` through
a Backward-stable path (including ``n`` itself), or (b) are reached from a
node of (a) through a Forward-stable path of length 1.  Every element of
``n`` is guaranteed to be part of a document twig covering all TSN nodes,
which is what makes edge counts over TSN edges well-defined for *all*
elements of ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import GraphSynopsis


def bstable_ancestors(synopsis: GraphSynopsis, node_id: int) -> set[int]:
    """Nodes reaching ``node_id`` via a (possibly empty) B-stable path.

    Includes ``node_id`` itself.  Handles cyclic synopsis graphs (recursive
    tags) via a visited set.
    """
    reached = {node_id}
    frontier = [node_id]
    while frontier:
        current = frontier.pop()
        for edge in synopsis.parents_of(current):
            if edge.backward_stable and edge.source not in reached:
                reached.add(edge.source)
                frontier.append(edge.source)
    return reached


@dataclass(frozen=True)
class TwigStableNeighborhood:
    """The TSN of one synopsis node.

    Attributes:
        node_id: the node whose neighborhood this is.
        anchors: the (a) set — B-stable-path ancestors, including the node.
        members: anchors plus their F-stable children (the full TSN).
    """

    node_id: int
    anchors: frozenset[int]
    members: frozenset[int]


def twig_stable_neighborhood(
    synopsis: GraphSynopsis, node_id: int
) -> TwigStableNeighborhood:
    """Compute ``TSN(node_id)`` over the synopsis."""
    anchors = bstable_ancestors(synopsis, node_id)
    members = set(anchors)
    for anchor in anchors:
        for edge in synopsis.children_of(anchor):
            if edge.forward_stable:
                members.add(edge.target)
    return TwigStableNeighborhood(
        node_id, frozenset(anchors), frozenset(members)
    )


def stable_count_edges(
    synopsis: GraphSynopsis, node_id: int
) -> list[tuple[int, int]]:
    """All (source, target) edges usable as count dimensions at ``node_id``.

    These are the edges contained entirely within TSN(node_id) that start
    at an anchor and are Forward-stable — a forward count when the source
    is ``node_id`` itself, a backward count otherwise.  F-stability of the
    edge guarantees a positive count for every element, and B-stability of
    the anchor path guarantees the referenced ancestor exists.
    """
    tsn = twig_stable_neighborhood(synopsis, node_id)
    usable: list[tuple[int, int]] = []
    for anchor in sorted(tsn.anchors):
        for edge in synopsis.children_of(anchor):
            if edge.forward_stable and edge.target in tsn.members:
                usable.append((edge.source, edge.target))
    return usable
