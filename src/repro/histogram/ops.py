"""Point-list operations shared by all histogram engines.

Every histogram engine in this package exposes its content as a list of
*points* ``(vector, mass)`` — a representative count vector (floats) plus
the probability mass it carries.  The estimation framework only consumes
points, so engines (exact sparse, centroid, wavelet) are interchangeable.
This module holds the pure functions over point lists: marginalization,
conditioning, expected products, and normalization.
"""

from __future__ import annotations

from typing import Sequence

Point = tuple[tuple[float, ...], float]

#: Two count values within this distance are treated as "the same count"
#: when conditioning a bucketized distribution on a backward count.
CONDITION_EPS = 0.5


def total_mass(points: Sequence[Point]) -> float:
    """Sum of the masses of all points."""
    return sum(mass for _, mass in points)


def normalize(points: Sequence[Point]) -> list[Point]:
    """Scale masses so they sum to 1; empty input stays empty."""
    total = total_mass(points)
    if total <= 0:
        return []
    return [(vector, mass / total) for vector, mass in points]


def marginalize(points: Sequence[Point], keep: Sequence[int]) -> list[Point]:
    """Project points onto the dimensions in ``keep`` (by index), merging
    points that collapse onto the same projected vector."""
    merged: dict[tuple[float, ...], float] = {}
    for vector, mass in points:
        projected = tuple(vector[i] for i in keep)
        merged[projected] = merged.get(projected, 0.0) + mass
    return sorted(merged.items())


def condition(
    points: Sequence[Point], assignment: dict[int, float]
) -> list[Point]:
    """Restrict points to those matching ``assignment`` on the given
    dimension indexes, drop those dimensions, and renormalize.

    This realizes the paper's Correlation Scope Independence computation
    ``H(E ∪ D) / H(D)``.  Matching is exact up to :data:`CONDITION_EPS`;
    when no point matches (the conditioning value fell between bucket
    centroids), the nearest points by L1 distance on the condition
    dimensions are used instead, so conditioning never silently returns an
    empty distribution for a non-empty histogram.
    """
    if not assignment:
        return list(points)
    keep = [i for i in range(_width(points)) if i not in assignment]

    matching: list[Point] = []
    for vector, mass in points:
        if all(abs(vector[dim] - value) <= CONDITION_EPS
               for dim, value in assignment.items()):
            matching.append((tuple(vector[i] for i in keep), mass))
    if not matching and points:
        best = min(
            points,
            key=lambda point: sum(
                abs(point[0][dim] - value) for dim, value in assignment.items()
            ),
        )
        distance = sum(
            abs(best[0][dim] - value) for dim, value in assignment.items()
        )
        matching = [
            (tuple(vector[i] for i in keep), mass)
            for vector, mass in points
            if sum(abs(vector[dim] - value) for dim, value in assignment.items())
            <= distance + CONDITION_EPS
        ]
    return normalize(matching)


def expected_product(points: Sequence[Point], dims: Sequence[int]) -> float:
    """The paper's ``Σ F(...) = Σ f(c) · Π c_i`` over the given dimensions.

    With ``dims`` empty this is simply the total mass.
    """
    total = 0.0
    for vector, mass in points:
        product = mass
        for dim in dims:
            product *= vector[dim]
        total += product
    return total


def mass_where_positive(points: Sequence[Point], dim: int) -> float:
    """Mass of points whose count on ``dim`` is (essentially) positive.

    Used for branch-predicate probabilities: the fraction of elements with
    at least one child along the branch edge.
    """
    return sum(mass for vector, mass in points if vector[dim] > CONDITION_EPS)


def mean(points: Sequence[Point], dim: int) -> float:
    """Mass-weighted mean of dimension ``dim`` (assumes unit total mass)."""
    total = total_mass(points)
    if total <= 0:
        return 0.0
    return sum(vector[dim] * mass for vector, mass in points) / total


def _width(points: Sequence[Point]) -> int:
    return len(points[0][0]) if points else 0
