"""Per-node value histograms ``H(v)`` for value predicates.

The paper's measured prototype stores single-dimensional histograms on the
values under each synopsis node ("value-histograms are single-dimensional
and only cover the distribution of values under a specific synopsis node").
This module implements that summary:

* numeric values — an equi-depth histogram (buckets with equal mass);
  range/inequality selectivities use the continuous-uniform assumption
  inside buckets and the distinct-count for equality;
* string values — the top-k most frequent values exactly, plus a uniform
  "other" pool over the remaining distinct values.

The size charged per bucket / per exact string is defined in
:mod:`repro.synopsis.size`.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from ..errors import SynopsisError
from ..query.values import ValuePredicate


class NumericValueHistogram:
    """Equi-depth histogram over numeric values.

    Args:
        values: the observed values (one per element carrying a value).
        buckets: maximum number of buckets.
    """

    kind = "numeric"

    def __init__(self, values: Sequence[float], buckets: int):
        if not values:
            raise SynopsisError("cannot build a value histogram without values")
        if buckets < 1:
            raise SynopsisError("bucket budget must be at least 1")
        ordered = sorted(float(v) for v in values)
        self.total = len(ordered)
        bucket_count = min(buckets, self.total)
        # Equi-depth boundaries: split the sorted values into equal slices.
        self.buckets: list[tuple[float, float, int, int]] = []
        for index in range(bucket_count):
            low_pos = index * self.total // bucket_count
            high_pos = (index + 1) * self.total // bucket_count
            if high_pos <= low_pos:
                continue
            slice_values = ordered[low_pos:high_pos]
            self.buckets.append(
                (
                    slice_values[0],
                    slice_values[-1],
                    len(slice_values),
                    len(set(slice_values)),
                )
            )

    # ------------------------------------------------------------------
    def bucket_count(self) -> int:
        """Number of stored buckets."""
        return len(self.buckets)

    def to_state(self) -> dict:
        """JSON-serializable state (see :mod:`repro.synopsis.persist`)."""
        return {"kind": self.kind, "total": self.total, "buckets": self.buckets}

    @classmethod
    def from_state(cls, state: dict) -> "NumericValueHistogram":
        """Rebuild from :meth:`to_state` output."""
        histogram = cls.__new__(cls)
        histogram.total = state["total"]
        histogram.buckets = [tuple(bucket) for bucket in state["buckets"]]
        return histogram

    def selectivity(self, predicate: ValuePredicate) -> float:
        """Fraction of elements whose value satisfies ``predicate``."""
        if isinstance(predicate.value, str):
            return 0.0  # type mismatch: string predicate on numeric values
        if predicate.op == "=":
            return self._mass_in(predicate.value, predicate.value, point=True)
        if predicate.op == "!=":
            return 1.0 - self._mass_in(predicate.value, predicate.value, point=True)
        if predicate.op == "<":
            return self._mass_in(-math.inf, predicate.value, open_high=True)
        if predicate.op == "<=":
            return self._mass_in(-math.inf, predicate.value)
        if predicate.op == ">":
            return self._mass_in(predicate.value, math.inf, open_low=True)
        if predicate.op == ">=":
            return self._mass_in(predicate.value, math.inf)
        return self._mass_in(predicate.value, predicate.high)

    def _mass_in(
        self,
        low: float,
        high: float,
        point: bool = False,
        open_low: bool = False,
        open_high: bool = False,
    ) -> float:
        matched = 0.0
        for bucket_low, bucket_high, count, distinct in self.buckets:
            if point:
                if bucket_low <= low <= bucket_high:
                    matched += count / max(1, distinct)
                continue
            overlap_low = max(low, bucket_low)
            overlap_high = min(high, bucket_high)
            if overlap_low > overlap_high:
                continue
            width = bucket_high - bucket_low
            if width <= 0:
                inside = bucket_low > low or (not open_low and bucket_low == low)
                inside = inside and (
                    bucket_high < high or (not open_high and bucket_high == high)
                )
                matched += count if inside else 0.0
            else:
                fraction = (overlap_high - overlap_low) / width
                matched += count * fraction
        return min(1.0, matched / self.total)


class StringValueHistogram:
    """Top-k exact frequencies plus a uniform remainder pool for strings."""

    kind = "string"

    def __init__(self, values: Sequence[str], buckets: int):
        if not values:
            raise SynopsisError("cannot build a value histogram without values")
        if buckets < 1:
            raise SynopsisError("bucket budget must be at least 1")
        counts = Counter(str(v) for v in values)
        self.total = sum(counts.values())
        most_common = counts.most_common(buckets)
        self.top: dict[str, int] = dict(most_common)
        self.other_count = self.total - sum(self.top.values())
        self.other_distinct = len(counts) - len(self.top)

    # ------------------------------------------------------------------
    def bucket_count(self) -> int:
        """Stored entries (each exact string counts as one bucket)."""
        return max(1, len(self.top))

    def to_state(self) -> dict:
        """JSON-serializable state (see :mod:`repro.synopsis.persist`)."""
        return {
            "kind": self.kind,
            "total": self.total,
            "top": self.top,
            "other_count": self.other_count,
            "other_distinct": self.other_distinct,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StringValueHistogram":
        """Rebuild from :meth:`to_state` output."""
        histogram = cls.__new__(cls)
        histogram.total = state["total"]
        histogram.top = dict(state["top"])
        histogram.other_count = state["other_count"]
        histogram.other_distinct = state["other_distinct"]
        return histogram

    def selectivity(self, predicate: ValuePredicate) -> float:
        """Fraction of elements whose value satisfies ``predicate``.

        Equality/inequality are first-class; ordered operators on strings
        fall back to an exact-boundary count over the stored top values
        plus half of the remainder pool (documented approximation — the
        paper's workloads never order strings).
        """
        if not isinstance(predicate.value, str):
            return 0.0
        if predicate.op == "=":
            if predicate.value in self.top:
                return self.top[predicate.value] / self.total
            if self.other_distinct <= 0:
                return 0.0
            return self.other_count / self.other_distinct / self.total
        if predicate.op == "!=":
            equal = self.selectivity(ValuePredicate("=", predicate.value))
            return max(0.0, 1.0 - equal)
        matched = 0.0
        for value, count in self.top.items():
            if predicate.matches(value):
                matched += count
        matched += self.other_count * 0.5
        return min(1.0, matched / self.total)


def build_value_histogram(values: Sequence, buckets: int):
    """Build the right engine for the value population.

    Numeric when every value is int/float; string histogram otherwise
    (mixed populations are summarized as strings).
    """
    if not values:
        raise SynopsisError("cannot build a value histogram without values")
    if all(isinstance(v, (int, float)) for v in values):
        return NumericValueHistogram(values, buckets)
    return StringValueHistogram([str(v) for v in values], buckets)
