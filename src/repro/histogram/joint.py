"""Joint value-count histograms: the paper's extended ``H^v(V, C1..Ck)``.

Section 3.2 (end): "we introduce extended multi-dimensional value
histograms H^v(V1,...,Vl, C1,...,Ck), which approximate the joint
distribution of elements in n_i with respect to values and edge counts".
This engine implements the one-value-dimension form the estimation
framework consumes: a partition of the value domain (equi-depth ranges
for numeric values, top-k plus remainder pool for strings) with, per
value bucket, a compressed distribution of the count vector.

Elements whose value is missing are tracked as a separate bucket so that
total mass stays 1; value predicates never match them.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

from ..errors import SynopsisError
from ..query.values import ValuePredicate
from . import ops
from .centroid import CentroidHistogram
from .ops import Point
from .sparse import SparseDistribution


class _Bucket:
    """One value bucket: a value range/key, its mass, and count points."""

    __slots__ = ("low", "high", "key", "mass", "distinct", "points")

    def __init__(self, low, high, key, mass, distinct, points):
        self.low = low
        self.high = high
        self.key = key  # exact string key, or None for range/pool buckets
        self.mass = mass
        self.distinct = distinct
        self.points = points  # list[Point] over the count dimensions

    def overlap(self, predicate: ValuePredicate) -> float:
        """Fraction of this bucket's mass matching ``predicate``."""
        if self.key is not None:
            return 1.0 if predicate.matches(self.key) else 0.0
        if self.low is None:  # remainder pool of a string histogram
            if predicate.op == "=":
                return 1.0 / self.distinct if self.distinct else 0.0
            if predicate.op == "!=":
                return 1.0 - (1.0 / self.distinct if self.distinct else 0.0)
            return 0.5  # ordered predicate on the unknown pool
        # numeric range bucket, continuous-uniform inside
        low, high = float(self.low), float(self.high)
        if predicate.op == "=":
            if low <= predicate.value <= high:
                return 1.0 / max(1, self.distinct)
            return 0.0
        if predicate.op == "!=":
            inside = 1.0 / max(1, self.distinct) if low <= predicate.value <= high else 0.0
            return 1.0 - inside
        if predicate.op == "range":
            qlow, qhigh = float(predicate.value), float(predicate.high)
        elif predicate.op in ("<", "<="):
            qlow, qhigh = float("-inf"), float(predicate.value)
        else:  # > or >=
            qlow, qhigh = float(predicate.value), float("inf")
        overlap_low = max(low, qlow)
        overlap_high = min(high, qhigh)
        if overlap_low > overlap_high:
            return 0.0
        if high == low:
            return 1.0
        return (overlap_high - overlap_low) / (high - low)


class ValueCountHistogram:
    """Joint distribution of one value dimension and k count dimensions.

    Args:
        observations: one ``(value, count_vector)`` pair per element; the
            value may be None (element without a value).
        value_buckets: number of value buckets.
        count_buckets: centroid-bucket budget per value bucket.
    """

    def __init__(
        self,
        observations: Sequence[tuple[object, tuple[int, ...]]],
        value_buckets: int,
        count_buckets: int,
    ):
        if not observations:
            raise SynopsisError("joint histogram needs observations")
        if value_buckets < 1 or count_buckets < 1:
            raise SynopsisError("bucket budgets must be at least 1")
        widths = {len(counts) for _, counts in observations}
        if len(widths) != 1:
            raise SynopsisError("inconsistent count-vector widths")
        self.dimensions = widths.pop()
        self.count_buckets = count_buckets
        total = len(observations)

        present = [(v, c) for v, c in observations if v is not None]
        missing = [c for v, c in observations if v is None]
        self.missing_mass = len(missing) / total
        self._missing_points: list[Point] = (
            self._compress(missing) if missing else []
        )

        self.buckets: list[_Bucket] = []
        if present:
            if all(isinstance(v, (int, float)) for v, _ in present):
                self._build_numeric(present, value_buckets, total)
            else:
                self._build_string(
                    [(str(v), c) for v, c in present], value_buckets, total
                )

    # ------------------------------------------------------------------
    def _compress(self, count_vectors) -> list[Point]:
        source = SparseDistribution.from_observations(count_vectors)
        return CentroidHistogram(source, self.count_buckets).points()

    def _build_numeric(self, present, value_buckets, total) -> None:
        ordered = sorted(present, key=lambda pair: pair[0])
        bucket_count = min(value_buckets, len(ordered))
        for index in range(bucket_count):
            low_pos = index * len(ordered) // bucket_count
            high_pos = (index + 1) * len(ordered) // bucket_count
            if high_pos <= low_pos:
                continue
            chunk = ordered[low_pos:high_pos]
            values = [v for v, _ in chunk]
            self.buckets.append(
                _Bucket(
                    low=values[0],
                    high=values[-1],
                    key=None,
                    mass=len(chunk) / total,
                    distinct=len(set(values)),
                    points=self._compress([c for _, c in chunk]),
                )
            )

    def _build_string(self, present, value_buckets, total) -> None:
        frequency = Counter(v for v, _ in present)
        top = {v for v, _ in frequency.most_common(value_buckets)}
        grouped: dict[str, list] = {}
        pool = []
        for value, counts in present:
            if value in top:
                grouped.setdefault(value, []).append(counts)
            else:
                pool.append(counts)
        for value, count_vectors in sorted(grouped.items()):
            self.buckets.append(
                _Bucket(
                    low=None,
                    high=None,
                    key=value,
                    mass=len(count_vectors) / total,
                    distinct=1,
                    points=self._compress(count_vectors),
                )
            )
        if pool:
            self.buckets.append(
                _Bucket(
                    low=None,
                    high=None,
                    key=None,
                    mass=len(pool) / total,
                    distinct=len(frequency) - len(top),
                    points=self._compress(pool),
                )
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def match_mass(self, predicate: Optional[ValuePredicate]) -> float:
        """Fraction of elements whose value satisfies ``predicate``
        (``None`` → all elements, including missing values)."""
        if predicate is None:
            return 1.0
        return sum(b.mass * b.overlap(predicate) for b in self.buckets)

    def conditional_points(
        self, predicate: Optional[ValuePredicate]
    ) -> list[Point]:
        """Count-vector points of the elements matching ``predicate``,
        renormalized to unit mass (empty when nothing matches)."""
        weighted: list[Point] = []
        if predicate is None:
            for bucket in self.buckets:
                weighted.extend(
                    (vector, mass * bucket.mass) for vector, mass in bucket.points
                )
            weighted.extend(
                (vector, mass * self.missing_mass)
                for vector, mass in self._missing_points
            )
            return ops.normalize(weighted)
        for bucket in self.buckets:
            fraction = bucket.overlap(predicate)
            if fraction <= 0:
                continue
            weighted.extend(
                (vector, mass * bucket.mass * fraction)
                for vector, mass in bucket.points
            )
        return ops.normalize(weighted)

    def bucket_count(self) -> int:
        """Stored value buckets (including the missing bucket when used)."""
        return len(self.buckets) + (1 if self.missing_mass > 0 else 0)

    def to_state(self) -> dict:
        """JSON-serializable state (see :mod:`repro.synopsis.persist`)."""
        return {
            "dimensions": self.dimensions,
            "count_buckets": self.count_buckets,
            "missing_mass": self.missing_mass,
            "missing_points": [
                [list(vector), mass] for vector, mass in self._missing_points
            ],
            "buckets": [
                {
                    "low": bucket.low,
                    "high": bucket.high,
                    "key": bucket.key,
                    "mass": bucket.mass,
                    "distinct": bucket.distinct,
                    "points": [[list(v), m] for v, m in bucket.points],
                }
                for bucket in self.buckets
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ValueCountHistogram":
        """Rebuild from :meth:`to_state` output."""
        histogram = cls.__new__(cls)
        histogram.dimensions = state["dimensions"]
        histogram.count_buckets = state["count_buckets"]
        histogram.missing_mass = state["missing_mass"]
        histogram._missing_points = [
            (tuple(vector), mass) for vector, mass in state["missing_points"]
        ]
        histogram.buckets = [
            _Bucket(
                entry["low"],
                entry["high"],
                entry["key"],
                entry["mass"],
                entry["distinct"],
                [(tuple(v), m) for v, m in entry["points"]],
            )
            for entry in state["buckets"]
        ]
        return histogram

    def count_point_total(self) -> int:
        """Total stored count points across all buckets (size accounting)."""
        total = sum(len(bucket.points) for bucket in self.buckets)
        return total + len(self._missing_points)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ValueCountHistogram dims={self.dimensions} "
            f"value_buckets={self.bucket_count()}>"
        )
