"""Haar-wavelet summaries of edge distributions.

The paper names wavelets as the alternative to histograms for compressing
edge distributions (Sections 3.2–3.3).  This engine performs a standard
multidimensional Haar decomposition of the (dense) count-grid form of the
distribution, retains the largest coefficients, and reconstructs a
non-negative, renormalized distribution on demand.

Count domains are clipped to a per-dimension power-of-two grid (larger
counts collapse into the top cell, keeping their mass but flattening their
magnitude); the grid side shrinks with dimensionality to bound the dense
grid size.  The engine exposes the same ``points()`` interface as the other
engines, so the estimation framework is oblivious to the change — this is
what experiment E9 (histogram-engine ablation) exercises.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import SynopsisError
from . import ops
from .ops import Point
from .sparse import SparseDistribution

#: Maximum grid side per dimensionality (keeps the dense grid small).
_MAX_SIDE = {1: 64, 2: 16, 3: 8}
_DEFAULT_SIDE = 4


def _grid_side(max_count: float, dimensions: int) -> int:
    cap = _MAX_SIDE.get(dimensions, _DEFAULT_SIDE)
    needed = 2 ** math.ceil(math.log2(max(2.0, max_count + 1)))
    return min(cap, needed)


def _haar_1d(data: np.ndarray, axis: int) -> np.ndarray:
    """One full 1-D Haar decomposition along ``axis`` (orthonormal)."""
    data = np.moveaxis(data, axis, 0)
    length = data.shape[0]
    output = data.astype(float).copy()
    span = length
    while span > 1:
        half = span // 2
        evens = output[0:span:2].copy()
        odds = output[1:span:2].copy()
        output[:half] = (evens + odds) / math.sqrt(2.0)
        output[half:span] = (evens - odds) / math.sqrt(2.0)
        span = half
    return np.moveaxis(output, 0, axis)


def _ihaar_1d(data: np.ndarray, axis: int) -> np.ndarray:
    """Inverse of :func:`_haar_1d`."""
    data = np.moveaxis(data, axis, 0)
    length = data.shape[0]
    output = data.astype(float).copy()
    span = 2
    while span <= length:
        half = span // 2
        averages = output[:half].copy()
        details = output[half:span].copy()
        output[0:span:2] = (averages + details) / math.sqrt(2.0)
        output[1:span:2] = (averages - details) / math.sqrt(2.0)
        span *= 2
    return np.moveaxis(output, 0, axis)


class WaveletHistogram:
    """Top-coefficient Haar summary of a count distribution.

    Args:
        source: exact distribution to compress.
        coefficients: number of wavelet coefficients to retain (≥ 1);
            plays the role of the bucket budget in size accounting.
    """

    def __init__(self, source: SparseDistribution, coefficients: int):
        if coefficients < 1:
            raise SynopsisError("coefficient budget must be at least 1")
        self.dimensions = source.dimensions
        self.budget = coefficients

        source_points = source.points()
        max_count = max(
            (max(vector) for vector, _ in source_points), default=1.0
        )
        side = _grid_side(max_count, self.dimensions)
        grid = np.zeros((side,) * self.dimensions)
        for vector, mass in source_points:
            cell = tuple(min(side - 1, int(round(c))) for c in vector)
            grid[cell] += mass

        transformed = grid
        for axis in range(self.dimensions):
            transformed = _haar_1d(transformed, axis)
        flat = transformed.ravel()
        if coefficients < flat.size:
            # Keep the largest-magnitude coefficients; zero the rest.
            threshold_index = np.argsort(np.abs(flat))[:-coefficients]
            flat = flat.copy()
            flat[threshold_index] = 0.0
        self._coefficients = flat.reshape(transformed.shape)
        self._side = side
        self._stored = int(np.count_nonzero(self._coefficients))
        self._points_cache: list[Point] | None = None

    # ------------------------------------------------------------------
    # the common engine interface
    # ------------------------------------------------------------------
    def points(self) -> list[Point]:
        """Reconstructed (cell vector, mass) points, non-negative, unit mass."""
        if self._points_cache is None:
            grid = self._coefficients
            for axis in reversed(range(self.dimensions)):
                grid = _ihaar_1d(grid, axis)
            grid = np.clip(grid, 0.0, None)
            total = grid.sum()
            points: list[Point] = []
            if total > 0:
                for cell in zip(*np.nonzero(grid)):
                    vector = tuple(float(c) for c in cell)
                    points.append((vector, float(grid[cell] / total)))
            self._points_cache = sorted(points)
        return list(self._points_cache)

    def bucket_count(self) -> int:
        """Number of retained non-zero coefficients (≤ budget)."""
        return max(1, self._stored)

    # ------------------------------------------------------------------
    def expected_product(self, dims: Sequence[int]) -> float:
        """``Σ mass · Π c_d`` over the reconstructed distribution."""
        return ops.expected_product(self.points(), dims)

    def mean(self, dim: int) -> float:
        """Mass-weighted mean of one dimension of the reconstruction."""
        return ops.mean(self.points(), dim)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WaveletHistogram dims={self.dimensions} side={self._side} "
            f"coefficients={self._stored}/{self.budget}>"
        )
