"""Summarization engines for count distributions and value populations.

* :class:`SparseDistribution` — exact multidimensional count distribution;
* :class:`CentroidHistogram` — bucketized approximation (default engine);
* :class:`WaveletHistogram` — Haar-wavelet alternative (paper 3.2/3.3);
* value histograms — 1-D summaries of element values for value predicates;
* :mod:`repro.histogram.ops` — point-list algebra used by estimation
  (marginalize, condition, expected products).
"""

from . import ops
from .centroid import CentroidHistogram
from .joint import ValueCountHistogram
from .sparse import SparseDistribution
from .value import (
    NumericValueHistogram,
    StringValueHistogram,
    build_value_histogram,
)
from .wavelet import WaveletHistogram

__all__ = [
    "CentroidHistogram",
    "NumericValueHistogram",
    "SparseDistribution",
    "StringValueHistogram",
    "ValueCountHistogram",
    "WaveletHistogram",
    "build_value_histogram",
    "ops",
]
