"""Exact sparse distributions over integer count vectors.

An *edge distribution* ``f_i(C_1, ..., C_k)`` (paper Section 3.2) assigns to
each integer count vector the fraction of elements realizing it.  This class
stores it exactly and is the input to every compression engine, and also the
"full information" reference against which compression is tested (the paper:
"the final expression will compute the selectivity of T with zero error if
the synopsis records full information").
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

from ..errors import SynopsisError
from . import ops
from .ops import Point


class SparseDistribution:
    """An exact multidimensional fraction distribution over count vectors.

    Args:
        fractions: mapping from integer count vectors to fractions; must be
            non-negative and is normalized to unit mass on construction.

    Raises:
        SynopsisError: on inconsistent vector widths or non-positive mass.
    """

    def __init__(self, fractions: Mapping[tuple[int, ...], float]):
        if not fractions:
            raise SynopsisError("a distribution needs at least one point")
        widths = {len(vector) for vector in fractions}
        if len(widths) != 1:
            raise SynopsisError(f"inconsistent vector widths: {sorted(widths)}")
        total = float(sum(fractions.values()))
        if total <= 0:
            raise SynopsisError("distribution has no mass")
        if any(value < 0 for value in fractions.values()):
            raise SynopsisError("negative fraction in distribution")
        self._points: list[Point] = sorted(
            (tuple(float(c) for c in vector), value / total)
            for vector, value in fractions.items()
            if value > 0
        )
        self.dimensions = widths.pop()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_observations(
        vectors: Iterable[tuple[int, ...]]
    ) -> "SparseDistribution":
        """Build from one count vector per element (fractions = frequencies)."""
        counts = Counter(vectors)
        if not counts:
            raise SynopsisError("no observations")
        return SparseDistribution(counts)

    # ------------------------------------------------------------------
    # the common engine interface
    # ------------------------------------------------------------------
    def points(self) -> list[Point]:
        """All (vector, fraction) points; fractions sum to 1."""
        return list(self._points)

    @property
    def point_count(self) -> int:
        """Number of distinct count vectors."""
        return len(self._points)

    def bucket_count(self) -> int:
        """Alias of :attr:`point_count` for size accounting parity with
        compressed engines (an exact distribution is its own buckets)."""
        return len(self._points)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def fraction(self, vector: Sequence[int]) -> float:
        """Exact fraction at ``vector`` (0.0 when absent)."""
        target = tuple(float(c) for c in vector)
        for point_vector, mass in self._points:
            if point_vector == target:
                return mass
        return 0.0

    def marginal(self, keep: Sequence[int]) -> "SparseDistribution":
        """Marginal distribution over the dimensions in ``keep``."""
        merged = ops.marginalize(self._points, keep)
        return SparseDistribution(
            {tuple(int(round(c)) for c in vector): mass for vector, mass in merged}
        )

    def expected_product(self, dims: Sequence[int]) -> float:
        """``Σ f(c) · Π_{d in dims} c_d`` — the paper's ΣF term."""
        return ops.expected_product(self._points, dims)

    def mean(self, dim: int) -> float:
        """Mass-weighted mean count of one dimension."""
        return ops.mean(self._points, dim)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SparseDistribution dims={self.dimensions} "
            f"points={len(self._points)}>"
        )
