"""Centroid histograms: bucketized multidimensional edge distributions.

The paper observes that an edge distribution "can be summarized very
efficiently using multidimensional methods such as histograms and wavelets,
since it is essentially defined over a space of integer edge counts".  This
engine is the default histogram: it compresses an exact
:class:`~repro.histogram.sparse.SparseDistribution` down to a bucket budget
by greedy agglomerative merging (Ward's criterion: each merge minimizes the
increase of mass-weighted within-bucket variance in count space).

Each bucket stores its total mass and per-dimension weighted centroid, so
compression *exactly* preserves the distribution's total mass and its
per-dimension means — which in turn means selectivity estimates for
single-edge expansions are unaffected by compression, and only the
correlation detail degrades.  That is the property the paper's estimation
framework relies on.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from ..errors import SynopsisError
from . import ops
from .ops import Point
from .sparse import SparseDistribution

#: Above this many distinct points, inputs are pre-quantized onto a
#: geometric grid before agglomerative merging (keeps builds near-linear).
MAX_EXACT_POINTS = 512


def _quantize(points: list[Point], ratio: float = 1.25) -> list[Point]:
    """Snap each count to a geometric grid and merge colliding points."""
    buckets: dict[tuple[int, ...], tuple[list[float], float]] = {}
    log_ratio = math.log(ratio)
    for vector, mass in points:
        key = tuple(
            0 if c <= 0 else int(math.floor(math.log(c) / log_ratio + 1e-9))
            for c in vector
        )
        if key in buckets:
            sums, total = buckets[key]
            for index, coordinate in enumerate(vector):
                sums[index] += coordinate * mass
            buckets[key] = (sums, total + mass)
        else:
            buckets[key] = ([c * mass for c in vector], mass)
    return [
        (tuple(s / total for s in sums), total)
        for sums, total in buckets.values()
    ]


def _ward_cost(a: Point, b: Point) -> float:
    (vector_a, mass_a), (vector_b, mass_b) = a, b
    if mass_a + mass_b <= 0:
        return 0.0
    distance_sq = sum((x - y) ** 2 for x, y in zip(vector_a, vector_b))
    return (mass_a * mass_b) / (mass_a + mass_b) * distance_sq


def _merge(a: Point, b: Point) -> Point:
    (vector_a, mass_a), (vector_b, mass_b) = a, b
    total = mass_a + mass_b
    centroid = tuple(
        (x * mass_a + y * mass_b) / total for x, y in zip(vector_a, vector_b)
    )
    return centroid, total


def _agglomerate(points: list[Point], budget: int) -> list[Point]:
    """Merge nearest (Ward) cluster pairs until at most ``budget`` remain."""
    clusters: dict[int, Point] = dict(enumerate(points))
    next_id = len(points)
    heap: list[tuple[float, int, int]] = []
    ids = list(clusters)
    for position, left in enumerate(ids):
        for right in ids[position + 1 :]:
            heapq.heappush(
                heap, (_ward_cost(clusters[left], clusters[right]), left, right)
            )
    while len(clusters) > budget and heap:
        _, left, right = heapq.heappop(heap)
        if left not in clusters or right not in clusters:
            continue  # stale entry
        merged = _merge(clusters.pop(left), clusters.pop(right))
        for other_id, other in clusters.items():
            heapq.heappush(
                heap, (_ward_cost(merged, other), next_id, other_id)
            )
        clusters[next_id] = merged
        next_id += 1
    return list(clusters.values())


class CentroidHistogram:
    """A bucketized approximation of a multidimensional count distribution.

    Args:
        source: the exact distribution to compress.
        buckets: maximum number of buckets to keep (≥ 1).

    The histogram keeps masses summing to 1 and per-dimension means equal to
    the source's (up to float rounding).
    """

    def __init__(self, source: SparseDistribution, buckets: int):
        if buckets < 1:
            raise SynopsisError("bucket budget must be at least 1")
        self.dimensions = source.dimensions
        self.budget = buckets
        points = source.points()
        if len(points) > MAX_EXACT_POINTS:
            points = _quantize(points)
        if len(points) > buckets:
            points = _agglomerate(points, buckets)
        self._points: list[Point] = sorted(points)

    # ------------------------------------------------------------------
    # the common engine interface
    # ------------------------------------------------------------------
    def points(self) -> list[Point]:
        """Bucket representatives: (centroid vector, mass)."""
        return list(self._points)

    def bucket_count(self) -> int:
        """Number of buckets actually stored (≤ budget)."""
        return len(self._points)

    # ------------------------------------------------------------------
    def expected_product(self, dims: Sequence[int]) -> float:
        """``Σ mass · Π centroid_d`` over buckets — the ΣF estimate."""
        return ops.expected_product(self._points, dims)

    def mean(self, dim: int) -> float:
        """Mass-weighted mean of one dimension (preserved exactly)."""
        return ops.mean(self._points, dim)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CentroidHistogram dims={self.dimensions} "
            f"buckets={len(self._points)}/{self.budget}>"
        )
