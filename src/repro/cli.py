"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``stats FILE.xml`` — document characteristics (Table 1 columns);
* ``build [FILE.xml | --dataset NAME] --budget KB [--out sketch-info]``
  — run XBUILD and report the constructed synopsis (node/edge/histogram
  inventory); ``--workers N`` fans candidate scoring out over worker
  processes (bit-identical result, see :mod:`repro.parallel`) and
  ``--metrics-json PATH`` exports the build's metrics snapshot;
  resilience options: ``--deadline SECONDS`` truncates a long build to
  its best-so-far synopsis, ``--checkpoint PATH --checkpoint-every N``
  persist in-flight state, and ``--resume PATH`` continues an
  interrupted build bit-identically;
* ``estimate FILE.xml --query 'for ...' --budget KB [--exact]`` — build a
  synopsis and estimate the twig query's selectivity, optionally
  comparing against exact evaluation;
* ``workload FILE.xml [--queries N] [--values]`` — generate a positive
  workload and print its Table 2 characteristics;
* ``demo [--dataset imdb|xmark|sprot] [--scale N]`` — run the estimate
  flow on a built-in synthetic data set (no input file needed);
* ``analyze [PATHS...] [--json]`` — run the static import-contract
  analyzer (same engine as ``python -m repro.analysis``);
* ``validate SKETCH.json`` — integrity-check a saved synopsis: digest,
  schema, and every invariant in ``repro.synopsis.validate``;
* ``serve-eval`` — run a workload through the graceful-degradation
  :class:`~repro.serve.EstimatorService` and report per-tier counts,
  latency, per-request warnings, and final breaker states;
  ``--batch`` serves the workload through the shared-cache batch API
  and ``--workers N`` routes requests through the queued
  :class:`~repro.serve.ServePool`; ``--metrics-json PATH``
  additionally exports a machine-readable ``repro.obs/serve-eval-v1``
  envelope (``-`` = stdout);
* ``trace-report FILE`` — aggregate a ``--trace`` JSONL file into
  per-span-kind timings (count/total/self/mean/max) and the critical
  path (``--json`` for machine-readable output);
* ``metrics`` — exercise the full pipeline (parse → XBUILD → serve a
  workload) against the process-global metrics registry and export the
  resulting series as JSON or Prometheus text.

Observability flags: ``build`` and ``serve-eval`` accept ``--trace FILE``
to stream spans as JSONL; ``estimate`` accepts ``--explain`` to print the
per-synopsis-node expansion trail behind the returned number.

The CLI is a thin veneer over the public API; every command maps to a few
library calls shown in README.md.  File-loading commands accept
``--lenient`` to recover a partial tree from malformed XML instead of
failing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter

from .analysis import analyze_paths, default_roots, render_json, render_text
from .baselines import CorrelatedSuffixTree
from .build import XBuild
from .datasets import (
    figure1_document,
    generate_imdb,
    generate_sprot,
    generate_xmark,
)
from .doc import document_stats, parse_file
from .errors import ReproError
from .estimation import TwigEstimator
from .obs import (
    SERVE_EVAL_SCHEMA,
    ExplainRecorder,
    JsonlSink,
    SpanTracer,
    default_registry,
    load_spans,
    render_explanation,
    render_trace_report,
    trace_report,
    write_export,
)
from .query import count_bindings, parse_for_clause, parse_path, twig
from .serve import EstimatorService, ServePool
from .synopsis import (
    TwigXSketch,
    error_violations,
    load_sketch,
    save_sketch,
    validate_sketch,
)
from .workload import WorkloadGenerator, WorkloadSpec

_DATASETS = {
    "imdb": generate_imdb,
    "xmark": generate_xmark,
    "sprot": generate_sprot,
    # The paper's own running example (Figure 1); scale is ignored.
    "paperfig": lambda scale, seed=1: figure1_document(),
}


def _load_tree(args):
    if getattr(args, "dataset", None):
        return _DATASETS[args.dataset](args.scale, seed=1)
    mode = "lenient" if getattr(args, "lenient", False) else "strict"
    return parse_file(args.file, mode=mode)


def _parse_query(text: str):
    stripped = text.strip()
    if stripped.lower().startswith("for ") or " in " in stripped:
        return parse_for_clause(stripped)
    return twig(parse_path(stripped))


def _open_tracer(path):
    """Build a JSONL-sinking tracer for ``--trace PATH`` (or ``(None, None)``)."""
    if not path:
        return None, None
    sink = JsonlSink(path)
    return SpanTracer(sink), sink


def _flat_query(query) -> str:
    return " | ".join(line.strip() for line in query.text().splitlines())


def _breakers_from_registry(registry, sketch: str) -> dict:
    """Final breaker states, read back from ``serve_breaker_state`` gauges."""
    states: dict = {}
    for metric in registry.snapshot()["metrics"]:
        if metric["name"] != "serve_breaker_state":
            continue
        for series in metric["series"]:
            labels = series["labels"]
            if labels.get("sketch") == sketch and series["value"] == 1.0:
                states[labels["tier"]] = labels["state"]
    return states


def cmd_stats(args) -> int:
    tree = _load_tree(args)
    stats = document_stats(tree)
    coarsest = TwigXSketch.coarsest(tree)
    print(f"name:             {stats.name or args.file}")
    print(f"elements:         {stats.element_count:,}")
    print(f"distinct tags:    {stats.distinct_tags}")
    print(f"max depth:        {stats.max_depth}")
    print(f"avg fanout:       {stats.avg_fanout:.2f}")
    print(f"text size:        {stats.text_size_mb:.2f} MB")
    print(f"coarsest synopsis: {coarsest.size_kb():.2f} KB")
    return 0


def cmd_build(args) -> int:
    if not args.file and not args.dataset:
        raise ReproError("build needs an XML file or --dataset")
    tree = _load_tree(args)
    checkpoint_every = args.checkpoint_every
    if args.checkpoint and checkpoint_every is None:
        checkpoint_every = 1
    tracer, sink = _open_tracer(args.trace)
    registry = default_registry()
    result = XBuild(
        tree,
        budget_bytes=int(args.budget * 1024),
        seed=args.seed,
        sample_value_probability=0.3 if args.values else 0.0,
        deadline=args.deadline,
        checkpoint_every=checkpoint_every,
        checkpoint_path=args.checkpoint,
        resume_from=args.resume,
        metrics=registry,
        tracer=tracer,
        workers=args.workers,
    ).run()
    sketch = result.sketch
    workers = f", {args.workers} workers" if args.workers > 1 else ""
    print(f"built {sketch.size_kb():.1f} KB synopsis "
          f"({len(result.steps)} refinements{workers})")
    if result.truncated:
        print(f"truncated: {result.reason} (best-so-far synopsis)")
    print(f"nodes: {sketch.graph.node_count}, edges: {sketch.graph.edge_count}")
    histograms = sum(len(h) for h in sketch.edge_stats.values())
    print(f"edge histograms: {histograms}, "
          f"value histograms: {len(sketch.value_stats)}")
    kinds = Counter(step.description.split()[0] for step in result.steps)
    for kind, count in kinds.most_common():
        print(f"  {kind:<14} x{count}")
    if args.out:
        save_sketch(sketch, args.out)
        print(f"saved to {args.out}")
    if sink is not None:
        sink.close()
        print(f"trace: {sink.written} spans -> {args.trace}")
    if args.metrics_json:
        write_export(
            json.dumps(registry.snapshot(), indent=2, sort_keys=True),
            args.metrics_json,
        )
        if args.metrics_json != "-":
            print(f"metrics: {args.metrics_json}")
    return 0


def cmd_estimate(args) -> int:
    tree = _load_tree(args)
    query = _parse_query(args.query)
    if getattr(args, "synopsis", None):
        sketch = load_sketch(args.synopsis)
    else:
        sketch = XBuild(
            tree,
            budget_bytes=int(args.budget * 1024),
            seed=args.seed,
            sample_value_probability=(
                0.3 if query.has_value_predicates() else 0.0
            ),
        ).run().sketch
    explain = ExplainRecorder() if getattr(args, "explain", False) else None
    report = TwigEstimator(sketch, explain=explain).report(query)
    print(f"synopsis: {sketch.size_kb():.1f} KB; "
          f"embeddings: {report.embeddings}"
          + (" (truncated)" if report.truncated else ""))
    print(f"estimated selectivity: {report.selectivity:,.1f}")
    if explain is not None:
        print("--- explain ---")
        print(render_explanation(explain))
    if args.exact:
        truth = count_bindings(query, tree)
        print(f"exact selectivity:     {truth:,}")
        if truth:
            print(f"relative error:        "
                  f"{abs(report.selectivity - truth) / truth * 100:.1f}%")
    return 0


def cmd_workload(args) -> int:
    tree = _load_tree(args)
    spec = WorkloadSpec(seed=args.seed, value_predicates=args.values)
    load = WorkloadGenerator(tree, spec).positive_workload(args.queries)
    print(f"workload: {len(load.queries)} positive twig queries "
          f"({'P+V' if args.values else 'P'})")
    print(f"avg result: {load.average_result():,.0f}")
    print(f"avg fanout: {load.average_fanout():.2f}")
    if args.show:
        for entry in load.queries[: args.show]:
            flat = " | ".join(
                line.strip() for line in entry.query.text().splitlines()
            )
            print(f"  [{entry.true_count:>8,}] {flat}")
    return 0


def cmd_analyze(args) -> int:
    paths = args.paths or default_roots()
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        raise ReproError("no such path: " + ", ".join(missing))
    findings = analyze_paths(paths)
    report = render_json(findings) if args.json else render_text(findings)
    if report:
        print(report)
    if findings and not args.json:
        print(f"{len(findings)} finding(s)")
    return 1 if findings else 0


def cmd_validate(args) -> int:
    sketch = load_sketch(args.synopsis)  # digest + schema (typed errors)
    violations = validate_sketch(sketch)
    if args.json:
        import json

        print(json.dumps([
            {
                "code": v.code,
                "path": v.path,
                "message": v.message,
                "severity": v.severity,
            }
            for v in violations
        ]))
    else:
        for violation in violations:
            print(f"{violation.severity}: {violation.code} "
                  f"at {violation.path}: {violation.message}")
        errors = error_violations(violations)
        print(f"{args.synopsis}: digest ok, "
              f"{len(errors)} error(s), "
              f"{len(violations) - len(errors)} warning(s)")
    return 1 if error_violations(violations) else 0


def cmd_serve_eval(args) -> int:
    if not args.file and not args.dataset:
        raise ReproError("serve-eval needs an XML file or --dataset")
    tree = _load_tree(args)
    registry = default_registry()
    tracer, sink = _open_tracer(args.trace)
    if args.synopsis:
        sketch = load_sketch(args.synopsis, strict=not args.no_validate)
        source = args.synopsis
    else:
        sketch = XBuild(
            tree,
            budget_bytes=int(args.budget * 1024),
            seed=args.seed,
            metrics=registry,
            tracer=tracer,
        ).run().sketch
        source = f"XBUILD ({sketch.size_kb():.1f} KB)"
    service = EstimatorService(
        failure_threshold=args.failure_threshold,
        metrics=registry,
        tracer=tracer,
    )
    service.register(
        "default",
        sketch,
        baseline=CorrelatedSuffixTree.build(tree, int(args.budget * 1024)),
        validate=not args.no_validate,
    )
    spec = WorkloadSpec(seed=args.seed)
    load = WorkloadGenerator(tree, spec).positive_workload(args.queries)
    queries = [entry.query for entry in load.queries]
    if args.workers > 1:
        # route through the queued worker-pool front-end
        with ServePool(service, workers=args.workers) as pool:
            if args.batch:
                responses = pool.submit_batch(
                    "default", queries, deadline=args.deadline
                ).result()
            else:
                futures = [
                    pool.submit("default", q, deadline=args.deadline)
                    for q in queries
                ]
                responses = [future.result() for future in futures]
    elif args.batch:
        responses = service.submit_batch(
            "default", queries, deadline=args.deadline
        )
    else:
        responses = [
            service.estimate("default", q, deadline=args.deadline)
            for q in queries
        ]
    tiers: Counter = Counter()
    requests = []
    warnings = 0
    latency = 0.0
    error_sum = 0.0
    errored = 0
    for entry, response in zip(load.queries, responses):
        tiers[response.source] += 1
        warnings += len(response.warnings)
        latency += response.latency
        requests.append({
            "query": _flat_query(entry.query),
            "estimate": response.estimate,
            "tier": response.source,
            "latency": response.latency,
            "true_count": entry.true_count,
            "warnings": list(response.warnings),
        })
        if entry.true_count:
            error_sum += (
                abs(response.estimate - entry.true_count) / entry.true_count
            )
            errored += 1
    # Refresh the breaker gauges, then report the states the registry holds
    # (the same series `repro metrics` exports).
    service.breaker_states("default")
    breakers = _breakers_from_registry(registry, "default")
    count = len(load.queries)
    print(f"served {count} queries over {source}")
    for tier in ("twig", "path", "cst", "uniform"):
        if tiers[tier]:
            print(f"  tier {tier:<8} {tiers[tier]:>5} "
                  f"({tiers[tier] / count * 100:.0f}%)")
    print(f"avg latency: {latency / count * 1000:.2f} ms; "
          f"warnings: {warnings}")
    if errored:
        print(f"avg rel error: {error_sum / errored * 100:.1f}%")
    for index, record in enumerate(requests):
        for warning in record["warnings"]:
            print(f"  warn q{index} [{record['tier']}]: {warning}")
    print("breakers:", " ".join(
        f"{tier}={state}" for tier, state in breakers.items()
    ))
    if sink is not None:
        sink.close()
        print(f"trace: {sink.written} spans -> {args.trace}")
    if args.metrics_json:
        payload = {
            "schema": SERVE_EVAL_SCHEMA,
            "source": source,
            "queries": count,
            "requests": requests,
            "breakers": breakers,
            "metrics": registry.snapshot(),
        }
        write_export(json.dumps(payload, indent=2), args.metrics_json)
        if args.metrics_json != "-":
            print(f"metrics: {args.metrics_json}")
    return 0


def cmd_trace_report(args) -> int:
    """Aggregate a ``--trace`` JSONL file into a profiling summary."""
    report = trace_report(load_spans(args.trace_file))
    if not report.spans:
        raise ReproError(f"{args.trace_file}: no finished spans")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(render_trace_report(report, top=args.top))
    return 0


def cmd_metrics(args) -> int:
    """Exercise the pipeline end-to-end and export the metrics registry."""
    if not args.file and not args.dataset:
        args.dataset = "paperfig"
    registry = default_registry()
    tree = _load_tree(args)
    result = XBuild(
        tree,
        budget_bytes=int(args.budget * 1024),
        seed=args.seed,
        metrics=registry,
    ).run()
    service = EstimatorService(metrics=registry)
    service.register(
        "default",
        result.sketch,
        baseline=CorrelatedSuffixTree.build(tree, int(args.budget * 1024)),
    )
    load = WorkloadGenerator(
        tree, WorkloadSpec(seed=args.seed)
    ).positive_workload(args.queries)
    for entry in load.queries:
        service.estimate("default", entry.query)
    service.breaker_states("default")  # publish final breaker gauges
    if args.format == "prometheus":
        text = registry.render_prometheus()
    else:
        text = json.dumps(registry.snapshot(), indent=2, sort_keys=True)
    write_export(text, args.out)
    if args.out and args.out != "-":
        print(f"wrote {args.format} metrics "
              f"({len(load.queries)} queries served) to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Twig XSKETCH: selectivity estimation for XML twigs",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_source(sub, with_file: bool = True):
        if with_file:
            sub.add_argument("file", help="XML document to load")
            sub.add_argument(
                "--lenient", action="store_true",
                help="recover a partial tree from malformed XML "
                     "instead of failing",
            )
        sub.add_argument("--seed", type=int, default=17)

    stats = commands.add_parser("stats", help="document characteristics")
    add_source(stats)
    stats.set_defaults(handler=cmd_stats)

    build = commands.add_parser("build", help="run XBUILD")
    build.add_argument("file", nargs="?", default=None,
                       help="XML document (or use --dataset)")
    build.add_argument("--dataset", choices=sorted(_DATASETS), default=None)
    build.add_argument("--scale", type=int, default=4000)
    build.add_argument("--lenient", action="store_true",
                       help="recover a partial tree from malformed XML "
                            "instead of failing")
    build.add_argument("--seed", type=int, default=17)
    build.add_argument("--budget", type=float, default=16.0, help="KB")
    build.add_argument("--workers", type=int, default=1,
                       help="worker processes for candidate scoring "
                            "(any value builds the identical synopsis)")
    build.add_argument("--metrics-json", default=None, metavar="PATH",
                       help="export the build's metrics snapshot as JSON; "
                            "'-' = stdout")
    build.add_argument("--values", action="store_true",
                       help="tune for value-predicated workloads")
    build.add_argument("--out", help="save the synopsis as JSON")
    build.add_argument("--deadline", type=float, default=None,
                       help="wall-clock budget in seconds; a build that "
                            "overruns returns its best-so-far synopsis")
    build.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="write build checkpoints to PATH")
    build.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N", help="checkpoint every N refinements "
                                         "(default 1 when --checkpoint "
                                         "is given)")
    build.add_argument("--resume", default=None, metavar="PATH",
                       help="resume an interrupted build from a "
                            "checkpoint file")
    build.add_argument("--trace", default=None, metavar="FILE",
                       help="stream build spans to FILE as JSONL")
    build.set_defaults(handler=cmd_build)

    estimate = commands.add_parser("estimate", help="estimate a twig query")
    add_source(estimate)
    estimate.add_argument("--query", required=True,
                          help="for-clause or path expression")
    estimate.add_argument("--budget", type=float, default=16.0, help="KB")
    estimate.add_argument("--synopsis",
                          help="estimate over a saved synopsis instead of "
                               "building one")
    estimate.add_argument("--exact", action="store_true",
                          help="also evaluate exactly and report the error")
    estimate.add_argument("--explain", action="store_true",
                          help="print the per-synopsis-node expansion "
                               "trail behind the estimate")
    estimate.set_defaults(handler=cmd_estimate)

    workload = commands.add_parser("workload", help="generate a workload")
    add_source(workload)
    workload.add_argument("--queries", type=int, default=20)
    workload.add_argument("--values", action="store_true")
    workload.add_argument("--show", type=int, default=0,
                          help="print the first N queries")
    workload.set_defaults(handler=cmd_workload)

    demo = commands.add_parser("demo", help="estimate over a built-in data set")
    demo.add_argument("--dataset", choices=sorted(_DATASETS), default="imdb")
    demo.add_argument("--scale", type=int, default=8000)
    demo.add_argument("--seed", type=int, default=17)
    demo.add_argument(
        "--query",
        default='for m in movie[/type = "Action"], a in m/actor, p in m/producer',
    )
    demo.add_argument("--budget", type=float, default=8.0, help="KB")
    demo.add_argument("--exact", action="store_true", default=True)
    demo.set_defaults(handler=cmd_estimate, file=None)

    analyze = commands.add_parser(
        "analyze", help="run the static import-contract analyzer"
    )
    analyze.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze "
             "(default: src tests benchmarks examples, where present)",
    )
    analyze.add_argument("--json", action="store_true",
                         help="emit findings as a JSON array")
    analyze.set_defaults(handler=cmd_analyze)

    validate = commands.add_parser(
        "validate", help="integrity-check a saved synopsis"
    )
    validate.add_argument("synopsis", help="synopsis JSON file to check")
    validate.add_argument("--json", action="store_true",
                          help="emit violations as a JSON array")
    validate.set_defaults(handler=cmd_validate)

    serve_eval = commands.add_parser(
        "serve-eval",
        help="run a workload through the degradation-aware "
             "estimator service",
    )
    serve_eval.add_argument("file", nargs="?", default=None,
                            help="XML document (or use --dataset)")
    serve_eval.add_argument("--dataset", choices=sorted(_DATASETS),
                            default=None)
    serve_eval.add_argument("--scale", type=int, default=4000)
    serve_eval.add_argument("--seed", type=int, default=17)
    serve_eval.add_argument("--lenient", action="store_true",
                            help="recover a partial tree from malformed "
                                 "XML instead of failing")
    serve_eval.add_argument("--budget", type=float, default=8.0, help="KB")
    serve_eval.add_argument("--queries", type=int, default=25)
    serve_eval.add_argument("--synopsis", default=None,
                            help="serve a saved synopsis instead of "
                                 "building one")
    serve_eval.add_argument("--deadline", type=float, default=None,
                            help="per-request wall-clock budget in seconds")
    serve_eval.add_argument("--workers", type=int, default=1,
                            help="serve through a queued worker pool of "
                                 "N threads (see repro.serve.ServePool)")
    serve_eval.add_argument("--batch", action="store_true",
                            help="serve the workload through the batch "
                                 "API (shared embedding-plan caches)")
    serve_eval.add_argument("--failure-threshold", type=int, default=5,
                            help="consecutive tier failures that open "
                                 "the circuit")
    serve_eval.add_argument("--no-validate", action="store_true",
                            help="skip invariant validation when "
                                 "registering the synopsis")
    serve_eval.add_argument("--trace", default=None, metavar="FILE",
                            help="stream build+serve spans to FILE as JSONL")
    serve_eval.add_argument("--metrics-json", default=None, metavar="PATH",
                            help="export a repro.obs/serve-eval-v1 JSON "
                                 "envelope (per-request results, breaker "
                                 "states, metrics snapshot); '-' = stdout")
    serve_eval.set_defaults(handler=cmd_serve_eval)

    trace_rep = commands.add_parser(
        "trace-report",
        help="aggregate a --trace JSONL file into a profiling summary",
    )
    trace_rep.add_argument("trace_file",
                           help="JSONL span file written by --trace")
    trace_rep.add_argument("--top", type=int, default=0,
                           help="show only the N hottest span kinds")
    trace_rep.add_argument("--json", action="store_true",
                           help="emit the report as JSON")
    trace_rep.set_defaults(handler=cmd_trace_report)

    metrics = commands.add_parser(
        "metrics",
        help="exercise the pipeline and export the metrics registry",
    )
    metrics.add_argument("file", nargs="?", default=None,
                         help="XML document (or use --dataset)")
    metrics.add_argument("--dataset", choices=sorted(_DATASETS),
                         default=None)
    metrics.add_argument("--scale", type=int, default=2000)
    metrics.add_argument("--seed", type=int, default=17)
    metrics.add_argument("--lenient", action="store_true",
                         help="recover a partial tree from malformed "
                              "XML instead of failing")
    metrics.add_argument("--budget", type=float, default=4.0, help="KB")
    metrics.add_argument("--queries", type=int, default=12)
    metrics.add_argument("--format", choices=("json", "prometheus"),
                         default="json")
    metrics.add_argument("--out", default="-", metavar="PATH",
                         help="destination file; '-' = stdout (default)")
    metrics.set_defaults(handler=cmd_metrics)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
