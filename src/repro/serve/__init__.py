"""Robust estimation serving (the consult side of the synopsis).

* :class:`EstimatorService` — a thread-safe registry of named, validated
  sketches with per-request deadlines, per-tier circuit breakers, and a
  graceful-degradation cascade (twig → path → cst → uniform prior);
* :class:`EstimateResponse` — the response envelope: estimate, source
  tier, latency, and the warnings accumulated while degrading;
* :class:`CircuitBreaker` — the consecutive-failure trip switch;
* :class:`ServePool` — a bounded-queue worker-pool front-end with
  load shedding and an asyncio adapter (:mod:`repro.serve.pool`).

See README.md "Robustness" and DESIGN.md S23 for the invariants and the
cascade contract.
"""

from .circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .pool import ServePool
from .service import (
    DEFAULT_UNIFORM_PRIOR,
    FALLBACK_TIERS,
    TIER_CST,
    TIER_PATH,
    TIER_TWIG,
    TIER_UNIFORM,
    EstimateResponse,
    EstimatorService,
)

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "DEFAULT_UNIFORM_PRIOR",
    "EstimateResponse",
    "EstimatorService",
    "FALLBACK_TIERS",
    "HALF_OPEN",
    "OPEN",
    "ServePool",
    "TIER_CST",
    "TIER_PATH",
    "TIER_TWIG",
    "TIER_UNIFORM",
]
