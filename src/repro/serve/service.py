"""The robust estimation service: registry, deadlines, degradation.

The paper's deployment story is "build the synopsis once, consult it from
every optimizer invocation" — the consult side is the hot, user-facing
path, and it must answer *something finite* even when the synopsis on
disk is stale, truncated, or corrupt.  :class:`EstimatorService` is that
serving tier:

* a **registry** of named sketches, each validated on registration
  (:mod:`repro.synopsis.validate`) unless the caller opts out;
* **per-request deadlines** via :class:`~repro.resilience.guards.Budget`
  — a request that runs out of time skips the remaining tiers and serves
  the terminal prior;
* a **circuit breaker** per (sketch, tier): a tier that keeps failing is
  skipped outright until a cooldown elapses
  (:mod:`repro.serve.circuit`);
* a **graceful-degradation cascade**.  Tiers, in order:

  1. ``twig`` — the full Twig XSKETCH estimator
     (:class:`~repro.estimation.estimator.TwigEstimator`);
  2. ``path`` — the single-path estimator over the same sketch,
     on the query's primary chain (branching siblings collapsed);
  3. ``cst`` — the Correlated-Suffix-Tree baseline, when one was
     registered alongside the sketch (it summarizes the *document*, so
     it survives synopsis corruption);
  4. ``uniform`` — the documented uniform prior: a fixed finite
     estimate (default 1.0 — "one expected binding tuple", the least
     informative answer that still lets an optimizer pick a plan).

Every answer is an :class:`EstimateResponse` envelope naming the tier
that produced it, the request latency, and one warning per degradation
step, so callers can monitor fallback rates.  A tier's answer is only
accepted when it is finite and non-negative — NaN, ±inf, or a negative
estimate (the signature of corrupted counts) is treated as a tier
failure, never returned to the caller.

The service never raises for estimation failures; only caller mistakes
(unknown sketch name, invalid registration) raise
:class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..baselines import CorrelatedSuffixTree, CSTEstimator
from ..errors import (
    EstimationError,
    ReproError,
    ServiceError,
    SynopsisIntegrityError,
)
from ..estimation import BatchContext, PathEstimator, TwigEstimator
from ..obs import explain as _explain
from ..obs.explain import ExplainRecorder
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.tracing import NULL_TRACER, SpanTracer
from ..query.ast import Path, TwigQuery
from ..resilience import Budget
from ..synopsis import load_sketch, raise_on_violations, validate_sketch
from ..synopsis.summary import TwigXSketch
from .circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker

TIER_TWIG = "twig"
TIER_PATH = "path"
TIER_CST = "cst"
TIER_UNIFORM = "uniform"

#: the degradation order; ``uniform`` is terminal and cannot fail
FALLBACK_TIERS = (TIER_TWIG, TIER_PATH, TIER_CST)

#: the documented uniform prior: one expected binding tuple
DEFAULT_UNIFORM_PRIOR = 1.0


class _TierUnavailable(Exception):
    """A tier cannot run for this entry (e.g. no baseline registered).

    Internal control flow only: the cascade records a warning and moves
    on *without* charging the circuit breaker — unavailability is a
    configuration fact, not a failure."""


@dataclass(frozen=True)
class EstimateResponse:
    """The response envelope of one :meth:`EstimatorService.estimate`.

    Attributes:
        estimate: the selectivity estimate; always finite and >= 0.
        source: the tier that produced it (``twig``/``path``/``cst``/
            ``uniform``).
        sketch: the registered sketch name the request addressed.
        latency: wall-clock seconds spent serving the request.
        warnings: one entry per degradation event (tier failure, circuit
            skip, deadline exhaustion, chain collapse), in order.
    """

    estimate: float
    source: str
    sketch: str
    latency: float
    warnings: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when a fallback tier (not ``twig``) answered."""
        return self.source != TIER_TWIG


@dataclass
class _Entry:
    """One registered sketch with its per-tier circuit breakers."""

    name: str
    sketch: TwigXSketch
    baseline: Optional[CSTEstimator]
    breakers: dict[str, CircuitBreaker] = field(default_factory=dict)


@dataclass
class _BatchState:
    """Shared estimator state for one :meth:`EstimatorService.submit_batch`.

    The twig estimator carries a :class:`BatchContext`, so queries in the
    batch share embedding plans and memoized subtree factors; the path
    estimator is likewise built once instead of per query.  Answers stay
    bit-identical to per-query :meth:`~EstimatorService.estimate` — the
    caches memoize pure functions of the query plan.
    """

    estimator: TwigEstimator
    context: BatchContext
    path: PathEstimator


def _primary_chain(query: TwigQuery) -> tuple[Path, bool]:
    """Flatten a twig to its primary chain (root, then first children).

    Returns the chain and whether branching siblings were dropped — the
    degraded path tier estimates the chain only, which over-counts when
    sibling subtrees would have filtered matches.
    """
    steps = []
    node = query.root
    collapsed = False
    while node is not None:
        steps.extend(node.path.steps)
        if len(node.children) > 1:
            collapsed = True
        node = node.children[0] if node.children else None
    return Path(tuple(steps)), collapsed


class EstimatorService:
    """A thread-safe registry of validated sketches behind a
    never-failing estimate call.

    Args:
        failure_threshold: consecutive tier failures that open that
            tier's circuit (see :class:`~repro.serve.circuit.CircuitBreaker`).
        cooldown: seconds an open circuit waits before a probe.
        uniform_prior: the terminal tier's estimate; must be finite and
            non-negative.
        max_embeddings: embedding cap handed to the twig estimator —
            bounds per-request work even without a deadline.
        clock: monotonic time source (override in tests).
        metrics: registry serving metrics are recorded into — request/
            failure/degradation counters, per-tier latency histograms,
            and live circuit-breaker state gauges (default: the
            process-global registry).
        tracer: span tracer wrapping each request and tier attempt
            (default: the disabled no-op tracer).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        uniform_prior: float = DEFAULT_UNIFORM_PRIOR,
        max_embeddings: int = 4096,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        if not math.isfinite(uniform_prior) or uniform_prior < 0:
            raise ServiceError(
                f"uniform_prior must be finite and non-negative, "
                f"got {uniform_prior!r}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.uniform_prior = float(uniform_prior)
        self.max_embeddings = max_embeddings
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: dict[str, _Entry] = {}
        registry = metrics if metrics is not None else default_registry()
        self.metrics = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._requests = registry.counter(
            "serve_requests_total",
            "estimate requests answered, by sketch and answering tier",
            ["sketch", "tier"],
        )
        self._tier_failures = registry.counter(
            "serve_tier_failures_total",
            "tier attempts that failed (breaker-charged)",
            ["sketch", "tier"],
        )
        self._circuit_skips = registry.counter(
            "serve_circuit_skips_total",
            "tier attempts skipped because the circuit was open",
            ["sketch", "tier"],
        )
        self._deadline_hits = registry.counter(
            "serve_deadline_total",
            "requests whose deadline expired before all tiers ran",
            ["sketch"],
        )
        self._degraded_counter = registry.counter(
            "serve_degraded_total",
            "requests answered by a fallback tier (not twig)",
            ["sketch"],
        )
        self._warnings_counter = registry.counter(
            "serve_warnings_total",
            "degradation warnings attached to responses",
            ["sketch"],
        )
        self._latency = registry.histogram(
            "serve_request_seconds",
            "request latency, by sketch and answering tier",
            ["sketch", "tier"],
        )
        self._breaker_gauge = registry.gauge(
            "serve_breaker_state",
            "circuit-breaker state per (sketch, tier); the current "
            "state's series is 1, the other two 0",
            ["sketch", "tier", "state"],
        )

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        sketch: Optional[TwigXSketch] = None,
        *,
        path=None,
        baseline=None,
        validate: bool = True,
        replace: bool = False,
    ) -> None:
        """Register a sketch under ``name``.

        Args:
            name: the handle :meth:`estimate` addresses.
            sketch: an in-memory synopsis, or
            path: a file to :func:`~repro.synopsis.persist.load_sketch`
                (exactly one of the two).
            baseline: an optional :class:`CSTEstimator` (or a
                :class:`CorrelatedSuffixTree`, wrapped automatically)
                enabling the ``cst`` fallback tier.
            validate: run the invariant checker before accepting the
                sketch (strict load for files); pass False to serve a
                known-degraded sketch behind the cascade.
            replace: allow overwriting an existing registration.

        Raises:
            ServiceError: bad arguments or duplicate name.
            SynopsisIntegrityError: the sketch (or file) failed
                validation.
        """
        if not isinstance(name, str) or not name:
            raise ServiceError(f"sketch name must be non-empty, got {name!r}")
        if (sketch is None) == (path is None):
            raise ServiceError(
                "register() takes exactly one of sketch= or path="
            )
        if sketch is None:
            sketch = load_sketch(path, strict=validate)
        elif validate:
            try:
                violations = validate_sketch(sketch)
            except SynopsisIntegrityError:
                raise
            except ReproError as exc:
                # The checker itself blew up on the sketch's structure:
                # that is an integrity failure, reported as one.
                raise SynopsisIntegrityError(
                    f"sketch {name!r} cannot be validated: {exc}"
                ) from exc
            raise_on_violations(violations, source=f"sketch {name!r}")
        if isinstance(baseline, CorrelatedSuffixTree):
            baseline = CSTEstimator(baseline)
        entry = _Entry(name, sketch, baseline)
        for tier in FALLBACK_TIERS:
            entry.breakers[tier] = CircuitBreaker(
                self.failure_threshold, self.cooldown, clock=self._clock
            )
        with self._lock:
            if name in self._entries and not replace:
                raise ServiceError(
                    f"sketch {name!r} is already registered "
                    f"(pass replace=True to overwrite)"
                )
            self._entries[name] = entry
        self._sync_breaker_gauges(
            name, {tier: b.state for tier, b in entry.breakers.items()}
        )

    def unregister(self, name: str) -> None:
        """Remove a registered sketch; unknown names raise."""
        with self._lock:
            if name not in self._entries:
                raise ServiceError(f"no sketch registered as {name!r}")
            del self._entries[name]

    def names(self) -> list[str]:
        """The registered sketch names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def sketch(self, name: str) -> TwigXSketch:
        """The registered synopsis behind ``name``."""
        return self._entry(name).sketch

    def breaker_states(self, name: str) -> dict[str, str]:
        """Current circuit state per tier (monitoring hook).

        Also refreshes the ``serve_breaker_state`` gauges, so polling
        this (or the registry snapshot) always sees live states.
        """
        entry = self._entry(name)
        states = {tier: b.state for tier, b in entry.breakers.items()}
        self._sync_breaker_gauges(name, states)
        return states

    def _sync_breaker_gauges(
        self, name: str, states: dict[str, str]
    ) -> None:
        """Mirror breaker states into the registry: current state 1,
        the other two 0 (the Prometheus state-set idiom)."""
        for tier, current in states.items():
            for state in (CLOSED, OPEN, HALF_OPEN):
                self._breaker_gauge.set(
                    1.0 if state == current else 0.0,
                    sketch=name,
                    tier=tier,
                    state=state,
                )

    def _entry(self, name: str) -> _Entry:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise ServiceError(
                    f"no sketch registered as {name!r} "
                    f"(registered: {sorted(self._entries) or 'none'})"
                ) from None

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def estimate(
        self,
        name: str,
        query: TwigQuery,
        *,
        deadline: Optional[float] = None,
        explain: Optional[ExplainRecorder] = None,
    ) -> EstimateResponse:
        """Estimate ``query`` over the sketch registered as ``name``.

        Never raises for estimation failures: the cascade degrades tier
        by tier and terminates at the uniform prior.  The returned
        estimate is always finite and non-negative.

        Args:
            deadline: optional per-request wall-clock budget in seconds;
                when exhausted, remaining tiers are skipped.
            explain: optional recorder — captures every tier attempt and
                the chosen tier's full estimation trail.

        Raises:
            ServiceError: unknown sketch name or invalid deadline.
        """
        entry = self._entry(name)
        if deadline is not None and deadline <= 0:
            raise ServiceError(
                f"deadline must be positive, got {deadline!r}"
            )
        with self.tracer.span("serve.request", sketch=name) as request_span:
            response = self._estimate_cascade(
                entry, name, query, deadline, explain
            )
            request_span.annotate(
                tier=response.source,
                estimate=response.estimate,
                warnings=len(response.warnings),
            )
        self._finish(name, entry, response)
        return response

    def submit_batch(
        self,
        name: str,
        queries,
        *,
        deadline: Optional[float] = None,
    ) -> list[EstimateResponse]:
        """Estimate a batch of queries; one response per query, in order.

        Answers are bit-identical to per-query :meth:`estimate` but the
        batch shares one twig estimator (with a
        :class:`~repro.estimation.BatchContext` — common embedding plans
        and subtree factors are computed once) and one path estimator.
        Degradation, circuit breakers, and metrics behave exactly as for
        individual requests; ``deadline`` applies *per query*.

        Raises:
            ServiceError: unknown sketch name or invalid deadline.
        """
        entry = self._entry(name)
        if deadline is not None and deadline <= 0:
            raise ServiceError(
                f"deadline must be positive, got {deadline!r}"
            )
        queries = list(queries)
        batch = _BatchState(
            TwigEstimator(
                entry.sketch,
                max_embeddings=self.max_embeddings,
                metrics=self.metrics,
            ),
            BatchContext(),
            PathEstimator(entry.sketch, metrics=self.metrics),
        )
        responses = []
        with self.tracer.span(
            "serve.batch", sketch=name, queries=len(queries)
        ):
            for query in queries:
                with self.tracer.span(
                    "serve.request", sketch=name
                ) as request_span:
                    response = self._estimate_cascade(
                        entry, name, query, deadline, None, batch=batch
                    )
                    request_span.annotate(
                        tier=response.source,
                        estimate=response.estimate,
                        warnings=len(response.warnings),
                    )
                self._finish(name, entry, response)
                responses.append(response)
        return responses

    def _finish(
        self, name: str, entry: _Entry, response: EstimateResponse
    ) -> None:
        """Per-response metrics bookkeeping shared by single and batch."""
        self._requests.inc(sketch=name, tier=response.source)
        self._latency.observe(
            response.latency, sketch=name, tier=response.source
        )
        if response.degraded:
            self._degraded_counter.inc(sketch=name)
        if response.warnings:
            self._warnings_counter.inc(len(response.warnings), sketch=name)
        self._sync_breaker_gauges(
            name, {tier: b.state for tier, b in entry.breakers.items()}
        )

    def _estimate_cascade(
        self,
        entry: _Entry,
        name: str,
        query: TwigQuery,
        deadline: Optional[float],
        explain: Optional[ExplainRecorder],
        batch: Optional[_BatchState] = None,
    ) -> EstimateResponse:
        budget = Budget(deadline=deadline, clock=self._clock)
        warnings: list[str] = []
        for tier in FALLBACK_TIERS:
            if budget.expired():
                warnings.append(
                    f"deadline of {deadline:g}s exhausted before the "
                    f"{tier} tier"
                )
                self._deadline_hits.inc(sketch=name)
                if explain is not None:
                    explain.record(
                        _explain.KIND_TIER, tier, "skipped: deadline expired"
                    )
                break
            breaker = entry.breakers[tier]
            if not breaker.allow():
                warnings.append(f"{tier} tier skipped: circuit open")
                self._circuit_skips.inc(sketch=name, tier=tier)
                if explain is not None:
                    explain.record(
                        _explain.KIND_TIER, tier, "skipped: circuit open"
                    )
                continue
            try:
                with self.tracer.span("serve.tier", sketch=name, tier=tier):
                    value = self._run_tier(
                        entry, tier, query, warnings, explain, batch
                    )
                    value = self._accept(value, tier)
            except _TierUnavailable as skip:
                # Configuration fact, not a failure: the breaker is not
                # charged (an unavailable tier can never have opened it).
                warnings.append(str(skip))
                if explain is not None:
                    explain.record(_explain.KIND_TIER, tier, str(skip))
                continue
            except Exception as exc:  # service boundary: degrade, never raise
                breaker.record_failure()
                warnings.append(
                    f"{tier} tier failed: {type(exc).__name__}: {exc}"
                )
                self._tier_failures.inc(sketch=name, tier=tier)
                if explain is not None:
                    explain.record(
                        _explain.KIND_TIER,
                        tier,
                        f"failed: {type(exc).__name__}",
                    )
                continue
            breaker.record_success()
            if explain is not None:
                explain.record(
                    _explain.KIND_TIER, tier, "answered", value
                )
            return EstimateResponse(
                value, tier, name, budget.elapsed(), tuple(warnings)
            )
        warnings.append(
            f"all estimation tiers degraded; serving the uniform prior "
            f"({self.uniform_prior:g})"
        )
        if explain is not None:
            explain.record(
                _explain.KIND_TIER,
                TIER_UNIFORM,
                "terminal uniform prior",
                self.uniform_prior,
            )
        return EstimateResponse(
            self.uniform_prior,
            TIER_UNIFORM,
            name,
            budget.elapsed(),
            tuple(warnings),
        )

    # ------------------------------------------------------------------
    def _run_tier(
        self,
        entry: _Entry,
        tier: str,
        query: TwigQuery,
        warnings: list[str],
        explain: Optional[ExplainRecorder] = None,
        batch: Optional[_BatchState] = None,
    ) -> float:
        if tier == TIER_TWIG:
            if batch is not None:
                return batch.estimator.estimate_many(
                    [query], context=batch.context
                )[0]
            return TwigEstimator(
                entry.sketch,
                max_embeddings=self.max_embeddings,
                metrics=self.metrics,
                explain=explain,
            ).estimate(query)
        if tier == TIER_PATH:
            chain, collapsed = _primary_chain(query)
            if collapsed:
                warnings.append(
                    "path tier collapsed branching siblings to the "
                    "primary chain"
                )
            if batch is not None:
                return batch.path.estimate(chain)
            return PathEstimator(
                entry.sketch, metrics=self.metrics, explain=explain
            ).estimate(chain)
        if tier == TIER_CST:
            if entry.baseline is None:
                raise _TierUnavailable(
                    "cst tier unavailable: no baseline registered for "
                    f"{entry.name!r}"
                )
            return entry.baseline.estimate(query)
        raise ServiceError(f"unknown tier {tier!r}")  # pragma: no cover

    @staticmethod
    def _accept(value: float, tier: str) -> float:
        """Gate a tier's answer: finite and non-negative, or it failed."""
        value = float(value)
        if not math.isfinite(value) or value < 0:
            raise EstimationError(
                f"{tier} tier produced an unusable estimate {value!r} "
                f"(corrupted statistics?)"
            )
        return value
