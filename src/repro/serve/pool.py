"""A queued worker-pool front-end over :class:`EstimatorService`.

:class:`ServePool` closes the ROADMAP's async-server item: a bounded
request queue drained by N worker threads, an :mod:`asyncio` adapter,
and explicit load-shedding instead of unbounded latency growth.

Threads — not processes — are the right execution vehicle here: the
cascade's circuit breakers and metrics are shared mutable state that
every request must observe (a process pool would give each worker its
own breakers, silently disabling the trip logic), the service is already
thread-safe, and per-request work is bounded by ``max_embeddings``.
Process-level parallelism for bulk estimation lives in
:func:`repro.parallel.parallel_estimate_many`.

Backpressure contract:

* :meth:`submit` returns a :class:`concurrent.futures.Future`
  immediately; when the queue is full the request is **shed** — the
  future resolves right away to a uniform-prior
  :class:`~repro.serve.service.EstimateResponse` with source
  ``uniform`` and a ``"shed: queue full"`` warning, so callers degrade
  exactly the way the cascade itself degrades instead of raising.
* a queued request whose ``deadline`` fully elapses before a worker
  picks it up is likewise shed (``"shed: deadline expired in queue"``)
  without touching the estimator tiers.
* :meth:`estimate_async` wraps the future for ``await``-ing from an
  asyncio event loop; :meth:`submit_batch` queues one batch task that
  runs through :meth:`EstimatorService.submit_batch` (shared plan/memo
  caches) and resolves to the full response list.

Metrics (into the service's registry): ``serve_pool_requests_total``
by outcome (``ok``/``shed``/``error``), ``serve_pool_queue_depth``,
and a ``serve_pool_wait_seconds`` histogram of time spent queued.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Optional

from ..errors import ServiceError
from ..query.ast import TwigQuery
from .service import TIER_UNIFORM, EstimateResponse, EstimatorService

__all__ = ["ServePool"]

#: seconds a worker blocks on the queue before re-checking shutdown
_POLL_SECONDS = 0.1


class _Task:
    """One queued request: inputs, its future, and its queue deadline."""

    __slots__ = ("name", "queries", "batch", "deadline", "future", "enqueued")

    def __init__(self, name, queries, batch, deadline, enqueued):
        self.name = name
        self.queries = queries
        self.batch = batch
        self.deadline = deadline
        self.future: Future = Future()
        self.enqueued = enqueued


class ServePool:
    """N worker threads draining a bounded queue of estimate requests.

    Args:
        service: the :class:`EstimatorService` requests run against.
        workers: worker-thread count.
        max_queue: queued-request cap; submissions beyond it are shed
            to the service's uniform prior.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        service: EstimatorService,
        *,
        workers: int = 2,
        max_queue: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {max_queue}")
        self.service = service
        self.workers = workers
        self._clock = clock
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._closed = threading.Event()
        registry = service.metrics
        self._pool_requests = registry.counter(
            "serve_pool_requests_total",
            "pool submissions, by outcome",
            ["outcome"],
        )
        self._depth_gauge = registry.gauge(
            "serve_pool_queue_depth", "requests currently queued"
        )
        self._shed_counter = registry.counter(
            "serve_pool_shed_total",
            "requests shed, by reason",
            ["reason"],
        )
        self._wait_seconds = registry.histogram(
            "serve_pool_wait_seconds",
            "seconds a request spent queued before a worker picked it up",
        )
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"serve-pool-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        query: TwigQuery,
        *,
        deadline: Optional[float] = None,
    ) -> Future:
        """Queue one estimate; the future resolves to an
        :class:`EstimateResponse` (shed responses included — the future
        never carries an exception for load or estimation failures)."""
        return self._enqueue(name, [query], batch=False, deadline=deadline)

    def submit_batch(
        self,
        name: str,
        queries,
        *,
        deadline: Optional[float] = None,
    ) -> Future:
        """Queue a batch; the future resolves to a list of
        :class:`EstimateResponse`, one per query in order, computed
        through the service's shared batch caches."""
        return self._enqueue(
            name, list(queries), batch=True, deadline=deadline
        )

    async def estimate_async(
        self,
        name: str,
        query: TwigQuery,
        *,
        deadline: Optional[float] = None,
    ) -> EstimateResponse:
        """``await``-able :meth:`submit` for asyncio callers."""
        return await asyncio.wrap_future(
            self.submit(name, query, deadline=deadline)
        )

    def _enqueue(self, name, queries, batch, deadline) -> Future:
        if self._closed.is_set():
            raise ServiceError("the serve pool is closed")
        # fail fast on an unknown sketch: a misaddressed request is a
        # caller bug, not load, so it raises instead of shedding
        self.service.sketch(name)
        if deadline is not None and deadline <= 0:
            raise ServiceError(
                f"deadline must be positive, got {deadline!r}"
            )
        task = _Task(name, queries, batch, deadline, self._clock())
        try:
            self._queue.put_nowait(task)
        except queue.Full:
            self._shed(task, "queue_full", "shed: queue full")
            return task.future
        self._depth_gauge.set(self._queue.qsize())
        return task.future

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            try:
                task = self._queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            self._depth_gauge.set(self._queue.qsize())
            waited = self._clock() - task.enqueued
            self._wait_seconds.observe(waited)
            remaining = task.deadline
            if remaining is not None:
                remaining -= waited
                if remaining <= 0:
                    self._shed(
                        task, "deadline", "shed: deadline expired in queue"
                    )
                    continue
            try:
                if task.batch:
                    result = self.service.submit_batch(
                        task.name, task.queries, deadline=remaining
                    )
                else:
                    result = self.service.estimate(
                        task.name, task.queries[0], deadline=remaining
                    )
            except BaseException as exc:
                self._pool_requests.inc(outcome="error")
                task.future.set_exception(exc)
                continue
            self._pool_requests.inc(outcome="ok")
            task.future.set_result(result)

    def _shed(self, task: _Task, reason: str, message: str) -> None:
        """Resolve a request to the uniform prior without running tiers."""
        self._shed_counter.inc(reason=reason)
        self._pool_requests.inc(outcome="shed")
        responses = [
            EstimateResponse(
                self.service.uniform_prior,
                TIER_UNIFORM,
                task.name,
                0.0,
                (message,),
            )
            for _ in task.queries
        ]
        task.future.set_result(responses if task.batch else responses[0])

    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting work; drain the queue, then stop the workers."""
        if self._closed.is_set():
            return
        self._closed.set()
        if wait:
            for thread in self._threads:
                thread.join()
        self._depth_gauge.set(0)

    def __enter__(self) -> "ServePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
