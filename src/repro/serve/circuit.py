"""A thread-safe circuit breaker for estimation tiers.

A sketch whose statistics are corrupt does not fail once — it fails on
every request, and each failure burns a full (possibly expensive) twig
expansion before the service falls back.  The breaker converts *repeated*
failures into an explicit open state: after ``failure_threshold``
consecutive failures the tier is skipped outright, and after ``cooldown``
seconds a single probe request is let through (half-open); its outcome
decides between closing the circuit and re-opening it.

The breaker is deliberately tiny and lock-per-instance:
:class:`~repro.serve.service.EstimatorService` keeps one breaker per
(registered sketch, tier) pair, so an unhealthy twig tier does not take
the path tier down with it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..errors import ServiceError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trip after consecutive failures; recover through a single probe.

    Args:
        failure_threshold: consecutive failures that open the circuit.
        cooldown: seconds the circuit stays open before allowing a probe.
        clock: monotonic time source (override in tests).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ServiceError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if cooldown <= 0:
            raise ServiceError(f"cooldown must be positive, got {cooldown!r}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """True when a request may run through this tier right now."""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock() - self._opened_at < self.cooldown:
                return False
            # Half-open: exactly one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        """A request served by this tier succeeded: close the circuit."""
        with self._lock:
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """A request failed: count it, and (re)open past the threshold."""
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if self._consecutive_failures >= self.failure_threshold:
                self._opened_at = self._clock()

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """:data:`CLOSED`, :data:`OPEN`, or :data:`HALF_OPEN`."""
        with self._lock:
            if self._opened_at is None:
                return CLOSED
            if self._clock() - self._opened_at >= self.cooldown:
                return HALF_OPEN
            return OPEN

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CircuitBreaker {self.state} "
            f"failures={self._consecutive_failures}"
            f"/{self.failure_threshold}>"
        )
