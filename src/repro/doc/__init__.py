"""Document substrate: the XML data tree of the paper's Section 2.

Public surface:

* :class:`DocumentNode`, :class:`DocumentTree`, :func:`build_tree` — the tree
  model;
* :func:`parse_string`, :func:`parse_file` — XML → tree;
* :func:`serialize`, :func:`write_file`, :func:`text_size_bytes` — tree → XML;
* :class:`DocumentIndex` — per-tag / per-path lookups;
* :func:`document_stats`, :class:`DocumentStats` — Table 1 characteristics.
"""

from .index import DocumentIndex
from .node import ATTRIBUTE_PREFIX, DocumentNode, Value
from .parser import TEXT_TAG, coerce_value, parse_file, parse_string
from .serializer import serialize, text_size_bytes, write_file
from .stats import DocumentStats, document_stats
from .tree import DocumentTree, build_tree, subtree_size

__all__ = [
    "ATTRIBUTE_PREFIX",
    "TEXT_TAG",
    "DocumentIndex",
    "DocumentNode",
    "DocumentStats",
    "DocumentTree",
    "Value",
    "build_tree",
    "coerce_value",
    "document_stats",
    "parse_file",
    "parse_string",
    "serialize",
    "subtree_size",
    "text_size_bytes",
    "write_file",
]
