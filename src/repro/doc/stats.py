"""Summary statistics for document trees (Table 1 inputs)."""

from __future__ import annotations

from dataclasses import dataclass

from .serializer import text_size_bytes
from .tree import DocumentTree


@dataclass(frozen=True)
class DocumentStats:
    """Characteristics of a data set, as reported in the paper's Table 1.

    Attributes:
        name: data-set name.
        element_count: number of nodes in the document tree.
        text_size_mb: size of the serialized XML text in megabytes.
        distinct_tags: number of distinct element tags.
        max_depth: depth of the deepest element.
        avg_fanout: mean number of children over internal (non-leaf) nodes.
    """

    name: str
    element_count: int
    text_size_mb: float
    distinct_tags: int
    max_depth: int
    avg_fanout: float


def document_stats(tree: DocumentTree) -> DocumentStats:
    """Compute :class:`DocumentStats` for ``tree`` (one full pass + text)."""
    internal = 0
    child_edges = 0
    for node in tree.iter_nodes():
        if node.children:
            internal += 1
            child_edges += len(node.children)
    return DocumentStats(
        name=tree.name,
        element_count=tree.element_count,
        text_size_mb=text_size_bytes(tree) / (1024.0 * 1024.0),
        distinct_tags=len(tree.tags),
        max_depth=tree.max_depth(),
        avg_fanout=(child_edges / internal) if internal else 0.0,
    )
