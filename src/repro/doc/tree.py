"""The XML data tree ``T(V, E)`` of the paper's Section 2.

A :class:`DocumentTree` wraps a root :class:`~repro.doc.node.DocumentNode`
and maintains the derived structures the rest of the library needs
constantly: stable node ids, per-tag extents, and summary counts.  Trees are
conceptually immutable once frozen — all generators and parsers finish by
calling :meth:`DocumentTree.freeze` (done automatically by the constructor
unless ``freeze=False``), and mutation afterwards is a usage error.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from ..errors import DocumentError
from .node import DocumentNode


class DocumentTree:
    """A rooted, node-labelled XML document tree.

    Args:
        root: the document root element.
        name: optional human-readable name (data-set name, file name, ...).
        freeze: assign node ids and build tag extents immediately.

    Raises:
        DocumentError: if the structure under ``root`` is not a tree
            (a cycle or a shared child would surface as an id clash or an
            inconsistent parent pointer).
    """

    def __init__(self, root: DocumentNode, name: str = "", freeze: bool = True):
        if root.parent is not None:
            raise DocumentError("document root must not have a parent")
        self.root = root
        self.name = name
        self._nodes: list[DocumentNode] = []
        self._extents: dict[str, list[DocumentNode]] = {}
        self._frozen = False
        if freeze:
            self.freeze()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def freeze(self) -> "DocumentTree":
        """Assign pre-order node ids and build per-tag extents.

        Idempotent; returns ``self`` for chaining.
        """
        if self._frozen:
            return self
        nodes: list[DocumentNode] = []
        extents: dict[str, list[DocumentNode]] = {}
        seen: set[int] = set()
        for node in self.root.iter_subtree():
            if id(node) in seen:
                raise DocumentError("document graph is not a tree (shared node)")
            seen.add(id(node))
            node.node_id = len(nodes)
            nodes.append(node)
            extents.setdefault(node.tag, []).append(node)
        self._nodes = nodes
        self._extents = extents
        self._frozen = True
        return self

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise DocumentError("document tree must be frozen first")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def element_count(self) -> int:
        """Total number of nodes in the tree (the paper's "Element Count")."""
        self._require_frozen()
        return len(self._nodes)

    @property
    def tags(self) -> list[str]:
        """All distinct tags, in first-appearance (document) order."""
        self._require_frozen()
        return list(self._extents)

    def nodes(self) -> list[DocumentNode]:
        """All nodes in pre-order; index in this list == ``node_id``."""
        self._require_frozen()
        return self._nodes

    def node_by_id(self, node_id: int) -> DocumentNode:
        """Return the node with the given id."""
        self._require_frozen()
        try:
            return self._nodes[node_id]
        except IndexError:
            raise DocumentError(f"no node with id {node_id}") from None

    def extent(self, tag: str) -> list[DocumentNode]:
        """All nodes with tag ``tag`` (document order); empty list if none."""
        self._require_frozen()
        return self._extents.get(tag, [])

    def tag_counts(self) -> Counter:
        """Multiset of tags — how many elements carry each tag."""
        self._require_frozen()
        return Counter({tag: len(nodes) for tag, nodes in self._extents.items()})

    def iter_nodes(self) -> Iterator[DocumentNode]:
        """Iterate all nodes in pre-order."""
        self._require_frozen()
        return iter(self._nodes)

    def iter_edges(self) -> Iterator[tuple[DocumentNode, DocumentNode]]:
        """Iterate all (parent, child) containment edges."""
        self._require_frozen()
        for node in self._nodes:
            for child in node.children:
                yield node, child

    def max_depth(self) -> int:
        """Depth of the deepest node (root is depth 0)."""
        self._require_frozen()
        best = 0
        stack: list[tuple[DocumentNode, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            if depth > best:
                best = depth
            stack.extend((child, depth + 1) for child in node.children)
        return best

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`DocumentError` if broken.

        Verified invariants: parent pointers match child lists, node ids are
        a 0..n-1 pre-order numbering, extents partition the node set.
        """
        self._require_frozen()
        total = 0
        for expected_id, node in enumerate(self._nodes):
            if node.node_id != expected_id:
                raise DocumentError(
                    f"node id mismatch: stored {node.node_id}, position {expected_id}"
                )
            for child in node.children:
                if child.parent is not node:
                    raise DocumentError(
                        f"child <{child.tag}> of <{node.tag}> has wrong parent pointer"
                    )
        for tag, nodes in self._extents.items():
            for node in nodes:
                if node.tag != tag:
                    raise DocumentError(f"extent {tag!r} contains <{node.tag}>")
            total += len(nodes)
        if total != len(self._nodes):
            raise DocumentError(
                f"extents cover {total} nodes, tree has {len(self._nodes)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.root.tag
        size = len(self._nodes) if self._frozen else "?"
        return f"<DocumentTree {label!r} nodes={size}>"


def subtree_size(node: DocumentNode) -> int:
    """Number of nodes in the subtree rooted at ``node`` (including it)."""
    return sum(1 for _ in node.iter_subtree())


def build_tree(spec, name: str = "") -> DocumentTree:
    """Build a :class:`DocumentTree` from a nested-tuple specification.

    A spec is ``(tag, value, [child_spec, ...])`` or the shorthand
    ``(tag, [children])`` / ``tag`` for value-less nodes.  Intended for
    tests and small hand-written documents (e.g. the paper's Figure 1)::

        build_tree(("a", [("b", 1, []), "c"]))

    Returns:
        A frozen :class:`DocumentTree`.
    """

    def make(node_spec) -> DocumentNode:
        if isinstance(node_spec, str):
            return DocumentNode(node_spec)
        if not isinstance(node_spec, tuple):
            raise DocumentError(f"bad tree spec entry: {node_spec!r}")
        if len(node_spec) == 3:
            tag, value, children = node_spec
        elif len(node_spec) == 2:
            tag, second = node_spec
            if isinstance(second, list):
                value, children = None, second
            else:
                value, children = second, []
        elif len(node_spec) == 1:
            tag, value, children = node_spec[0], None, []
        else:
            raise DocumentError(f"bad tree spec entry: {node_spec!r}")
        node = DocumentNode(tag, value)
        for child_spec in children:
            node.add_child(make(child_spec))
        return node

    return DocumentTree(make(spec), name=name)
