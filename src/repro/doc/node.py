"""Document nodes: the vertices of the XML data tree.

Following the paper's data model (Section 2), an XML document is a tree
``T(V, E)`` where each node corresponds to an element, attribute, or value,
and an edge represents containment.  This module defines the single node
class used throughout the library.

Attributes are modelled as child nodes whose tag is prefixed with ``@`` so
that the rest of the system (synopses, queries, estimation) treats elements
and attributes uniformly, exactly as the graph-synopsis model does.  Text
values are stored on the node itself (``value``) rather than as separate
value vertices; this matches the paper's own simplification ("we assume that
leaf elements contain values").
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

#: Type of a leaf value carried by a node.  The paper's experiments use
#: integer values (year ranges) and the CST comparison uses string values;
#: both are supported.
Value = Union[int, float, str]

ATTRIBUTE_PREFIX = "@"


class DocumentNode:
    """One element (or attribute) of a document tree.

    The node owns its list of children; parent pointers are maintained by
    :meth:`add_child`.  Node identity is by object; ``node_id`` is a stable
    integer assigned by the owning :class:`~repro.doc.tree.DocumentTree`
    (``-1`` until the node is attached to a tree).
    """

    __slots__ = ("tag", "value", "parent", "children", "node_id")

    def __init__(self, tag: str, value: Optional[Value] = None):
        if not tag:
            raise ValueError("node tag must be a non-empty string")
        self.tag = tag
        self.value = value
        self.parent: Optional[DocumentNode] = None
        self.children: list[DocumentNode] = []
        self.node_id: int = -1

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def add_child(self, child: "DocumentNode") -> "DocumentNode":
        """Attach ``child`` under this node and return the child.

        Raises:
            ValueError: if the child already has a parent (re-parenting is
                not supported; detach explicitly first).
        """
        if child.parent is not None:
            raise ValueError(
                f"node <{child.tag}> already has a parent <{child.parent.tag}>"
            )
        child.parent = self
        self.children.append(child)
        return child

    def new_child(self, tag: str, value: Optional[Value] = None) -> "DocumentNode":
        """Create a node with ``tag``/``value`` and attach it as a child."""
        return self.add_child(DocumentNode(tag, value))

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children

    @property
    def is_attribute(self) -> bool:
        """True when the node models an XML attribute (tag begins with @)."""
        return self.tag.startswith(ATTRIBUTE_PREFIX)

    @property
    def depth(self) -> int:
        """Number of edges from the root to this node (root depth is 0)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def iter_subtree(self) -> Iterator["DocumentNode"]:
        """Yield this node and all descendants, pre-order, iteratively."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            # reversed() keeps document order in the pre-order output
            stack.extend(reversed(node.children))

    def iter_descendants(self) -> Iterator["DocumentNode"]:
        """Yield all proper descendants of this node, pre-order."""
        it = self.iter_subtree()
        next(it)  # skip self
        return it

    def iter_ancestors(self) -> Iterator["DocumentNode"]:
        """Yield proper ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def children_with_tag(self, tag: str) -> list["DocumentNode"]:
        """Return the children whose tag equals ``tag`` (document order)."""
        return [child for child in self.children if child.tag == tag]

    def child_count(self, tag: str) -> int:
        """Number of children with tag ``tag``."""
        return sum(1 for child in self.children if child.tag == tag)

    def label_path(self) -> tuple[str, ...]:
        """The root-to-node sequence of tags, e.g. ``('site', 'people',
        'person')``.  Used by path indexes and the CST baseline."""
        tags = [self.tag]
        tags.extend(anc.tag for anc in self.iter_ancestors())
        tags.reverse()
        return tuple(tags)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = f"={self.value!r}" if self.value is not None else ""
        return f"<DocumentNode #{self.node_id} {self.tag}{suffix}>"
