"""Parse XML text into :class:`~repro.doc.tree.DocumentTree`.

The environment has no ``lxml``; we build on the standard library's
``xml.etree.ElementTree``, which is entirely sufficient for the data model
of the paper (elements, attributes, text values — no namespaces needed,
though namespaced tags are preserved verbatim).

Conversion rules (mirroring :mod:`repro.doc.node`):

* each XML element becomes a node with the element's tag;
* each XML attribute ``k="v"`` becomes a child node tagged ``@k`` carrying
  value ``v``;
* element text that is non-whitespace becomes the node's ``value`` when the
  element is a leaf, and a child node tagged ``#text`` otherwise (mixed
  content);
* values that look like integers/floats are converted to numbers so that
  the paper's range predicates ("year > 2000") work out of the box.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional, Union

from ..errors import ParseError
from .node import DocumentNode, Value
from .tree import DocumentTree

TEXT_TAG = "#text"


def coerce_value(text: str) -> Value:
    """Convert raw text to int/float when it cleanly parses, else keep str."""
    stripped = text.strip()
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        return stripped


def _convert(element: ET.Element) -> DocumentNode:
    node = DocumentNode(element.tag)
    for key in sorted(element.attrib):
        node.new_child(f"@{key}", coerce_value(element.attrib[key]))
    text = (element.text or "").strip()
    has_children = len(element) > 0
    if text:
        if has_children or element.attrib:
            node.new_child(TEXT_TAG, coerce_value(text))
        else:
            node.value = coerce_value(text)
    for child in element:
        node.add_child(_convert(child))
        tail = (child.tail or "").strip()
        if tail:
            node.new_child(TEXT_TAG, coerce_value(tail))
    return node


def parse_string(text: Union[str, bytes], name: str = "") -> DocumentTree:
    """Parse an XML string into a frozen :class:`DocumentTree`.

    Raises:
        ParseError: when the text is not well-formed XML.
    """
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        snippet = text if isinstance(text, str) else text.decode("utf8", "replace")
        raise ParseError(f"malformed XML: {exc}", text=snippet) from exc
    return DocumentTree(_convert(element), name=name)


def parse_file(path, name: Optional[str] = None) -> DocumentTree:
    """Parse the XML file at ``path``; ``name`` defaults to the file name."""
    path = str(path)
    try:
        element = ET.parse(path).getroot()
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML in {path}: {exc}") from exc
    except OSError as exc:
        raise ParseError(f"cannot read {path}: {exc}") from exc
    return DocumentTree(_convert(element), name=name if name is not None else path)
