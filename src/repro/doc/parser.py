"""Parse XML text into :class:`~repro.doc.tree.DocumentTree`.

The environment has no ``lxml``; we build on the standard library's
``xml.parsers.expat`` with an *iterative* event-driven builder — parse
depth is bounded by an explicit stack, never the Python call stack, so a
pathologically deep document can not surface a ``RecursionError``.

Conversion rules (mirroring :mod:`repro.doc.node`):

* each XML element becomes a node with the element's tag;
* each XML attribute ``k="v"`` becomes a child node tagged ``@k`` carrying
  value ``v`` (attributes sorted by name, ahead of other children);
* element text that is non-whitespace becomes the node's ``value`` when the
  element is a leaf, and a child node tagged ``#text`` otherwise (mixed
  content, or a leaf that also carries attributes);
* values that look like integers/floats are converted to numbers so that
  the paper's range predicates ("year > 2000") work out of the box.

Two parse modes harden ingestion of untrusted corpora:

* ``strict`` (default) — any malformation, depth overrun, or size overrun
  raises :class:`~repro.errors.ParseError` carrying a text snippet and the
  byte offset of the failure;
* ``lenient`` — best-effort recovery: a document that breaks mid-stream
  yields the partial tree parsed so far (open elements force-closed),
  over-deep subtrees are skipped, and oversized input is truncated at the
  byte limit.  Only when no root element at all can be recovered does
  lenient mode raise :class:`ParseError`.

Either way the failure surface is exactly :class:`ParseError` — never
``RecursionError``, ``AttributeError``, or a raw expat exception.
"""

from __future__ import annotations

import xml.parsers.expat as expat
from typing import Optional, Union

from ..errors import ParseError
from ..obs.metrics import MetricsRegistry, default_registry
from ..resilience.faults import SITE_PARSE, fault_check
from .node import DocumentNode, Value
from .tree import DocumentTree

TEXT_TAG = "#text"

_MODES = ("strict", "lenient")


def coerce_value(text: str) -> Value:
    """Convert raw text to int/float when it cleanly parses, else keep str."""
    stripped = text.strip()
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        return stripped


class _Frame:
    """One open element on the builder's explicit stack."""

    __slots__ = ("node", "has_attrs", "element_children", "parts")

    def __init__(self, node: DocumentNode, has_attrs: bool):
        self.node = node
        self.has_attrs = has_attrs
        self.element_children = 0
        self.parts: list = []


class _Builder:
    """Event-driven document builder with an explicit element stack."""

    def __init__(self, strict: bool, max_depth: Optional[int]):
        self.strict = strict
        self.max_depth = max_depth
        self.stack: list = []
        self.root: Optional[DocumentNode] = None
        self.skip_depth = 0
        self.elements = 0
        self.parser: Optional[expat.XMLParserType] = None

    # -- expat handlers -------------------------------------------------
    def start(self, tag: str, attrs: dict) -> None:
        if self.skip_depth:
            self.skip_depth += 1
            return
        if self.max_depth is not None and len(self.stack) >= self.max_depth:
            if not self.strict:
                self.skip_depth = 1
                return
            position = self.parser.CurrentByteIndex if self.parser else None
            raise ParseError(
                f"document nesting exceeds the depth limit of "
                f"{self.max_depth} at element <{tag}>",
                text=tag,
                position=position,
            )
        node = DocumentNode(tag)
        self.elements += 1
        if self.stack:
            parent = self.stack[-1]
            self._flush_text(parent)
            parent.element_children += 1
            parent.node.add_child(node)
        elif self.root is None:
            self.root = node
        for key in sorted(attrs):
            node.new_child(f"@{key}", coerce_value(attrs[key]))
        self.stack.append(_Frame(node, bool(attrs)))

    def data(self, text: str) -> None:
        if self.skip_depth or not self.stack:
            return
        self.stack[-1].parts.append(text)

    def end(self, tag: str) -> None:
        if self.skip_depth:
            self.skip_depth -= 1
            return
        if self.stack:
            self._close(self.stack.pop())

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _flush_text(frame: _Frame) -> None:
        """Emit buffered text as a ``#text`` child (mixed content)."""
        text = "".join(frame.parts).strip()
        frame.parts.clear()
        if text:
            frame.node.new_child(TEXT_TAG, coerce_value(text))

    @staticmethod
    def _close(frame: _Frame) -> None:
        text = "".join(frame.parts).strip()
        frame.parts.clear()
        if text:
            if frame.element_children or frame.has_attrs:
                frame.node.new_child(TEXT_TAG, coerce_value(text))
            else:
                frame.node.value = coerce_value(text)

    def close_open_frames(self) -> None:
        """Force-close every open element (lenient-mode recovery)."""
        while self.stack:
            self._close(self.stack.pop())


def _snippet(data: bytes) -> str:
    return data[:200].decode("utf8", "replace")


def _clamp(position: Optional[int], size: int) -> Optional[int]:
    if position is None:
        return None
    return max(0, min(int(position), size))


def parse_string(
    text: Union[str, bytes],
    name: str = "",
    *,
    mode: str = "strict",
    max_depth: Optional[int] = None,
    max_bytes: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> DocumentTree:
    """Parse an XML string into a frozen :class:`DocumentTree`.

    Args:
        text: the document, as ``str`` or UTF-8 ``bytes``.
        name: name recorded on the resulting tree.
        mode: ``"strict"`` or ``"lenient"`` (see module docstring).
        max_depth: maximum element nesting; ``None`` = unlimited.
        max_bytes: maximum input size in bytes; ``None`` = unlimited.
        metrics: registry the ingestion counters (documents by outcome,
            bytes, elements) are recorded into (default: the
            process-global registry).

    Raises:
        ParseError: strict mode — on any malformation or limit overrun;
            lenient mode — only when no root element is recoverable.
            ``position`` is the byte offset of the failure when known.
    """
    registry = metrics if metrics is not None else default_registry()
    outcomes = registry.counter(
        "doc_parse_total",
        "XML documents parsed, by mode and outcome",
        ["mode", "outcome"],
    )
    try:
        tree, elements, recovered = _parse_payload(
            text, name, mode, max_depth, max_bytes, registry
        )
    except ParseError:
        outcomes.inc(mode=str(mode), outcome="error")
        raise
    outcomes.inc(mode=mode, outcome="recovered" if recovered else "ok")
    registry.counter(
        "doc_parse_elements_total",
        "document elements materialized by the parser",
    ).inc(elements)
    return tree


def _parse_payload(
    text: Union[str, bytes],
    name: str,
    mode: str,
    max_depth: Optional[int],
    max_bytes: Optional[int],
    registry: MetricsRegistry,
) -> tuple[DocumentTree, int, bool]:
    """The parse itself; returns (tree, element count, lenient-recovered)."""
    fault_check(SITE_PARSE)
    if mode not in _MODES:
        raise ParseError(
            f"unknown parse mode {mode!r}; expected one of {', '.join(_MODES)}",
            text=str(mode),
            position=0,
        )
    strict = mode == "strict"
    data = text.encode("utf8") if isinstance(text, str) else bytes(text)
    registry.counter(
        "doc_parse_bytes_total", "XML bytes ingested, by mode", ["mode"]
    ).inc(len(data), mode=mode)
    if max_bytes is not None and len(data) > max_bytes:
        if strict:
            raise ParseError(
                f"document size {len(data)} bytes exceeds the limit of "
                f"{max_bytes} bytes",
                text=_snippet(data),
                position=max_bytes,
            )
        data = data[:max_bytes]

    builder = _Builder(strict, max_depth)
    parser = expat.ParserCreate()
    # buffer_text would coalesce character data but also silently discard
    # text buffered when a parse error cuts the document short; lenient
    # recovery needs every chunk delivered, so we coalesce in _Frame.parts.
    parser.buffer_text = False
    parser.StartElementHandler = builder.start
    parser.EndElementHandler = builder.end
    parser.CharacterDataHandler = builder.data
    builder.parser = parser
    recovered = False
    try:
        parser.Parse(data, True)
    except ParseError:
        raise
    except expat.ExpatError as exc:
        position = _clamp(parser.ErrorByteIndex, len(data))
        if strict or builder.root is None:
            raise ParseError(
                f"malformed XML: {expat.ErrorString(exc.code)} "
                f"(byte {position})",
                text=_snippet(data),
                position=position,
            ) from exc
        builder.close_open_frames()
        recovered = True
    except RecursionError as exc:  # defensive: the builder is iterative
        raise ParseError(
            "document too deeply nested to parse",
            text=_snippet(data),
            position=_clamp(parser.CurrentByteIndex, len(data)),
        ) from exc
    else:
        builder.close_open_frames()

    if builder.root is None:
        raise ParseError(
            "no root element found", text=_snippet(data), position=0
        )
    return DocumentTree(builder.root, name=name), builder.elements, recovered


def parse_file(
    path,
    name: Optional[str] = None,
    *,
    mode: str = "strict",
    max_depth: Optional[int] = None,
    max_bytes: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> DocumentTree:
    """Parse the XML file at ``path``; ``name`` defaults to the file name.

    Accepts the same hardening options as :func:`parse_string`; all
    failures (including unreadable files) surface as :class:`ParseError`
    with the path in the message.
    """
    path = str(path)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise ParseError(f"cannot read {path}: {exc}", text=path, position=0) from exc
    try:
        return parse_string(
            data,
            name=name if name is not None else path,
            mode=mode,
            max_depth=max_depth,
            max_bytes=max_bytes,
            metrics=metrics,
        )
    except ParseError as exc:
        raise ParseError(
            f"in {path}: {exc}", text=exc.text, position=exc.position
        ) from exc
