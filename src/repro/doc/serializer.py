"""Serialize a :class:`~repro.doc.tree.DocumentTree` back to XML text.

The inverse of :mod:`repro.doc.parser`: ``@``-tagged children become
attributes, ``#text`` children become interleaved text, leaf values become
element text.  ``parse_string(serialize(tree))`` reproduces the model tree
(tested as a round-trip property).
"""

from __future__ import annotations

from io import StringIO
from xml.sax.saxutils import escape, quoteattr

from .node import DocumentNode
from .parser import TEXT_TAG
from .tree import DocumentTree


def _value_text(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _write(node: DocumentNode, out: StringIO, indent: int, pretty: bool) -> None:
    pad = "  " * indent if pretty else ""
    newline = "\n" if pretty else ""
    attributes = [c for c in node.children if c.is_attribute]
    content = [c for c in node.children if not c.is_attribute]

    out.write(pad)
    out.write(f"<{node.tag}")
    for attr in attributes:
        out.write(f" {attr.tag[1:]}={quoteattr(_value_text(attr.value))}")

    if not content and node.value is None:
        out.write(f"/>{newline}")
        return
    out.write(">")
    if node.value is not None:
        out.write(escape(_value_text(node.value)))
    if content:
        only_text = all(c.tag == TEXT_TAG for c in content)
        if only_text:
            out.write(escape(" ".join(_value_text(c.value) for c in content)))
        else:
            out.write(newline)
            for child in content:
                if child.tag == TEXT_TAG:
                    out.write(("  " * (indent + 1)) if pretty else "")
                    out.write(escape(_value_text(child.value)))
                    out.write(newline)
                else:
                    _write(child, out, indent + 1, pretty)
            out.write(pad)
    out.write(f"</{node.tag}>{newline}")


def serialize(tree: DocumentTree, pretty: bool = True) -> str:
    """Render ``tree`` as an XML string.

    Args:
        tree: the document to serialize.
        pretty: indent nested elements (default) or emit a single line.
    """
    out = StringIO()
    _write(tree.root, out, 0, pretty)
    return out.getvalue()


def write_file(tree: DocumentTree, path, pretty: bool = True) -> None:
    """Serialize ``tree`` to the file at ``path`` (UTF-8)."""
    with open(str(path), "w", encoding="utf8") as handle:
        handle.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        handle.write(serialize(tree, pretty=pretty))


def text_size_bytes(tree: DocumentTree) -> int:
    """Size in bytes of the document's serialized XML text.

    This is the paper's "Text Size" column in Table 1 (the size of the
    corresponding disk file).
    """
    return len(serialize(tree, pretty=True).encode("utf8"))
