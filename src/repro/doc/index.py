"""Indexes over a document tree used by evaluators and synopsis builders.

The exact twig evaluator and the synopsis construction code repeatedly need
(1) all elements with a given tag, (2) the distinct parent→child tag pairs,
and (3) all distinct root-to-node label paths.  :class:`DocumentIndex`
computes these once per tree.
"""

from __future__ import annotations

from collections import Counter

from .node import DocumentNode
from .tree import DocumentTree


class DocumentIndex:
    """Precomputed lookup structures for one document tree.

    Attributes:
        tree: the indexed document.
        tag_pairs: Counter of (parent_tag, child_tag) containment pairs,
            weighted by the number of document edges realizing the pair.
        label_paths: Counter of root-to-node label paths (tuples of tags),
            weighted by the number of elements with that path.
    """

    def __init__(self, tree: DocumentTree):
        self.tree = tree
        tag_pairs: Counter = Counter()
        label_paths: Counter = Counter()
        # One pass: carry the label path down the traversal.
        stack: list[tuple[DocumentNode, tuple[str, ...]]] = [
            (tree.root, (tree.root.tag,))
        ]
        while stack:
            node, path = stack.pop()
            label_paths[path] += 1
            for child in node.children:
                tag_pairs[(node.tag, child.tag)] += 1
                stack.append((child, path + (child.tag,)))
        self.tag_pairs = tag_pairs
        self.label_paths = label_paths

    # ------------------------------------------------------------------
    def elements(self, tag: str) -> list[DocumentNode]:
        """All elements with tag ``tag`` (document order)."""
        return self.tree.extent(tag)

    def child_tags(self, tag: str) -> set[str]:
        """Tags that appear as a child of a ``tag`` element somewhere."""
        return {child for (parent, child) in self.tag_pairs if parent == tag}

    def parent_tags(self, tag: str) -> set[str]:
        """Tags that appear as the parent of a ``tag`` element somewhere."""
        return {parent for (parent, child) in self.tag_pairs if child == tag}

    def has_pair(self, parent_tag: str, child_tag: str) -> bool:
        """True when some document edge goes parent_tag → child_tag."""
        return (parent_tag, child_tag) in self.tag_pairs

    def distinct_paths(self) -> list[tuple[str, ...]]:
        """All distinct root-to-node label paths, shortest first."""
        return sorted(self.label_paths, key=len)

    def path_count(self, path: tuple[str, ...]) -> int:
        """Number of elements whose root-to-node label path equals ``path``."""
        return self.label_paths.get(path, 0)
