"""Shared, cached building blocks for the experiment harness.

Experiments share expensive artifacts — generated documents, workloads
with exact selectivities, and XBUILD sweeps.  This module memoizes them
per (experiment-config, dataset) so the full benchmark suite builds each
document and each synopsis sweep exactly once.

:func:`run_suite` adds per-(dataset, stage) fault isolation on top: one
dataset blowing up (or running past a deadline) costs that dataset's
entry, not the whole suite — failures come back as structured
:class:`SuiteError` records next to the partial results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional, Sequence

from ..build.xbuild import XBuild
from ..datasets import generate_imdb, generate_sprot, generate_xmark
from ..doc.tree import DocumentTree
from ..errors import ResourceLimitError
from ..estimation.estimator import TwigEstimator
from ..resilience.retry import RetryPolicy, retry
from ..synopsis.summary import TwigXSketch, XSketchConfig
from ..workload.generator import Workload, WorkloadGenerator, WorkloadSpec
from ..workload.metrics import average_relative_error
from .config import DEFAULT_CONFIG, ExperimentConfig

GENERATORS = {
    "xmark": generate_xmark,
    "imdb": generate_imdb,
    "sprot": generate_sprot,
}

DATASETS = tuple(GENERATORS)


@lru_cache(maxsize=None)
def dataset(name: str, config: ExperimentConfig = DEFAULT_CONFIG) -> DocumentTree:
    """The (cached) document tree for one data-set name."""
    generator = GENERATORS[name]
    return generator(config.scale, seed=config.seed_for(name))


@lru_cache(maxsize=None)
def workload(
    name: str,
    kind: str,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> Workload:
    """A cached workload: ``kind`` is 'P', 'P+V', 'simple', or 'negative'.

    'simple' is the Figure 9(c) workload — child-axis paths only, no value
    predicates (what the CST baseline supports); the paper uses 500 such
    queries, here ``config.queries`` (same count as P for consistency).
    """
    tree = dataset(name, config)
    if kind == "P":
        spec = WorkloadSpec(seed=config.workload_seed)
    elif kind == "P+V":
        spec = WorkloadSpec(seed=config.workload_seed + 1, value_predicates=True)
    elif kind == "simple":
        spec = WorkloadSpec(
            seed=config.workload_seed + 2,
            branch_probability=0.15,
            descendant_probability=0.0,
        )
    elif kind == "negative":
        spec = WorkloadSpec(seed=config.workload_seed + 3)
        return WorkloadGenerator(tree, spec).negative_workload(
            max(20, config.queries // 4)
        )
    else:
        raise ValueError(f"unknown workload kind {kind!r}")
    return WorkloadGenerator(tree, spec).positive_workload(
        config.queries, name=f"{name}:{kind}"
    )


def _sweep(
    name: str,
    config: ExperimentConfig,
    engine: str,
    store_edge_counts: bool,
    value_samples: bool,
    deadline: Optional[float] = None,
) -> tuple[tuple[TwigXSketch, ...], bool]:
    """One XBUILD sweep; returns (snapshots, truncated).

    A deadline-truncated build still yields a full-length snapshot tuple —
    budget points never reached are filled with the best-so-far sketch —
    so downstream error curves keep their shape, flagged as truncated.
    """
    tree = dataset(name, config)
    sketch_config = XSketchConfig(engine=engine, store_edge_counts=store_edge_counts)
    coarsest = TwigXSketch.coarsest(tree, sketch_config)
    budgets = config.budgets(coarsest.size_bytes())
    snapshots: list[TwigXSketch] = [coarsest.copy()]
    pending = budgets[1:]

    def on_step(sketch: TwigXSketch) -> None:
        while pending and sketch.size_bytes() >= pending[0]:
            snapshots.append(sketch.copy())
            pending.pop(0)

    result = XBuild(
        tree,
        budgets[-1],
        sketch_config,
        seed=config.build_seed,
        sample_value_probability=0.3 if value_samples else 0.0,
        on_step=on_step,
        deadline=deadline,
    ).run()
    while pending:
        snapshots.append(result.sketch.copy())
        pending.pop(0)
    return tuple(snapshots), result.truncated


@lru_cache(maxsize=None)
def synopsis_sweep(
    name: str,
    config: ExperimentConfig = DEFAULT_CONFIG,
    engine: str = "centroid",
    store_edge_counts: bool = True,
    value_samples: bool = False,
) -> tuple[TwigXSketch, ...]:
    """XBUILD snapshots at each budget point (coarsest first), cached.

    One XBUILD run to the largest budget; a copy of the sketch is captured
    the first time its size crosses each budget point.  ``value_samples``
    makes XBUILD's internal sample workload carry value predicates, which
    is how the P+V sweep tunes construction for its workload.
    """
    snapshots, _ = _sweep(name, config, engine, store_edge_counts, value_samples)
    return snapshots


def sketch_error(sketch: TwigXSketch, load: Workload, **metric_kwargs) -> float:
    """Average relative error of a sketch's estimates on a workload."""
    estimator = TwigEstimator(sketch)
    estimates = [estimator.estimate(entry.query) for entry in load.queries]
    return average_relative_error(estimates, load.true_counts(), **metric_kwargs)


# ----------------------------------------------------------------------
# isolated suite execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SuiteError:
    """One isolated failure inside :func:`run_suite`.

    ``stage`` is ``"dataset"``, ``"workload:<kind>"``, or ``"sweep"``;
    ``error_type`` is the exception class name, ``message`` its text.
    """

    dataset: str
    stage: str
    error_type: str
    message: str


@dataclass
class SuiteResult:
    """What :func:`run_suite` managed to produce, plus what it did not.

    Attributes:
        sweeps: per-dataset synopsis snapshots (datasets that failed are
            absent, not None).
        workloads: per-(dataset, kind) workloads that materialized.
        errors: one :class:`SuiteError` per isolated failure.
        truncated: datasets whose sweep hit its deadline and returned a
            best-so-far snapshot tuple.
    """

    sweeps: dict = field(default_factory=dict)
    workloads: dict = field(default_factory=dict)
    errors: list = field(default_factory=list)
    truncated: tuple = ()

    @property
    def partial(self) -> bool:
        """True when at least one stage failed or was cut short."""
        return bool(self.errors) or bool(self.truncated)


def run_suite(
    names: Sequence[str] = DATASETS,
    kinds: Sequence[str] = ("P",),
    config: ExperimentConfig = DEFAULT_CONFIG,
    *,
    deadline: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
    retry_seed: int = 17,
) -> SuiteResult:
    """Build every (dataset, workload, sweep) artifact with fault isolation.

    Each stage of each dataset runs inside its own try/except: a failure
    is recorded as a :class:`SuiteError` and the suite moves on, so one
    broken dataset yields partial results instead of a lost run.  A
    dataset whose generation fails skips its dependent stages.

    Args:
        names: dataset names (keys of :data:`GENERATORS`).
        kinds: workload kinds per dataset (see :func:`workload`).
        config: the shared experiment configuration.
        deadline: per-sweep wall-clock budget in seconds; an overrun
            truncates that sweep (recorded in ``result.truncated``)
            rather than failing it.
        retry_policy: when given, each stage is retried per the policy
            (transient failures cost a retry, not the entry).
        retry_seed: seed for the retry backoff jitter.
    """
    result = SuiteResult()

    def guarded(dataset_name: str, stage: str, thunk):
        """Run one stage isolated; returns (value, ok)."""
        runner = thunk
        if retry_policy is not None:
            runner = retry(retry_policy, seed=retry_seed)(thunk)
        try:
            return runner(), True
        except ResourceLimitError as error:
            # deadlines on the sweep path are handled by XBuild itself
            # (truncated result); reaching here means a stage without a
            # recovery path overran — record it like any other failure
            result.errors.append(
                SuiteError(dataset_name, stage, type(error).__name__, str(error))
            )
        except Exception as error:  # noqa: BLE001 - isolation boundary
            result.errors.append(
                SuiteError(dataset_name, stage, type(error).__name__, str(error))
            )
        return None, False

    truncated: list[str] = []
    for name in names:
        _, ok = guarded(name, "dataset", lambda name=name: dataset(name, config))
        if not ok:
            continue
        for kind in kinds:
            load, ok = guarded(
                name,
                f"workload:{kind}",
                lambda name=name, kind=kind: workload(name, kind, config),
            )
            if ok:
                result.workloads[(name, kind)] = load
        swept, ok = guarded(
            name,
            "sweep",
            lambda name=name: _sweep(
                name, config, "centroid", True, False, deadline=deadline
            ),
        )
        if ok:
            snapshots, was_truncated = swept
            result.sweeps[name] = snapshots
            if was_truncated:
                truncated.append(name)
    result.truncated = tuple(truncated)
    return result
