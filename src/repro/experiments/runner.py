"""Shared, cached building blocks for the experiment harness.

Experiments share expensive artifacts — generated documents, workloads
with exact selectivities, and XBUILD sweeps.  This module memoizes them
per (experiment-config, dataset) so the full benchmark suite builds each
document and each synopsis sweep exactly once.
"""

from __future__ import annotations

from functools import lru_cache

from ..build.xbuild import XBuild
from ..datasets import generate_imdb, generate_sprot, generate_xmark
from ..doc.tree import DocumentTree
from ..estimation.estimator import TwigEstimator
from ..synopsis.summary import TwigXSketch, XSketchConfig
from ..workload.generator import Workload, WorkloadGenerator, WorkloadSpec
from ..workload.metrics import average_relative_error
from .config import DEFAULT_CONFIG, ExperimentConfig

GENERATORS = {
    "xmark": generate_xmark,
    "imdb": generate_imdb,
    "sprot": generate_sprot,
}

DATASETS = tuple(GENERATORS)


@lru_cache(maxsize=None)
def dataset(name: str, config: ExperimentConfig = DEFAULT_CONFIG) -> DocumentTree:
    """The (cached) document tree for one data-set name."""
    generator = GENERATORS[name]
    return generator(config.scale, seed=config.seed_for(name))


@lru_cache(maxsize=None)
def workload(
    name: str,
    kind: str,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> Workload:
    """A cached workload: ``kind`` is 'P', 'P+V', 'simple', or 'negative'.

    'simple' is the Figure 9(c) workload — child-axis paths only, no value
    predicates (what the CST baseline supports); the paper uses 500 such
    queries, here ``config.queries`` (same count as P for consistency).
    """
    tree = dataset(name, config)
    if kind == "P":
        spec = WorkloadSpec(seed=config.workload_seed)
    elif kind == "P+V":
        spec = WorkloadSpec(seed=config.workload_seed + 1, value_predicates=True)
    elif kind == "simple":
        spec = WorkloadSpec(
            seed=config.workload_seed + 2,
            branch_probability=0.15,
            descendant_probability=0.0,
        )
    elif kind == "negative":
        spec = WorkloadSpec(seed=config.workload_seed + 3)
        return WorkloadGenerator(tree, spec).negative_workload(
            max(20, config.queries // 4)
        )
    else:
        raise ValueError(f"unknown workload kind {kind!r}")
    return WorkloadGenerator(tree, spec).positive_workload(
        config.queries, name=f"{name}:{kind}"
    )


@lru_cache(maxsize=None)
def synopsis_sweep(
    name: str,
    config: ExperimentConfig = DEFAULT_CONFIG,
    engine: str = "centroid",
    store_edge_counts: bool = True,
    value_samples: bool = False,
) -> tuple[TwigXSketch, ...]:
    """XBUILD snapshots at each budget point (coarsest first), cached.

    One XBUILD run to the largest budget; a copy of the sketch is captured
    the first time its size crosses each budget point.  ``value_samples``
    makes XBUILD's internal sample workload carry value predicates, which
    is how the P+V sweep tunes construction for its workload.
    """
    tree = dataset(name, config)
    sketch_config = XSketchConfig(engine=engine, store_edge_counts=store_edge_counts)
    coarsest = TwigXSketch.coarsest(tree, sketch_config)
    budgets = config.budgets(coarsest.size_bytes())
    snapshots: list[TwigXSketch] = [coarsest.copy()]
    pending = budgets[1:]

    def on_step(sketch: TwigXSketch) -> None:
        while pending and sketch.size_bytes() >= pending[0]:
            snapshots.append(sketch.copy())
            pending.pop(0)

    result = XBuild(
        tree,
        budgets[-1],
        sketch_config,
        seed=config.build_seed,
        sample_value_probability=0.3 if value_samples else 0.0,
        on_step=on_step,
    ).run()
    while pending:
        snapshots.append(result.sketch.copy())
        pending.pop(0)
    return tuple(snapshots)


def sketch_error(sketch: TwigXSketch, load: Workload, **metric_kwargs) -> float:
    """Average relative error of a sketch's estimates on a workload."""
    estimator = TwigEstimator(sketch)
    estimates = [estimator.estimate(entry.query) for entry in load.queries]
    return average_relative_error(estimates, load.true_counts(), **metric_kwargs)
