"""The evaluation section's textual claims and the DESIGN.md ablations.

* :func:`run_negative` — "our synopses consistently give close to zero
  estimates for [negative] queries" (Section 6.1);
* :func:`run_path_ablation` — Twig vs Structural XSKETCHes on single-path
  workloads (Section 6.2: structural is at least as accurate on pure
  paths);
* :func:`run_edge_count_ablation` — stored per-edge counts vs the
  stability-only fallback (DESIGN.md E8);
* :func:`run_engine_ablation` — centroid histograms vs Haar wavelets as
  the edge-distribution engine (DESIGN.md E9).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..estimation.estimator import TwigEstimator
from ..estimation.path_estimator import PathEstimator
from ..workload.generator import WorkloadGenerator, WorkloadSpec
from ..workload.metrics import average_relative_error
from .config import DEFAULT_CONFIG, ExperimentConfig
from .reporting import render_table
from .runner import dataset, sketch_error, synopsis_sweep, workload


@dataclass
class NegativeResult:
    """Negative-workload outcome for one data set."""

    name: str
    queries: int
    mean_estimate: float
    max_estimate: float


def run_negative(config: ExperimentConfig = DEFAULT_CONFIG) -> list[NegativeResult]:
    """Estimates on zero-selectivity workloads (should be ~0)."""
    results = []
    for name in ("imdb", "xmark"):
        load = workload(name, "negative", config)
        sketch = synopsis_sweep(name, config)[-1]
        estimator = TwigEstimator(sketch)
        estimates = [estimator.estimate(e.query) for e in load.queries]
        results.append(
            NegativeResult(
                name.upper(),
                len(estimates),
                sum(estimates) / len(estimates),
                max(estimates),
            )
        )
    return results


def format_negative(results: list[NegativeResult]) -> str:
    """Render the negative-workload check."""
    return render_table(
        "Negative workloads (Section 6.1 claim)",
        ["dataset", "queries", "mean estimate", "max estimate"],
        [
            [r.name, r.queries, f"{r.mean_estimate:.2f}", f"{r.max_estimate:.2f}"]
            for r in results
        ],
        note="paper: 'consistently give close to zero estimates'",
    )


def _single_path_workload(tree, seed: int, count: int):
    """Chain-only positive queries (each twig node has one child)."""
    generator = WorkloadGenerator(
        tree,
        WorkloadSpec(
            seed=seed,
            min_nodes=2,
            max_nodes=5,
            branch_probability=0.0,
            descendant_probability=0.0,
            max_children=1,
        ),
    )
    load = generator.positive_workload(count)
    return [
        entry
        for entry in load.queries
        if all(len(n.children) <= 1 for n in entry.query.nodes())
    ]


@dataclass
class AblationRow:
    """One comparison row: two errors for the same workload."""

    name: str
    first_error: float
    second_error: float


def run_path_ablation(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> list[AblationRow]:
    """Twig estimator vs the single-path (structural) estimator on chains."""
    rows = []
    for name in ("imdb", "xmark"):
        tree = dataset(name, config)
        chains = _single_path_workload(
            tree, config.workload_seed + 7, max(20, config.queries // 4)
        )
        sketch = synopsis_sweep(name, config)[-1]
        twig_estimator = TwigEstimator(sketch)
        path_estimator = PathEstimator(sketch)
        truths = [entry.true_count for entry in chains]
        twig_error = average_relative_error(
            [twig_estimator.estimate(e.query) for e in chains], truths
        )
        path_error = average_relative_error(
            [path_estimator.estimate_query(e.query) for e in chains], truths
        )
        rows.append(AblationRow(name.upper(), twig_error, path_error))
    return rows


def format_path_ablation(rows: list[AblationRow]) -> str:
    """Render the Twig-vs-Structural single-path comparison."""
    return render_table(
        "Single-path workloads: Twig vs Structural XSKETCH (Section 6.2)",
        ["dataset", "twig est. error", "structural est. error"],
        [
            [r.name, f"{r.first_error*100:.1f}%", f"{r.second_error*100:.1f}%"]
            for r in rows
        ],
        note="paper: twig synopses give low error on paths; structural "
        "synopses are (by design) at least as accurate there",
    )


def run_edge_count_ablation(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> list[AblationRow]:
    """Stored edge counts vs stability-only fallback (DESIGN.md E8)."""
    rows = []
    for name in ("imdb",):
        load = workload(name, "P", config)
        with_counts = synopsis_sweep(name, config, store_edge_counts=True)[-1]
        without_counts = synopsis_sweep(name, config, store_edge_counts=False)[-1]
        rows.append(
            AblationRow(
                name.upper(),
                sketch_error(with_counts, load),
                sketch_error(without_counts, load),
            )
        )
    return rows


def format_edge_count_ablation(rows: list[AblationRow]) -> str:
    """Render the edge-count storage ablation."""
    return render_table(
        "Ablation E8: stored edge counts vs stability-only estimation",
        ["dataset", "stored counts", "stability fallback"],
        [
            [r.name, f"{r.first_error*100:.1f}%", f"{r.second_error*100:.1f}%"]
            for r in rows
        ],
        note="stored counts cost 4 bytes/edge and remove one independence "
        "assumption from |n_i->n_j|",
    )


def run_branch_conditioning_ablation(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> list[AblationRow]:
    """Branch conditioning on/off (DESIGN.md E11): conditioning joint
    histograms on covered branch predicates vs pure independence."""
    rows = []
    for name in ("imdb", "xmark"):
        load = workload(name, "P", config)
        sketch = synopsis_sweep(name, config)[-1]
        truths = load.true_counts()
        conditioned = TwigEstimator(sketch, branch_conditioning=True)
        independent = TwigEstimator(sketch, branch_conditioning=False)
        rows.append(
            AblationRow(
                name.upper(),
                average_relative_error(
                    [conditioned.estimate(e.query) for e in load.queries], truths
                ),
                average_relative_error(
                    [independent.estimate(e.query) for e in load.queries], truths
                ),
            )
        )
    return rows


def format_branch_conditioning_ablation(rows: list[AblationRow]) -> str:
    """Render the branch-conditioning ablation."""
    return render_table(
        "Ablation E11: branch conditioning vs branch independence",
        ["dataset", "conditioned", "independent"],
        [
            [r.name, f"{r.first_error*100:.1f}%", f"{r.second_error*100:.1f}%"]
            for r in rows
        ],
        note="single-alternative branches covered by a histogram condition "
        "the joint distribution instead of multiplying an independent "
        "existence probability",
    )


def run_engine_ablation(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> list[AblationRow]:
    """Centroid histograms vs Haar wavelets (DESIGN.md E9)."""
    rows = []
    for name in ("imdb",):
        load = workload(name, "P", config)
        centroid = synopsis_sweep(name, config, engine="centroid")[-1]
        wavelet = synopsis_sweep(name, config, engine="wavelet")[-1]
        rows.append(
            AblationRow(
                name.upper(),
                sketch_error(centroid, load),
                sketch_error(wavelet, load),
            )
        )
    return rows


def format_engine_ablation(rows: list[AblationRow]) -> str:
    """Render the histogram-engine ablation."""
    return render_table(
        "Ablation E9: centroid histograms vs Haar wavelets",
        ["dataset", "centroid", "wavelet"],
        [
            [r.name, f"{r.first_error*100:.1f}%", f"{r.second_error*100:.1f}%"]
            for r in rows
        ],
        note="both engines plug into the same estimation framework "
        "(paper Section 3.2: 'histograms or wavelets')",
    )
