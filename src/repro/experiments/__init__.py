"""Experiment harness: regenerates every table and figure of the paper.

Each ``run_*`` returns structured results; each ``format_*`` renders them
in the paper's layout with the paper's numbers quoted in a footnote.
The benchmarks under ``benchmarks/`` drive these and print the outputs.
"""

from .config import DEFAULT_CONFIG, ExperimentConfig
from .extras import (
    format_branch_conditioning_ablation,
    format_edge_count_ablation,
    format_engine_ablation,
    format_negative,
    format_path_ablation,
    run_branch_conditioning_ablation,
    run_edge_count_ablation,
    run_engine_ablation,
    run_negative,
    run_path_ablation,
)
from .figure9 import (
    format_figure9a,
    format_figure9b,
    format_figure9c,
    run_figure9a,
    run_figure9b,
    run_figure9c,
)
from .runner import (
    DATASETS,
    SuiteError,
    SuiteResult,
    dataset,
    run_suite,
    sketch_error,
    synopsis_sweep,
    workload,
)
from .tables import format_table1, format_table2, run_table1, run_table2

__all__ = [
    "DATASETS",
    "DEFAULT_CONFIG",
    "ExperimentConfig",
    "SuiteError",
    "SuiteResult",
    "dataset",
    "format_branch_conditioning_ablation",
    "format_edge_count_ablation",
    "format_engine_ablation",
    "format_figure9a",
    "format_figure9b",
    "format_figure9c",
    "format_negative",
    "format_path_ablation",
    "format_table1",
    "format_table2",
    "run_branch_conditioning_ablation",
    "run_edge_count_ablation",
    "run_engine_ablation",
    "run_figure9a",
    "run_figure9b",
    "run_figure9c",
    "run_negative",
    "run_path_ablation",
    "run_suite",
    "run_table1",
    "run_table2",
    "sketch_error",
    "synopsis_sweep",
    "workload",
]
