"""Table 1 (data sets) and Table 2 (workload characteristics)."""

from __future__ import annotations

from dataclasses import dataclass

from ..doc.stats import document_stats
from ..synopsis.summary import TwigXSketch
from .config import DEFAULT_CONFIG, ExperimentConfig
from .reporting import render_table
from .runner import DATASETS, dataset, workload

DATASET_LABELS = {"xmark": "XMark", "imdb": "IMDB", "sprot": "SProt"}


@dataclass
class Table1Row:
    """One column of the paper's Table 1 (we print it row-wise)."""

    name: str
    element_count: int
    text_size_mb: float
    coarsest_kb: float


def run_table1(config: ExperimentConfig = DEFAULT_CONFIG) -> list[Table1Row]:
    """Element count, text size, and coarsest-synopsis size per data set."""
    rows = []
    for name in DATASETS:
        tree = dataset(name, config)
        stats = document_stats(tree)
        coarsest = TwigXSketch.coarsest(tree)
        rows.append(
            Table1Row(
                DATASET_LABELS[name],
                stats.element_count,
                stats.text_size_mb,
                coarsest.size_kb(),
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render in the paper's Table 1 layout."""
    return render_table(
        "Table 1: Data Sets",
        ["", *[row.name for row in rows]],
        [
            ["Element Count", *[f"{row.element_count:,}" for row in rows]],
            ["Text Size (MB)", *[f"{row.text_size_mb:.2f}" for row in rows]],
            ["Coarsest Synopsis (KB)", *[f"{row.coarsest_kb:.2f}" for row in rows]],
        ],
        note="paper (100K-element corpora): 103,136/102,755/69,599 elements; "
        "12.2/8.1/9.7 KB coarsest",
    )


@dataclass
class Table2Row:
    """Workload characteristics for one (data set, workload) pair."""

    name: str
    kind: str
    average_result: float
    average_fanout: float


def run_table2(config: ExperimentConfig = DEFAULT_CONFIG) -> list[Table2Row]:
    """Average result cardinality and fanout for the P / P+V workloads.

    The paper reports P and P+V for XMark and IMDB, and P only for SProt.
    """
    rows = []
    for name in DATASETS:
        kinds = ["P", "P+V"] if name != "sprot" else ["P"]
        for kind in kinds:
            load = workload(name, kind, config)
            rows.append(
                Table2Row(
                    DATASET_LABELS[name],
                    kind,
                    load.average_result(),
                    load.average_fanout(),
                )
            )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render in the paper's Table 2 layout."""
    return render_table(
        "Table 2: Workload Characteristics",
        ["", *[f"{row.name} {row.kind}" for row in rows]],
        [
            ["Avg. Result", *[f"{row.average_result:,.0f}" for row in rows]],
            ["Avg. Fanout", *[f"{row.average_fanout:.2f}" for row in rows]],
        ],
        note="paper: results 2,436/1,423 (XMark P/P+V), 3,477/961 (IMDB), "
        "24,034 (SProt P); fanouts 1.99/1.60/1.66/1.53/1.97",
    )
