"""Plain-text rendering of experiment tables and series."""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    note: str = "",
) -> str:
    """An aligned monospace table with a title line (and optional note)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in cells))
        if cells
        else len(headers[column])
        for column in range(len(headers))
    ]

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.rjust(width) for value, width in zip(values, widths))

    out = [f"== {title} ==", line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    if note:
        out.append(f"   {note}")
    return "\n".join(out)


def render_series(
    title: str,
    x_label: str,
    y_label: str,
    series: dict[str, list[tuple[float, float]]],
    note: str = "",
) -> str:
    """One table per named series of (x, y) points."""
    blocks = [f"== {title} =="]
    for name, points in series.items():
        blocks.append(f"-- {name} --")
        blocks.append(f"{x_label:>12}  {y_label:>12}")
        for x, y in points:
            blocks.append(f"{x:>12.1f}  {y:>12.2f}")
    if note:
        blocks.append(f"   {note}")
    return "\n".join(blocks)
