"""Figure 9: the paper's three headline plots.

* (a) estimation error vs synopsis size on the **P** workload (branching
  predicates), IMDB and XMark — error starts high on IMDB and drops as
  XBUILD refines; XMark stays low throughout;
* (b) the same sweep on the **P+V** workload (branching + value
  predicates) — same trend, higher absolute error;
* (c) the ratio err_CST / err_XSKETCH on simple-path twig workloads for
  all three data sets, with CST outlier errors (>1000%) excluded as the
  paper does — the ratio is above 1 and grows with the space budget.
"""

from __future__ import annotations

from ..baselines.cst import CorrelatedSuffixTree, CSTEstimator
from ..workload.metrics import average_relative_error
from .config import DEFAULT_CONFIG, ExperimentConfig
from .reporting import render_series
from .runner import dataset, sketch_error, synopsis_sweep, workload

#: the paper excludes CST estimates whose error exceeds 1000%
CST_OUTLIER_THRESHOLD = 10.0

#: floor for the ratio denominator — when the XSKETCH error reaches ~0 on a
#: finite workload the raw ratio is unbounded; the paper likewise trims the
#: ratio "within reasonable bounds".  0.2% ≈ one marginally-off query in a
#: 500-query workload.
RATIO_ERROR_FLOOR = 0.002

Series = dict[str, list[tuple[float, float]]]


def run_figure9a(config: ExperimentConfig = DEFAULT_CONFIG) -> Series:
    """Error (%) vs synopsis size (KB), P workload, IMDB + XMark."""
    series: Series = {}
    for name in ("imdb", "xmark"):
        load = workload(name, "P", config)
        points = [
            (sketch.size_kb(), 100.0 * sketch_error(sketch, load))
            for sketch in synopsis_sweep(name, config)
        ]
        series[name.upper()] = points
    return series


def run_figure9b(config: ExperimentConfig = DEFAULT_CONFIG) -> Series:
    """Error (%) vs synopsis size (KB), P+V workload, IMDB + XMark."""
    series: Series = {}
    for name in ("imdb", "xmark"):
        load = workload(name, "P+V", config)
        points = [
            (sketch.size_kb(), 100.0 * sketch_error(sketch, load))
            for sketch in synopsis_sweep(name, config, value_samples=True)
        ]
        series[name.upper()] = points
    return series


def run_figure9c(config: ExperimentConfig = DEFAULT_CONFIG) -> Series:
    """err_CST / err_XSKETCH vs storage (KB), all three data sets.

    Both summaries get the same byte budget at every sweep point; the CST
    error excludes per-query outliers above 1000%, mirroring the paper.
    """
    series: Series = {}
    for name in ("xmark", "imdb", "sprot"):
        tree = dataset(name, config)
        load = workload(name, "simple", config)
        truths = load.true_counts()
        points: list[tuple[float, float]] = []
        for sketch in synopsis_sweep(name, config):
            budget = sketch.size_bytes()
            cst = CorrelatedSuffixTree.build(tree, budget)
            cst_estimator = CSTEstimator(cst)
            cst_error = average_relative_error(
                [cst_estimator.estimate(e.query) for e in load.queries],
                truths,
                exclude_above=CST_OUTLIER_THRESHOLD,
            )
            xsketch_error = sketch_error(sketch, load)
            ratio = cst_error / max(xsketch_error, RATIO_ERROR_FLOOR)
            points.append((budget / 1024.0, ratio))
        series[name.upper()] = points
    return series


def format_figure9a(series: Series) -> str:
    """Render the Figure 9(a) series."""
    return render_series(
        "Figure 9(a): Branching Predicates (P workload)",
        "size (KB)",
        "error (%)",
        series,
        note="paper: IMDB starts at 124% and falls to ~20% by 50 KB; "
        "XMark stays low at every size",
    )


def format_figure9b(series: Series) -> str:
    """Render the Figure 9(b) series."""
    return render_series(
        "Figure 9(b): Branching and Value Predicates (P+V workload)",
        "size (KB)",
        "error (%)",
        series,
        note="paper: same downward trend as 9(a) with higher overall error",
    )


def format_figure9c(series: Series) -> str:
    """Render the Figure 9(c) series."""
    return render_series(
        "Figure 9(c): Simple Paths, CSTs vs XSKETCHes (error ratio)",
        "size (KB)",
        "err_CST/err_X",
        series,
        note="paper at 50 KB: ~1.0 on SProt (14%/14%), 5.5 on IMDB "
        "(44%/8%), 8.7 on XMark (26%/3%); ratio rises with budget",
    )
