"""Experiment configuration (scales, budgets, seeds).

The paper's runs use ~100K-element documents and 1000-query workloads;
regenerating every figure at that scale takes a while in pure Python, so
the defaults are scaled down and overridable through environment
variables:

* ``REPRO_SCALE`` — target element count per data set (default 12000);
* ``REPRO_QUERIES`` — queries per workload (default 120; paper 1000);
* ``REPRO_BUDGET_STEPS`` — number of synopsis-size points on each curve
  (default 4).

EXPERIMENTS.md records which scale produced the committed numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@dataclass(frozen=True)
class ExperimentConfig:
    """Scales and seeds shared by all experiments."""

    scale: int = field(default_factory=lambda: _env_int("REPRO_SCALE", 12_000))
    queries: int = field(default_factory=lambda: _env_int("REPRO_QUERIES", 120))
    budget_steps: int = field(
        default_factory=lambda: _env_int("REPRO_BUDGET_STEPS", 4)
    )
    #: extra synopsis bytes added per budget step during the sweeps
    budget_stride: int = 3072
    #: (name, seed) pairs — a tuple so the config stays hashable for caching
    dataset_seeds: tuple = (("xmark", 1), ("imdb", 2), ("sprot", 3))
    workload_seed: int = 101
    build_seed: int = 55

    def seed_for(self, name: str) -> int:
        """The generator seed of one data set."""
        return dict(self.dataset_seeds)[name]

    def budgets(self, base_bytes: int) -> list[int]:
        """The synopsis-size points of a sweep, starting at the coarsest."""
        return [
            base_bytes + step * self.budget_stride
            for step in range(self.budget_steps + 1)
        ]


DEFAULT_CONFIG = ExperimentConfig()
