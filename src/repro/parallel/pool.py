"""A deterministic process-pool execution layer.

:class:`WorkerPool` runs N long-lived worker processes, each holding a
private *replica state* built once by a bootstrap factory (a picklable
module-level callable).  The master drives the workers in lockstep
phases, which is what makes the pool usable for bit-deterministic
workloads like XBUILD candidate scoring:

* **chunked task dispatch** — :meth:`run` splits an indexed task list
  into contiguous per-worker chunks (:func:`split_chunks`) and
  :meth:`run_chunks` lets the caller pin tasks to specific workers
  (sticky assignment, e.g. "score the candidate on the worker that
  already holds its refined sketch");
* **order-stable merging** — every task carries its global index and
  results are reassembled in index order, so the merged output is
  independent of worker scheduling;
* **synchronous broadcasts** — :meth:`broadcast` delivers one state
  update to every worker and waits for all acknowledgements, so the
  next phase always sees every replica at the same version.

``workers <= 1`` runs everything **inline** — the state lives in the
master process and methods are called directly, with identical
semantics and zero process overhead.  This is both the serial fallback
and the reference behaviour the determinism tests compare against.

Failure surface: any worker-side exception (bootstrap or task) is
re-raised in the master as :class:`~repro.errors.ParallelError`
carrying the remote traceback; the pool is unusable afterwards and
:meth:`close` tears the processes down.

Messages travel over ``multiprocessing`` queues and are pickled; task
payloads and the bootstrap payload must therefore be picklable.  The
start method defaults to ``fork`` where available (cheap, inherits the
parent's imports) and falls back to ``spawn``.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Callable, Optional, Sequence

from ..errors import ParallelError

__all__ = ["WorkerPool", "split_chunks"]

#: seconds to wait for a worker to exit cleanly before terminating it
_JOIN_TIMEOUT = 5.0


def split_chunks(count: int, parts: int) -> list[range]:
    """Split ``range(count)`` into ``parts`` contiguous, balanced ranges.

    The first ``count % parts`` chunks get one extra element; empty
    chunks (when ``count < parts``) stay empty.  The assignment is a
    pure function of (count, parts), so chunking never perturbs
    determinism.
    """
    if parts < 1:
        raise ParallelError(f"parts must be >= 1, got {parts}")
    base, extra = divmod(count, parts)
    chunks: list[range] = []
    start = 0
    for part in range(parts):
        size = base + (1 if part < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _worker_main(worker_id, factory, payload, inbox, outbox) -> None:
    """The worker process loop: bootstrap, then serve messages forever.

    Replies: ``("ack", id, seq, None)`` for broadcasts,
    ``("result", id, seq, [(index, value), ...])`` for task batches,
    ``("error", id, seq, traceback_text)`` for any failure
    (``seq == -1`` marks a bootstrap failure).
    """
    try:
        state = factory(payload)
    except BaseException:
        outbox.put(("error", worker_id, -1, traceback.format_exc()))
        return
    outbox.put(("ack", worker_id, 0, None))
    while True:
        message = inbox.get()
        kind, seq = message[0], message[1]
        if kind == "stop":
            return
        method, body = message[2], message[3]
        try:
            bound = getattr(state, method)
            if kind == "cast":
                bound(body)
                outbox.put(("ack", worker_id, seq, None))
            else:
                results = [(index, bound(index, task)) for index, task in body]
                outbox.put(("result", worker_id, seq, results))
        except BaseException:
            outbox.put(("error", worker_id, seq, traceback.format_exc()))


class WorkerPool:
    """N worker processes around per-worker replica states.

    Args:
        factory: picklable module-level callable; ``factory(payload)``
            builds the worker's state object once at bootstrap.  Task
            methods are looked up on that object by name and called as
            ``method(index, task)``; broadcast methods as
            ``method(payload)``.
        payload: pickled to every worker and handed to ``factory``.
        workers: process count; ``<= 1`` runs inline in the master.
        start_method: multiprocessing start method (default: ``fork``
            when available, else the platform default).
    """

    def __init__(
        self,
        factory: Callable,
        payload=None,
        *,
        workers: int = 1,
        start_method: Optional[str] = None,
    ):
        self.workers = max(1, int(workers))
        self._closed = False
        self._seq = 0
        self._state = None
        self._processes: list = []
        self._inboxes: list = []
        self._outbox = None
        if self.workers == 1:
            self._state = factory(payload)
            return
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)
        self._outbox = context.SimpleQueue()
        try:
            for worker_id in range(self.workers):
                inbox = context.SimpleQueue()
                process = context.Process(
                    target=_worker_main,
                    args=(worker_id, factory, payload, inbox, self._outbox),
                    daemon=True,
                )
                process.start()
                self._inboxes.append(inbox)
                self._processes.append(process)
            # wait for every bootstrap ack before accepting work, so a
            # broken factory fails the constructor, not a later phase
            self._collect("ack", 0, self.workers)
        except BaseException:
            self._teardown()
            raise

    # ------------------------------------------------------------------
    @property
    def inline(self) -> bool:
        """True when the pool runs in-process (``workers <= 1``)."""
        return self._state is not None

    def broadcast(self, method: str, payload=None) -> None:
        """Run ``state.method(payload)`` on every worker; waits for all
        acknowledgements so later phases see a consistent replica set."""
        self._check_open()
        if self.inline:
            getattr(self._state, method)(payload)
            return
        self._seq += 1
        for inbox in self._inboxes:
            inbox.put(("cast", self._seq, method, payload))
        self._collect("ack", self._seq, self.workers)

    def run(self, method: str, tasks: Sequence) -> list:
        """Run ``state.method(index, task)`` for every task, chunked
        contiguously across the workers; results in task order."""
        chunks = [
            [(index, tasks[index]) for index in chunk]
            for chunk in split_chunks(len(tasks), self.workers)
        ]
        merged = self.run_chunks(method, chunks)
        return [merged[index] for index in range(len(tasks))]

    def run_chunks(
        self, method: str, chunks: Sequence[Sequence[tuple]]
    ) -> dict:
        """Run explicitly assigned ``(index, task)`` chunks; chunk ``i``
        goes to worker ``i``.  Returns ``{index: result}``.

        This is the sticky-assignment primitive: callers that cached
        per-task state on a specific worker in an earlier phase route
        follow-up tasks back to it.
        """
        self._check_open()
        if len(chunks) > self.workers:
            raise ParallelError(
                f"{len(chunks)} chunks for {self.workers} worker(s)"
            )
        if self.inline:
            bound = getattr(self._state, method)
            return {
                index: bound(index, task)
                for chunk in chunks
                for index, task in chunk
            }
        self._seq += 1
        expected = 0
        for worker_id, chunk in enumerate(chunks):
            if not chunk:
                continue
            self._inboxes[worker_id].put(
                ("call", self._seq, method, list(chunk))
            )
            expected += 1
        merged: dict = {}
        for reply in self._collect("result", self._seq, expected):
            for index, value in reply:
                merged[index] = value
        return merged

    def close(self) -> None:
        """Stop the workers; the pool is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        self._teardown()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ParallelError("the worker pool is closed")

    def _collect(self, kind: str, seq: int, expected: int) -> list:
        """Gather ``expected`` replies for phase ``seq`` off the outbox."""
        replies = []
        while len(replies) < expected:
            message = self._outbox.get()
            reply_kind, worker_id, reply_seq, body = message
            if reply_kind == "error":
                self._closed = True
                self._teardown()
                stage = "bootstrap" if reply_seq == -1 else f"phase {reply_seq}"
                raise ParallelError(
                    f"worker {worker_id} failed during {stage}:\n{body}",
                    worker_traceback=body,
                )
            if reply_seq != seq:
                # stale reply from an aborted phase; ignore
                continue
            replies.append(body)
        return replies

    def _teardown(self) -> None:
        for inbox in self._inboxes:
            try:
                inbox.put(("stop", -1, None, None))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT)
            if process.is_alive():
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT)
        self._processes = []
        self._inboxes = []
