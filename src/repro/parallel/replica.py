"""Per-worker replica states for the :class:`~repro.parallel.WorkerPool`.

Two replicas cover the system's hot paths:

* :class:`BuildReplica` — XBUILD candidate scoring.  Each worker holds
  its own copy of the document tree and rebuilds the in-flight synopsis
  by replaying the refinement trail over the coarsest summary (the same
  replay contract the checkpoint/resume path proves bit-identical).
  The master broadcasts each round's applied refinement, so every
  replica advances in lockstep with the authoritative build.
* :class:`EstimateReplica` — batched estimation.  Each worker loads an
  immutable (frozen-graph) synopsis from its persisted payload and
  serves ``estimate`` tasks through a worker-lifetime
  :class:`~repro.estimation.estimator.BatchContext`, so queries with
  common structure share embedding plans and subtree factors.

Both factories are plain module-level functions, picklable under any
multiprocessing start method.
"""

from __future__ import annotations

from typing import Optional

from ..build.oracles import ExactOracle
from ..errors import BuildError
from ..estimation.estimator import BatchContext, TwigEstimator
from ..synopsis.persist import sketch_from_dict, sketch_to_dict
from ..synopsis.summary import TwigXSketch
from ..workload.metrics import average_relative_error
from .pool import WorkerPool

__all__ = [
    "BuildReplica",
    "EstimateReplica",
    "build_replica_factory",
    "estimate_replica_factory",
    "parallel_estimate_many",
]


class BuildReplica:
    """One worker's view of an in-flight XBUILD: tree + synced sketch.

    Task methods (called as ``method(index, task)``):

    * :meth:`probe` — apply a candidate refinement; returns the refined
      size in bytes, or None when the candidate is inapplicable.  The
      refined sketch is cached under the task index for the round.
    * :meth:`score` — estimate the refined sketch's error on the
      region's sampled queries against the supplied truths.
    * :meth:`truth` — exact truth-oracle evaluation of one query
      (memoized for the worker's lifetime, like the master's oracle).

    Broadcast methods:

    * :meth:`advance` — end the round: apply the refinement the master
      chose (None for a stall round) and drop the round's cache.
    """

    def __init__(self, tree, config, trail):
        self.tree = tree
        sketch = TwigXSketch.coarsest(tree, config)
        for refinement in trail:
            sketch = refinement.apply(sketch)
        self.sketch = sketch
        self.oracle = ExactOracle(tree)
        self._round: dict[int, TwigXSketch] = {}

    # -- task methods ---------------------------------------------------
    def probe(self, index: int, refinement) -> Optional[int]:
        try:
            refined = refinement.apply(self.sketch)
        except BuildError:
            return None
        self._round[index] = refined
        return refined.size_bytes()

    def score(self, index: int, task) -> float:
        refinement, queries, truths = task
        refined = self._round.get(index)
        if refined is None:
            refined = refinement.apply(self.sketch)
        estimator = TwigEstimator(refined)
        return average_relative_error(
            [estimator.estimate(query) for query in queries], truths
        )

    def truth(self, index: int, query) -> float:
        return self.oracle.true_count(query)

    # -- broadcast methods ----------------------------------------------
    def advance(self, refinement) -> None:
        if refinement is not None:
            self.sketch = refinement.apply(self.sketch)
        self._round.clear()


def build_replica_factory(payload: dict) -> BuildReplica:
    """Bootstrap a :class:`BuildReplica` from the pool payload."""
    return BuildReplica(payload["tree"], payload["config"], payload["trail"])


class EstimateReplica:
    """One worker's estimation state: a frozen synopsis + batch caches."""

    def __init__(self, sketch_payload: dict, estimator_kwargs: dict):
        self.sketch = sketch_from_dict(sketch_payload)
        self.estimator = TwigEstimator(self.sketch, **estimator_kwargs)
        self.context = BatchContext()

    def estimate(self, index: int, query) -> float:
        return self.estimator.estimate_many([query], context=self.context)[0]


def estimate_replica_factory(payload: dict) -> EstimateReplica:
    """Bootstrap an :class:`EstimateReplica` from the pool payload."""
    return EstimateReplica(payload["sketch"], payload["kwargs"])


def parallel_estimate_many(
    sketch: TwigXSketch,
    queries,
    *,
    workers: int = 1,
    **estimator_kwargs,
) -> list[float]:
    """Estimate a batch of twig queries across a worker pool.

    Each worker holds its own synopsis replica; queries are chunked
    contiguously and results merge back in query order.  Estimates are
    bit-identical to per-query :meth:`TwigEstimator.estimate` (proven
    by the determinism tests) because the shared batch caches memoize a
    pure function of the query plan.

    ``workers <= 1`` evaluates inline through one shared
    :class:`~repro.estimation.estimator.BatchContext`.
    """
    queries = list(queries)
    if workers <= 1 or len(queries) <= 1:
        estimator = TwigEstimator(sketch, **estimator_kwargs)
        return estimator.estimate_many(queries)
    payload = {
        "sketch": sketch_to_dict(sketch),
        "kwargs": dict(estimator_kwargs),
    }
    effective = min(workers, len(queries))
    with WorkerPool(
        estimate_replica_factory, payload, workers=effective
    ) as pool:
        return pool.run("estimate", queries)
