"""Deterministic parallel execution (process pool + replicas).

The scale-out layer behind XBUILD candidate scoring and batched
estimation:

* :class:`WorkerPool` — N long-lived worker processes with per-worker
  replica states, lockstep broadcasts, chunked task dispatch
  (:func:`split_chunks`), and order-stable result merging;
  ``workers <= 1`` runs inline with identical semantics;
* :class:`BuildReplica` / :class:`EstimateReplica` — the two replica
  states: an XBUILD scoring replica (tree copy + trail-replayed
  synopsis, advanced by broadcast each round) and a frozen-synopsis
  estimation replica with worker-lifetime batch caches;
* :func:`parallel_estimate_many` — batch twig estimation across a
  pool, bit-identical to per-query estimates.

Failures surface as :class:`~repro.errors.ParallelError` carrying the
worker-side traceback.  See README.md "Performance" and DESIGN.md S25.
"""

from .pool import WorkerPool, split_chunks
from .replica import (
    BuildReplica,
    EstimateReplica,
    build_replica_factory,
    estimate_replica_factory,
    parallel_estimate_many,
)

__all__ = [
    "BuildReplica",
    "EstimateReplica",
    "WorkerPool",
    "build_replica_factory",
    "estimate_replica_factory",
    "parallel_estimate_many",
    "split_chunks",
]
