"""Correlated Suffix Trees: the comparison baseline of Figure 9(c).

Chen et al. [3] ("Counting Twig Matches in a Tree", ICDE 2001) summarize a
document with a pruned suffix trie over label paths and estimate twig
match counts by parsing query paths against the trie with *maximal
overlap* — always using the longest stored suffix — and combining the
per-path estimates at branch nodes under independence.  The paper at hand
compares against their P-MOSH variant on workloads of twig queries with
simple path expressions and no value predicates, with the CST construction
modified to ignore element values; this reimplementation matches that
experimental setup (see DESIGN.md §3 for the substitution note: we
implement maximal overlap with parent-count normalization; the original's
set-hash correlation refinement is not reconstructible from the available
text).

Characteristics preserved for the comparison: accurate on regular data;
systematically degraded on skewed/correlated data; space allocated by
frequency-based pruning with no awareness of estimation assumptions —
the three properties the paper's Figure 9(c) discussion attributes to CSTs.
"""

from __future__ import annotations

from typing import Sequence

from ..doc.tree import DocumentTree
from ..errors import EstimationError
from ..query.ast import DESCENDANT, TwigNode, TwigQuery
from .trie import PathTrie


class CorrelatedSuffixTree:
    """A pruned suffix-trie summary of one document."""

    def __init__(self, trie: PathTrie, max_suffix: int):
        self.trie = trie
        self.max_suffix = max_suffix

    @classmethod
    def build(
        cls,
        tree: DocumentTree,
        budget_bytes: int,
        max_suffix: int = 8,
    ) -> "CorrelatedSuffixTree":
        """Index the document and prune to the byte budget."""
        trie = PathTrie.from_document(tree, max_suffix)
        trie.prune_to_bytes(budget_bytes)
        return cls(trie, max_suffix)

    def size_bytes(self) -> int:
        """Stored size of the summary."""
        return self.trie.size_bytes()

    # ------------------------------------------------------------------
    # maximal-overlap path estimation
    # ------------------------------------------------------------------
    def path_count(self, tags: Sequence[str]) -> float:
        """Estimated occurrences of the tag sequence as a document path.

        Maximal overlap: the longest stored suffix provides the base
        count; missing prefixes are chained in Markov style,
        ``est(t_1..t_k) = est(t_1..t_{k-1}) · C(s..t_k) / C(s..t_{k-1})``
        with ``s..t_k`` the longest stored suffix ending the sequence.
        """
        if not tags:
            return 0.0
        tags = tuple(tags[-self.max_suffix:])
        exact = self.trie.count(tags)
        if exact is not None:
            return exact
        if len(tags) == 1:
            return 0.0
        # find the longest stored suffix ending at the last tag
        for start in range(1, len(tags)):
            suffix_count = self.trie.count(tags[start:])
            if suffix_count is None:
                continue
            if suffix_count == 0.0:
                return 0.0
            context_count = self.trie.count(tags[start:-1])
            if context_count is None or context_count <= 0:
                continue
            return self.path_count(tags[:-1]) * suffix_count / context_count
        return 0.0

    def conditional_count(self, context: Sequence[str], tag: str) -> float:
        """Expected number of ``tag`` children per element at ``context``."""
        parent = self.path_count(context)
        if parent <= 0:
            return 0.0
        return self.path_count(tuple(context) + (tag,)) / parent


class CSTEstimator:
    """Twig selectivity estimation over a CST (the P-MOSH-style scheme).

    The twig is traversed top-down; each node contributes the expected
    number of matches per parent match (a conditional path count), and
    siblings combine under independence — per-path maximal overlap plus
    branch-node normalization, the decomposition Chen et al. use.

    Supports the comparison workload: child-axis steps, branching
    predicates (as existence probabilities), no value predicates.
    """

    def __init__(self, summary: CorrelatedSuffixTree):
        self.summary = summary

    def estimate(self, query: TwigQuery) -> float:
        """Estimated selectivity of ``query``.

        Raises:
            EstimationError: for descendant steps or value predicates,
                which the CST comparison workload excludes.
        """
        root = query.root
        self._check_supported(root)
        root_tags = root.path.tags()
        base = self.summary.path_count(root_tags)
        if base <= 0:
            return 0.0
        return base * self._expand(root, root_tags)

    # ------------------------------------------------------------------
    def _expand(self, node: TwigNode, context: tuple[str, ...]) -> float:
        """Expected subtree matches per element matching ``context``."""
        factor = self._branch_factor(node, context)
        for child in node.children:
            child_context = context + child.path.tags()
            per_parent = self._chain_ratio(context, child.path.tags())
            if per_parent <= 0:
                return 0.0
            factor *= per_parent * self._expand(child, child_context)
        return factor

    def _chain_ratio(
        self, context: tuple[str, ...], tags: tuple[str, ...]
    ) -> float:
        """Expected matches of ``tags`` (a chain) per ``context`` element."""
        ratio = 1.0
        current = context
        for tag in tags:
            ratio *= self.summary.conditional_count(current, tag)
            if ratio <= 0:
                return 0.0
            current = current + (tag,)
        return ratio

    def _branch_factor(self, node: TwigNode, context: tuple[str, ...]) -> float:
        factor = 1.0
        for step in node.path.steps:
            for branch in step.branches:
                expected = self._chain_ratio(context, branch.tags())
                factor *= min(1.0, expected)
        return factor

    def _check_supported(self, node: TwigNode) -> None:
        for twig_node in node.iter_subtree():
            for step in twig_node.path.steps:
                if step.axis == DESCENDANT:
                    raise EstimationError(
                        "the CST baseline supports simple (child-axis) paths"
                    )
                if step.value_pred is not None:
                    raise EstimationError(
                        "the CST baseline ignores element values"
                    )
                for branch in step.branches:
                    for branch_step in branch.steps:
                        if branch_step.axis == DESCENDANT:
                            raise EstimationError(
                                "the CST baseline supports simple paths"
                            )
