"""Baseline summaries the paper compares against.

* :class:`CorrelatedSuffixTree`, :class:`CSTEstimator` — the pruned
  suffix-trie baseline of Chen et al. [3] used in Figure 9(c);
* :class:`PathTrie` — the underlying suffix trie substrate.
"""

from .cst import CorrelatedSuffixTree, CSTEstimator
from .trie import TRIE_NODE_BYTES, PathTrie

__all__ = [
    "CSTEstimator",
    "CorrelatedSuffixTree",
    "PathTrie",
    "TRIE_NODE_BYTES",
]
