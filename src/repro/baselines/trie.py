"""Suffix path tries: the substrate of the CST baseline.

A :class:`PathTrie` indexes every *suffix* of every root-to-element label
path in a document.  A trie node reached by the tag sequence
``(t_1, ..., t_k)`` counts the document elements whose label path ends
with exactly that sequence — i.e. the occurrences of the sequence as a
sub-path.  The trie supports greedy low-frequency pruning down to a byte
budget; lookups then fall back to the longest stored suffix, which is what
the maximal-overlap estimator builds on.
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

from ..doc.tree import DocumentTree

#: Stored bytes per trie node: tag id (2), count (4), parent/child link (4).
TRIE_NODE_BYTES = 10


class TrieNode:
    """One node of the path trie."""

    __slots__ = ("tag", "count", "children", "parent", "pruned_children")

    def __init__(self, tag: str, parent: Optional["TrieNode"]):
        self.tag = tag
        self.count = 0
        self.children: dict[str, TrieNode] = {}
        self.parent = parent
        #: True when at least one child subtree was pruned away — lookups
        #: below this node must fall back to shorter suffixes.
        self.pruned_children = False


class PathTrie:
    """A suffix trie over the label paths of one document."""

    def __init__(self):
        self.root = TrieNode("", None)
        self._node_count = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_document(cls, tree: DocumentTree, max_suffix: int = 8) -> "PathTrie":
        """Index all suffixes (up to ``max_suffix`` tags) of all paths."""
        trie = cls()
        for element in tree.iter_nodes():
            path = element.label_path()
            longest = min(len(path), max_suffix)
            for start in range(len(path) - longest, len(path)):
                trie._insert(path[start:])
        return trie

    def _insert(self, sequence: Sequence[str]) -> None:
        node = self.root
        for tag in sequence:
            child = node.children.get(tag)
            if child is None:
                child = TrieNode(tag, node)
                node.children[tag] = child
                self._node_count += 1
            node = child
        node.count += 1

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of stored trie nodes (excluding the synthetic root)."""
        return self._node_count

    def size_bytes(self) -> int:
        """Stored size under the DESIGN.md cost model."""
        return self._node_count * TRIE_NODE_BYTES

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, sequence: Sequence[str]) -> Optional[TrieNode]:
        """The trie node for ``sequence``, or None when absent/pruned."""
        node = self.root
        for tag in sequence:
            node = node.children.get(tag)
            if node is None:
                return None
        return node

    def count(self, sequence: Sequence[str]) -> Optional[float]:
        """Occurrence count of the sequence, or None when pruned away.

        A zero count is authoritative only when no ancestor on the lookup
        path lost children to pruning; in the pruned case None is returned
        so the estimator falls back to a shorter suffix.
        """
        node = self.root
        for tag in sequence:
            child = node.children.get(tag)
            if child is None:
                return None if node.pruned_children else 0.0
            node = child
        return float(node.count)

    # ------------------------------------------------------------------
    # pruning
    # ------------------------------------------------------------------
    def prune_to_bytes(self, budget_bytes: int) -> None:
        """Greedily remove the lowest-count deepest leaves until the trie
        fits ``budget_bytes`` (the CST construction of Chen et al.)."""
        target_nodes = max(1, budget_bytes // TRIE_NODE_BYTES)
        if self._node_count <= target_nodes:
            return
        heap: list[tuple[float, int, int, TrieNode]] = []
        order = 0

        def push_if_leaf(node: TrieNode) -> None:
            nonlocal order
            if not node.children and node.parent is not None:
                depth = 0
                walk = node
                while walk.parent is not None:
                    depth += 1
                    walk = walk.parent
                heapq.heappush(heap, (node.count, -depth, order, node))
                order += 1

        stack = [self.root]
        all_nodes = []
        while stack:
            node = stack.pop()
            all_nodes.append(node)
            stack.extend(node.children.values())
        for node in all_nodes:
            push_if_leaf(node)

        while self._node_count > target_nodes and heap:
            _, _, _, node = heapq.heappop(heap)
            parent = node.parent
            if parent is None or node.children:
                continue  # stale heap entry
            if parent.children.get(node.tag) is not node:
                continue
            del parent.children[node.tag]
            parent.pruned_children = True
            self._node_count -= 1
            push_if_leaf(parent)
