"""XBUILD: greedy Twig XSKETCH construction (paper Section 5).

The package splits into three layers:

* :mod:`repro.build.refinements` — the refinement operations (stabilize
  splits, histogram refine/expand, value refine/split/expand);
* :mod:`repro.build.sampling` — candidate generation and region-anchored
  query sampling;
* :mod:`repro.build.oracles` — the truth oracles gain is measured against;
* :mod:`repro.build.xbuild` — the greedy construction loop itself.

Typical use::

    from repro.build import xbuild
    sketch = xbuild(tree, budget_bytes=16 * 1024, seed=17)
"""

from .oracles import ExactOracle, SketchOracle, build_reference_sketch
from .refinements import (
    BStabilize,
    EdgeExpand,
    EdgeRefine,
    FStabilize,
    Refinement,
    ValueExpand,
    ValueRefine,
    ValueSplit,
)
from .sampling import RegionSampler, generate_candidates
from .xbuild import BuildStep, XBuild, XBuildResult, xbuild

__all__ = [
    "BStabilize",
    "BuildStep",
    "EdgeExpand",
    "EdgeRefine",
    "ExactOracle",
    "FStabilize",
    "Refinement",
    "RegionSampler",
    "SketchOracle",
    "ValueExpand",
    "ValueRefine",
    "ValueSplit",
    "XBuild",
    "XBuildResult",
    "build_reference_sketch",
    "generate_candidates",
    "xbuild",
]
