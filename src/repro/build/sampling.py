"""Candidate generation and query sampling for XBUILD (paper Section 5).

XBUILD is a randomized greedy loop: each round draws a pool of applicable
refinement *candidates* (:func:`generate_candidates`) and measures each
one's marginal benefit on a handful of twig queries sampled around the
candidate's region (:class:`RegionSampler`).  Everything proposed here is
guaranteed applicable — the preconditions of the refinement operations are
checked at proposal time, so the construction loop never wastes an
evaluation on a candidate that raises.

The value-oriented proposal helpers (``_value_split_proposals``,
``_value_expand_proposals``) implement the DESIGN.md E10/E12 extensions:
they look for *discriminative* value sources — repeated string values or
numeric domains — and skip near-unique ones (titles, names), whose splits
could only shave single elements off an extent.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Iterable, Optional

from ..doc.node import DocumentNode
from ..doc.tree import DocumentTree
from ..query.ast import Path, Step, TwigNode, TwigQuery
from ..query.values import ValuePredicate
from ..synopsis.distributions import EdgeRef
from ..synopsis.summary import TwigXSketch
from ..synopsis.tsn import stable_count_edges
from .refinements import (
    BStabilize,
    EdgeExpand,
    EdgeRefine,
    FStabilize,
    Refinement,
    ValueExpand,
    ValueRefine,
    ValueSplit,
)

#: default cap on the per-round candidate pool
DEFAULT_MAX_CANDIDATES = 16

#: at most this many distinct values per tag may ground equality splits
_SPLIT_VALUE_LIMIT = 3

#: a string value source is discriminative when its distinct-value count
#: stays below this fraction of the population (titles/names fail this)
_DISCRIMINATIVE_FRACTION = 0.5


def _structural_candidates(sketch: TwigXSketch) -> list[Refinement]:
    """B-/F-stabilize proposals: one per unstable synopsis edge."""
    proposals: list[Refinement] = []
    for edge in sketch.graph.edges.values():
        if not edge.backward_stable:
            proposals.append(BStabilize(edge.source, edge.target))
        if not edge.forward_stable:
            proposals.append(FStabilize(edge.source, edge.target))
    return proposals


def _histogram_candidates(sketch: TwigXSketch) -> list[Refinement]:
    """Edge-refine and edge-expand proposals over the stored histograms."""
    proposals: list[Refinement] = []
    cap = sketch.config.max_histogram_dims
    for node_id, histograms in sketch.edge_stats.items():
        usable = {
            EdgeRef(source, target)
            for source, target in stable_count_edges(sketch.graph, node_id)
            if sketch.config.include_backward or source == node_id
        }
        for index, histogram in enumerate(histograms):
            if histogram.bucket_count() >= histogram.budget:
                proposals.append(EdgeRefine(node_id, index))
            for ref in sorted(usable - set(histogram.scope)):
                donor = next(
                    (
                        other
                        for position, other in enumerate(histograms)
                        if position != index and ref in other.scope
                    ),
                    None,
                )
                if donor is None:
                    merged = histogram.dimensions + 1
                else:
                    merged = histogram.dimensions + sum(
                        1 for r in donor.scope if r not in histogram.scope
                    )
                if merged <= cap:
                    proposals.append(EdgeExpand(node_id, index, ref))
    return proposals


def _value_refine_candidates(sketch: TwigXSketch) -> list[Refinement]:
    """Value-refine proposals for still-compressed value histograms."""
    return [
        ValueRefine(node_id)
        for node_id, summary in sketch.value_stats.items()
        if summary.histogram.bucket_count() >= summary.budget
    ]


def _value_observations(
    node, child_tag: Optional[str]
) -> list[object]:
    """The value population a split/expand over ``child_tag`` would see."""
    if child_tag is None:
        return [e.value for e in node.extent if e.value is not None]
    values = []
    for element in node.extent:
        for child in element.children:
            if child.tag == child_tag and child.value is not None:
                values.append(child.value)
                break
    return values


def _value_sources(node) -> list[Optional[str]]:
    """Candidate value sources at a node: own values, then child tags."""
    sources: list[Optional[str]] = []
    if any(e.value is not None for e in node.extent):
        sources.append(None)
    child_tags: list[str] = []
    for element in node.extent:
        for child in element.children:
            if child.value is not None and child.tag not in child_tags:
                child_tags.append(child.tag)
    sources.extend(sorted(child_tags))
    return sources


def _matching_part_size(node, predicate, child_tag) -> int:
    """How many extent elements a ValueSplit with these settings captures."""
    probe = ValueSplit(node.node_id, predicate, child_tag)
    return sum(1 for element in node.extent if probe._matches(element))


def _value_split_proposals(
    sketch: TwigXSketch, node_id: int
) -> list[Refinement]:
    """ValueSplit proposals for one synopsis node (DESIGN.md E10).

    String sources with repeated values ground equality splits on their
    most frequent values; numeric sources ground a median split with a
    ``<`` predicate.  Only proper partitions are proposed.
    """
    node = sketch.graph.node(node_id)
    proposals: list[Refinement] = []
    for child_tag in _value_sources(node):
        values = _value_observations(node, child_tag)
        if len(values) < 2:
            continue
        numeric = [v for v in values if isinstance(v, (int, float))]
        if len(numeric) == len(values):
            median = sorted(numeric)[len(numeric) // 2]
            predicate = ValuePredicate("<", median)
            part = _matching_part_size(node, predicate, child_tag)
            if 0 < part < node.count:
                proposals.append(ValueSplit(node_id, predicate, child_tag))
            continue
        frequency = Counter(str(v) for v in values)
        for value, count in frequency.most_common(_SPLIT_VALUE_LIMIT):
            if count < 2:
                continue  # near-unique strings: splits shave single elements
            predicate = ValuePredicate("=", value)
            part = _matching_part_size(node, predicate, child_tag)
            if 0 < part < node.count:
                proposals.append(ValueSplit(node_id, predicate, child_tag))
    return proposals


def _value_expand_proposals(
    sketch: TwigXSketch, node_id: int
) -> list[Refinement]:
    """ValueExpand proposals for one synopsis node (DESIGN.md E12).

    A source qualifies when its values are discriminative: any numeric
    domain, or strings with far fewer distinct values than elements.  The
    count scope takes the node's heaviest forward edges (the dimensions
    most likely to correlate with the value).
    """
    node = sketch.graph.node(node_id)
    forward = sorted(
        sketch.graph.children_of(node_id),
        key=lambda edge: edge.child_count,
        reverse=True,
    )
    scope = tuple(
        EdgeRef(node_id, edge.target)
        for edge in forward[: min(2, sketch.config.max_histogram_dims)]
    )
    if not scope:
        return []
    existing = {summary.value_tag for summary in sketch.extended_at(node_id)}
    proposals: list[Refinement] = []
    for value_tag in _value_sources(node):
        if value_tag in existing:
            continue
        values = _value_observations(node, value_tag)
        if len(values) < 2:
            continue
        numeric = [v for v in values if isinstance(v, (int, float))]
        if len(numeric) < len(values):
            distinct = len(set(str(v) for v in values))
            if distinct > len(values) * _DISCRIMINATIVE_FRACTION:
                continue
        proposals.append(ValueExpand(node_id, value_tag, scope))
    return proposals


def generate_candidates(
    sketch: TwigXSketch,
    rng: random.Random,
    max_candidates: Optional[int] = None,
) -> list[Refinement]:
    """One round's candidate pool: applicable refinements, deduplicated,
    shuffled, and capped at ``max_candidates``.

    Backward edge-expansions (``new_ref.source != node_id``) are proposed
    only when the sketch configuration enables the full model
    (``include_backward``); the paper's measured prototype sticks to
    forward counts.
    """
    pool: list[Refinement] = []
    pool.extend(_structural_candidates(sketch))
    pool.extend(_histogram_candidates(sketch))
    pool.extend(_value_refine_candidates(sketch))
    for node in sketch.graph.iter_nodes():
        pool.extend(_value_split_proposals(sketch, node.node_id))
        pool.extend(_value_expand_proposals(sketch, node.node_id))
    deduplicated = list(dict.fromkeys(pool))
    rng.shuffle(deduplicated)
    cap = DEFAULT_MAX_CANDIDATES if max_candidates is None else max_candidates
    return deduplicated[:cap]


class RegionSampler:
    """Samples positive twig queries around a set of synopsis nodes.

    Queries are grown from concrete *witness* elements drawn from the
    region nodes' extents (the same positivity-by-construction trick as
    :class:`repro.workload.generator.WorkloadGenerator`), so every sampled
    query has at least one binding in the document.

    Args:
        tree: the source document.
        rng: randomness source (owned by the caller for determinism).
        value_probability: chance of attaching a value predicate taken
            from the witness to one query node.
    """

    def __init__(
        self,
        tree: DocumentTree,
        rng: random.Random,
        value_probability: float = 0.0,
    ):
        self.tree = tree
        self.rng = rng
        self.value_probability = value_probability

    def sample_for_regions(
        self,
        sketch: TwigXSketch,
        region_ids: Iterable[int],
        queries: int = 8,
    ) -> list[TwigQuery]:
        """Sample up to ``queries`` positive twigs touching the region.

        Synopsis ids with no live node are skipped; an entirely dead (or
        extent-less) region yields an empty list.
        """
        witnesses: list[DocumentNode] = []
        for node_id in region_ids:
            node = sketch.graph.nodes.get(node_id)
            if node is not None:
                witnesses.extend(node.extent)
        if not witnesses:
            return []
        sampled: list[TwigQuery] = []
        for _ in range(queries):
            witness = self.rng.choice(witnesses)
            sampled.append(self._query_around(witness))
        return sampled

    # ------------------------------------------------------------------
    def _query_around(self, witness: DocumentNode) -> TwigQuery:
        """A 1–4 node twig anchored at the witness (or its parent).

        Leaf witnesses are re-anchored at their parent so the query still
        exercises an edge distribution rather than a bare extent count.
        """
        anchor = witness
        if not anchor.children and anchor.parent is not None:
            anchor = anchor.parent
        counter = [0]

        def new_node(step: Step) -> TwigNode:
            node = TwigNode(f"s{counter[0]}", Path((step,)))
            counter[0] += 1
            return node

        root = new_node(Step(anchor.tag))
        children = list(anchor.children)
        self.rng.shuffle(children)
        used_tags: set[str] = set()
        for child in children[: self.rng.randint(1, 3)]:
            if child.tag in used_tags:
                continue
            used_tags.add(child.tag)
            predicate = None
            if (
                child.value is not None
                and self.rng.random() < self.value_probability
            ):
                predicate = self._predicate_for(child.value)
            root.add_child(new_node(Step(child.tag, value_pred=predicate)))
        return TwigQuery(root)

    def _predicate_for(self, value) -> ValuePredicate:
        """A predicate the witness value satisfies (keeps positivity)."""
        if isinstance(value, (int, float)):
            if self.rng.random() < 0.5:
                return ValuePredicate("<=", value)
            return ValuePredicate(">=", value)
        return ValuePredicate("=", value)
