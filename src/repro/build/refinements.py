"""The XBUILD refinement operations (paper Section 5).

Each operation is a small frozen dataclass — hashable, so candidate sets
deduplicate naturally — with three methods:

* :meth:`apply` — return a *new* refined :class:`TwigXSketch`; the input
  sketch is never mutated (XBUILD evaluates many candidates against the
  same base summary).
* :meth:`region` — the synopsis nodes whose statistics the operation
  changes; XBUILD samples its gain-measurement queries around this region.
* :meth:`describe` — a human-readable label whose first word is the
  operation kind (the CLI and examples aggregate on it).

The paper's six operations are implemented, plus the :class:`ValueSplit`
extension (DESIGN.md E10): value-predicated partitioning that captures
value↔structure correlation with ordinary structural statistics.

Every precondition failure raises :class:`~repro.errors.BuildError`, so
the construction loop can probe candidates freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import BuildError, SynopsisError
from ..query.values import ValuePredicate
from ..synopsis.distributions import EdgeRef
from ..synopsis.summary import TwigXSketch


class Refinement:
    """Common behaviour of all refinement operations."""

    def apply(self, sketch: TwigXSketch) -> TwigXSketch:  # pragma: no cover
        raise NotImplementedError

    def region(self) -> set[int]:  # pragma: no cover
        raise NotImplementedError

    def describe(self) -> str:
        """Default label: the kind tag of the concrete class."""
        return type(self).__name__.lower()


def _live_node(sketch: TwigXSketch, node_id: int):
    """The synopsis node, or a BuildError when it does not exist."""
    try:
        return sketch.graph.node(node_id)
    except SynopsisError as error:
        raise BuildError(str(error)) from None


@dataclass(frozen=True)
class BStabilize(Refinement):
    """Make ``source → target`` Backward-stable by splitting the target.

    The target node is partitioned into the elements whose parent lies in
    the source node (for which the edge becomes B-stable) and the rest
    (paper: "b-stabilize splits n_j into the elements that have a parent
    in n_i and those that do not").
    """

    source: int
    target: int

    def apply(self, sketch: TwigXSketch) -> TwigXSketch:
        edge = sketch.graph.edge(self.source, self.target)
        if edge is None:
            raise BuildError(
                f"no edge {self.source}->{self.target} to b-stabilize"
            )
        if edge.backward_stable:
            raise BuildError(
                f"edge {self.source}->{self.target} is already B-stable"
            )
        refined = sketch.copy()
        graph = refined.graph
        part = {
            element.node_id
            for element in graph.node(self.target).extent
            if element.parent is not None
            and graph.node_of(element.parent) == self.source
        }
        refined.split_node(self.target, part)
        return refined

    def region(self) -> set[int]:
        return {self.source, self.target}

    def describe(self) -> str:
        return f"b-stabilize {self.source}->{self.target}"


@dataclass(frozen=True)
class FStabilize(Refinement):
    """Make ``source → target`` Forward-stable by splitting the source.

    The source node is partitioned into the elements that own at least one
    child in the target node and those that own none.
    """

    source: int
    target: int

    def apply(self, sketch: TwigXSketch) -> TwigXSketch:
        edge = sketch.graph.edge(self.source, self.target)
        if edge is None:
            raise BuildError(
                f"no edge {self.source}->{self.target} to f-stabilize"
            )
        if edge.forward_stable:
            raise BuildError(
                f"edge {self.source}->{self.target} is already F-stable"
            )
        refined = sketch.copy()
        graph = refined.graph
        part = {
            element.node_id
            for element in graph.node(self.source).extent
            if any(
                graph.node_of(child) == self.target
                for child in element.children
            )
        }
        refined.split_node(self.source, part)
        return refined

    def region(self) -> set[int]:
        return {self.source, self.target}

    def describe(self) -> str:
        return f"f-stabilize {self.source}->{self.target}"


@dataclass(frozen=True)
class EdgeRefine(Refinement):
    """Double the bucket budget of one stored edge histogram.

    Applicable only while the histogram is actually compressed: once the
    engine stores fewer buckets than its budget allows, the distribution
    is represented exactly and more budget cannot help.
    """

    node_id: int
    index: int

    def _histogram(self, sketch: TwigXSketch):
        histograms = sketch.histograms_at(self.node_id)
        if not 0 <= self.index < len(histograms):
            raise BuildError(
                f"node #{self.node_id} has no edge histogram [{self.index}]"
            )
        return histograms[self.index]

    def apply(self, sketch: TwigXSketch) -> TwigXSketch:
        histogram = self._histogram(sketch)
        if histogram.bucket_count() < histogram.budget:
            raise BuildError(
                f"histogram [{self.index}] at #{self.node_id} is already "
                f"exact ({histogram.bucket_count()} buckets under a budget "
                f"of {histogram.budget})"
            )
        refined = sketch.copy()
        rebuilt = refined.make_edge_histogram(
            self.node_id, histogram.scope, histogram.budget * 2
        )
        histograms = list(refined.edge_stats[self.node_id])
        histograms[self.index] = rebuilt
        refined.edge_stats[self.node_id] = histograms
        return refined

    def region(self) -> set[int]:
        return {self.node_id}

    def describe(self) -> str:
        return f"edge-refine @{self.node_id}[{self.index}]"


@dataclass(frozen=True)
class EdgeExpand(Refinement):
    """Add a count dimension to an edge histogram (joint information).

    The histogram at ``(node_id, index)`` absorbs ``new_ref``; when another
    histogram of the node already covers ``new_ref``, its whole scope is
    merged in and the donor disappears — scopes stay disjoint, as the
    summary model requires.  ``new_ref`` may be a backward count
    (``new_ref.source != node_id``) when the configuration enables the
    full model.
    """

    node_id: int
    index: int
    new_ref: EdgeRef

    def apply(self, sketch: TwigXSketch) -> TwigXSketch:
        histograms = sketch.histograms_at(self.node_id)
        if not 0 <= self.index < len(histograms):
            raise BuildError(
                f"node #{self.node_id} has no edge histogram [{self.index}]"
            )
        histogram = histograms[self.index]
        if self.new_ref in histogram.scope:
            raise BuildError(
                f"histogram [{self.index}] at #{self.node_id} already "
                f"covers {self.new_ref}"
            )
        if sketch.graph.edge(self.new_ref.source, self.new_ref.target) is None:
            raise BuildError(
                f"edge-expand references missing edge "
                f"{self.new_ref.source}->{self.new_ref.target}"
            )
        donor_index: Optional[int] = None
        for position, other in enumerate(histograms):
            if position != self.index and self.new_ref in other.scope:
                donor_index = position
                break
        absorbed: tuple[EdgeRef, ...]
        budget = histogram.budget
        if donor_index is None:
            absorbed = (self.new_ref,)
        else:
            donor = histograms[donor_index]
            absorbed = tuple(
                ref for ref in donor.scope if ref not in histogram.scope
            )
            budget = max(budget, donor.budget)
        scope = histogram.scope + absorbed
        if len(scope) > sketch.config.max_histogram_dims:
            raise BuildError(
                f"edge-expand to {len(scope)} dims exceeds the configured "
                f"cap of {sketch.config.max_histogram_dims}"
            )
        refined = sketch.copy()
        merged = refined.make_edge_histogram(self.node_id, scope, budget)
        rebuilt = list(refined.edge_stats[self.node_id])
        rebuilt[self.index] = merged
        if donor_index is not None:
            del rebuilt[donor_index]
        refined.edge_stats[self.node_id] = rebuilt
        return refined

    def region(self) -> set[int]:
        return {self.node_id, self.new_ref.source, self.new_ref.target}

    def describe(self) -> str:
        kind = "forward" if self.new_ref.source == self.node_id else "backward"
        return (
            f"edge-expand @{self.node_id}[{self.index}] "
            f"+{kind} {self.new_ref.source}->{self.new_ref.target}"
        )


@dataclass(frozen=True)
class ValueRefine(Refinement):
    """Double the bucket budget of a node's value histogram."""

    node_id: int

    def apply(self, sketch: TwigXSketch) -> TwigXSketch:
        summary = sketch.value_summary(self.node_id)
        if summary is None:
            raise BuildError(
                f"node #{self.node_id} carries no values to refine"
            )
        if summary.histogram.bucket_count() < summary.budget:
            raise BuildError(
                f"value histogram at #{self.node_id} is already exact"
            )
        refined = sketch.copy()
        rebuilt = refined.make_value_summary(self.node_id, summary.budget * 2)
        if rebuilt is None:  # pragma: no cover - summary existed above
            raise BuildError(f"node #{self.node_id} lost its values")
        refined.value_stats[self.node_id] = rebuilt
        return refined

    def region(self) -> set[int]:
        return {self.node_id}

    def describe(self) -> str:
        return f"value-refine @{self.node_id}"


@dataclass(frozen=True)
class ValueExpand(Refinement):
    """Install an extended value histogram ``H^v(V, C1..Ck)`` at a node.

    ``value_tag`` selects the value dimension (None for the node's own
    values, a child tag otherwise); ``scope`` lists the count dimensions.
    One extended summary per (node, value source) — re-expanding the same
    source is rejected.
    """

    node_id: int
    value_tag: Optional[str]
    scope: tuple[EdgeRef, ...]

    def apply(self, sketch: TwigXSketch) -> TwigXSketch:
        _live_node(sketch, self.node_id)
        for existing in sketch.extended_at(self.node_id):
            if existing.value_tag == self.value_tag:
                raise BuildError(
                    f"node #{self.node_id} already has an extended summary "
                    f"over {self.value_tag!r}"
                )
        refined = sketch.copy()
        try:
            summary = refined.make_extended_summary(
                self.node_id,
                self.value_tag,
                self.scope,
                refined.config.extended_value_buckets,
                refined.config.extended_count_buckets,
            )
        except SynopsisError as error:
            raise BuildError(str(error)) from None
        refined.extended_stats[self.node_id] = (
            refined.extended_at(self.node_id) + [summary]
        )
        return refined

    def region(self) -> set[int]:
        region = {self.node_id}
        for ref in self.scope:
            region.update((ref.source, ref.target))
        return region

    def describe(self) -> str:
        source = self.value_tag or "own-value"
        return f"value-expand @{self.node_id} {source} ({len(self.scope)}d)"


@dataclass(frozen=True)
class ValueSplit(Refinement):
    """Partition a node's extent by a value predicate (DESIGN.md E10).

    With ``child_tag`` set, an element belongs to the first part when any
    of its ``child_tag`` children satisfies the predicate; without it, the
    element's own value is tested.  After the split, each part's ordinary
    edge histograms describe a value-conditioned population — structural
    statistics capture value↔structure correlation.

    A child-tag split also separates the value-carrying children by
    parentage, so each part's ``child_tag`` node gets a value histogram
    conditioned on the predicate — that is what turns the branch-predicate
    match fraction from a population average into (nearly) 0 or 1.
    """

    node_id: int
    predicate: ValuePredicate
    child_tag: Optional[str] = None

    def _matches(self, element) -> bool:
        if self.child_tag is None:
            return self.predicate.matches(element.value)
        return any(
            child.tag == self.child_tag and self.predicate.matches(child.value)
            for child in element.children
        )

    def apply(self, sketch: TwigXSketch) -> TwigXSketch:
        node = _live_node(sketch, self.node_id)
        part = {
            element.node_id
            for element in node.extent
            if self._matches(element)
        }
        if not part or len(part) == node.count:
            raise BuildError(
                f"value-split of #{self.node_id} on "
                f"{self.child_tag or 'value'}{self.predicate.text()} is not "
                f"a proper partition ({len(part)} of {node.count} elements)"
            )
        refined = sketch.copy()
        first, _ = refined.split_node(self.node_id, part)
        if self.child_tag is not None:
            self._split_value_children(refined, first)
        return refined

    def _split_value_children(self, refined: TwigXSketch, first: int) -> None:
        """Separate the ``child_tag`` children of the matching part."""
        part_children = {
            child.node_id
            for element in refined.graph.node(first).extent
            for child in element.children
            if child.tag == self.child_tag
        }
        for child_node in list(refined.graph.nodes_with_tag(self.child_tag)):
            inside = {
                element.node_id
                for element in child_node.extent
                if element.node_id in part_children
            }
            if inside and len(inside) < child_node.count:
                refined.split_node(child_node.node_id, inside)

    def region(self) -> set[int]:
        return {self.node_id}

    def describe(self) -> str:
        where = self.child_tag or "value"
        return f"value-split @{self.node_id} {where}{self.predicate.text()}"


#: Everything XBUILD may propose, in the paper's presentation order.
ALL_REFINEMENTS = (
    BStabilize,
    FStabilize,
    EdgeRefine,
    EdgeExpand,
    ValueRefine,
    ValueExpand,
    ValueSplit,
)
