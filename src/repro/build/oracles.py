"""Truth oracles for XBUILD's marginal-gain measurements (paper §5).

XBUILD scores a candidate refinement by how much it reduces estimation
error on queries sampled around the refinement's region, against an
*oracle* for the true counts:

* :class:`ExactOracle` — evaluates queries on the document.  Exact, and
  cheap at the small query volumes XBUILD samples; this is the default.
* :class:`SketchOracle` — estimates against a large *reference summary*
  (:func:`build_reference_sketch`): exact per-node joint distributions
  over the forward-stable edges, uncompressed value histograms.  Trades a
  little truth for evaluation speed on huge documents, where exact twig
  evaluation would dominate construction time.

Both cache by query text, so re-sampled queries cost nothing.
"""

from __future__ import annotations

from ..doc.tree import DocumentTree
from ..estimation.estimator import TwigEstimator
from ..query.ast import TwigQuery
from ..query.evaluator import count_bindings
from ..resilience.faults import SITE_ORACLE, fault_check
from ..synopsis.distributions import EdgeRef
from ..synopsis.graph import GraphSynopsis, label_split_synopsis
from ..synopsis.summary import TwigXSketch, XSketchConfig

#: bucket budget for reference value histograms — large enough to store
#: realistic value populations exactly
_REFERENCE_VALUE_BUCKETS = 256

#: backstop on reference-synopsis growth during backward bisimulation
_REFERENCE_NODE_CAP = 512


class ExactOracle:
    """True twig counts straight from the document, memoized."""

    def __init__(self, tree: DocumentTree):
        self.tree = tree
        self._cache: dict[str, int] = {}

    def true_count(self, query: TwigQuery) -> int:
        """Exact number of binding tuples of ``query`` in the document."""
        fault_check(SITE_ORACLE)
        key = query.text()
        if key not in self._cache:
            self._cache[key] = count_bindings(query, self.tree)
        return self._cache[key]


def _backward_bisimulation(graph: GraphSynopsis) -> None:
    """Split nodes until every synopsis edge is Backward-stable.

    This is the classic 1-index refinement: elements separate by the
    synopsis node of their parent, to a fixpoint, so each node's extent is
    a single parent-path population (episode-movies apart from top-level
    movies, say).  Partition refinement terminates; the node cap is a
    backstop against pathological documents.
    """
    changed = True
    while changed and graph.node_count < _REFERENCE_NODE_CAP:
        changed = False
        for edge in list(graph.edges.values()):
            if edge.backward_stable or graph.edge(edge.source, edge.target) is None:
                continue
            target = graph.node(edge.target)
            part = {
                element.node_id
                for element in target.extent
                if element.parent is not None
                and graph.node_of(element.parent) == edge.source
            }
            if part and len(part) < target.count:
                graph.split_node(edge.target, part)
                changed = True
                break


def build_reference_sketch(tree: DocumentTree) -> TwigXSketch:
    """A large, high-fidelity summary to serve as an estimation oracle.

    Refines the label-split synopsis to a backward bisimulation (every
    edge B-stable, so parent-path subpopulations are separated), then
    stores one *exact* joint histogram per node covering **all** of its
    outgoing edges — branching-twig correlation, the coarsest summary's
    main blind spot, is represented losslessly.  Size is irrelevant here:
    the reference is scaffolding, never shipped.
    """
    graph = label_split_synopsis(tree)
    _backward_bisimulation(graph)
    config = XSketchConfig(
        engine="exact",
        initial_edge_buckets=64,
        initial_value_buckets=_REFERENCE_VALUE_BUCKETS,
        max_histogram_dims=64,
    )
    sketch = TwigXSketch(graph, config)
    for node in graph.iter_nodes():
        refs = tuple(
            EdgeRef(node.node_id, edge.target)
            for edge in sorted(
                graph.children_of(node.node_id),
                key=lambda edge: edge.child_count,
                reverse=True,
            )
        )
        if refs:
            sketch.edge_stats[node.node_id] = [
                sketch.make_edge_histogram(node.node_id, refs, 64)
            ]
        summary = sketch.make_value_summary(
            node.node_id, _REFERENCE_VALUE_BUCKETS
        )
        if summary is not None:
            sketch.value_stats[node.node_id] = summary
    return sketch


class SketchOracle:
    """Approximate truths from a reference summary, memoized.

    The reference's estimates are far closer to the truth than anything a
    budgeted synopsis produces, which is all the greedy gain comparison
    needs (relative ordering of candidates).
    """

    def __init__(self, tree: DocumentTree):
        self.reference = build_reference_sketch(tree)
        self._estimator = TwigEstimator(self.reference)
        self._cache: dict[str, float] = {}

    def true_count(self, query: TwigQuery) -> float:
        """Reference-summary estimate of the query's selectivity."""
        fault_check(SITE_ORACLE)
        key = query.text()
        if key not in self._cache:
            self._cache[key] = self._estimator.estimate(query)
        return self._cache[key]
