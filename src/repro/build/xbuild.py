"""The XBUILD construction algorithm (paper Section 5).

XBUILD grows a Twig XSKETCH greedily from the label-split synopsis
``S_0(G)``: each round it draws a pool of applicable refinement candidates
(:func:`repro.build.sampling.generate_candidates`), measures the marginal
error reduction of each on a handful of twig queries sampled around the
candidate's region, and applies the candidate with the best
error-reduction-per-byte score.  The loop stops when the synopsis reaches
the byte budget (or candidates dry up).

Determinism: all randomness flows from the ``seed`` argument, so a given
(document, budget, seed) triple always builds the same synopsis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..doc.tree import DocumentTree
from ..errors import BuildError
from ..estimation.estimator import TwigEstimator
from ..synopsis.summary import TwigXSketch, XSketchConfig
from ..workload.metrics import average_relative_error
from .oracles import ExactOracle
from .refinements import Refinement
from .sampling import RegionSampler, generate_candidates

#: rounds without an applicable size-increasing candidate before giving up
_MAX_STALL_ROUNDS = 5

#: hard iteration backstop (well above any realistic budget)
_MAX_STEPS = 2000


@dataclass(frozen=True)
class BuildStep:
    """One applied refinement: its label, the resulting size, its gain.

    The first word of ``description`` is the refinement kind (the CLI
    aggregates on it); ``gain`` is the measured error reduction on the
    sampled queries (possibly ≤ 0 when the step was chosen for growth).
    """

    description: str
    size_bytes: int
    gain: float


@dataclass
class XBuildResult:
    """The constructed synopsis and the refinement trail behind it."""

    sketch: TwigXSketch
    steps: list[BuildStep]


@dataclass
class _Scored:
    """A candidate evaluated against the current sketch."""

    candidate: Refinement
    refined: TwigXSketch
    size_bytes: int
    gain: float
    score: float


class XBuild:
    """Greedy Twig XSKETCH construction.

    Args:
        tree: the document to summarize.
        budget_bytes: target synopsis size (the loop stops at the first
            size at or above it; the last step may overshoot slightly).
        config: synopsis configuration (engine, budgets, backward counts).
        seed: randomness seed for candidate and query sampling.
        sample_queries: queries sampled per refinement region.
        sample_value_probability: chance of value predicates in sampled
            queries — raise it when tuning for value-predicated workloads.
        max_candidates: per-round candidate pool cap.
        oracle: truth oracle; defaults to :class:`ExactOracle` on ``tree``.
        on_step: callback invoked with the growing sketch after each
            applied refinement (the experiment sweep snapshots through it).
    """

    def __init__(
        self,
        tree: DocumentTree,
        budget_bytes: int,
        config: Optional[XSketchConfig] = None,
        *,
        seed: int = 17,
        sample_queries: int = 8,
        sample_value_probability: float = 0.0,
        max_candidates: Optional[int] = None,
        oracle=None,
        on_step: Optional[Callable[[TwigXSketch], None]] = None,
    ):
        self.tree = tree
        self.budget_bytes = budget_bytes
        self.config = config or XSketchConfig()
        self.rng = random.Random(seed)
        self.sample_queries = sample_queries
        self.max_candidates = max_candidates
        self.oracle = oracle if oracle is not None else ExactOracle(tree)
        self.on_step = on_step
        self.sampler = RegionSampler(
            tree, self.rng, value_probability=sample_value_probability
        )

    def run(self) -> XBuildResult:
        """Build the synopsis; sizes along ``steps`` increase monotonically."""
        sketch = TwigXSketch.coarsest(self.tree, self.config)
        steps: list[BuildStep] = []
        size = sketch.size_bytes()
        stall = 0
        while (
            size < self.budget_bytes
            and stall < _MAX_STALL_ROUNDS
            and len(steps) < _MAX_STEPS
        ):
            best = self._best_candidate(sketch, size)
            if best is None:
                stall += 1  # redraw a fresh pool before giving up
                continue
            stall = 0
            sketch = best.refined
            size = best.size_bytes
            steps.append(
                BuildStep(best.candidate.describe(), size, best.gain)
            )
            if self.on_step is not None:
                self.on_step(sketch)
        return XBuildResult(sketch, steps)

    # ------------------------------------------------------------------
    def _best_candidate(
        self, sketch: TwigXSketch, size: int
    ) -> Optional[_Scored]:
        """Evaluate one round's candidate pool; None when nothing grows.

        Only size-increasing candidates qualify (monotone growth toward the
        budget); among them the best error-reduction-per-byte wins, ties
        broken toward the cheaper refinement.
        """
        pool = generate_candidates(sketch, self.rng, self.max_candidates)
        base_estimator = TwigEstimator(sketch)
        # queries, truths, and base error are shared across candidates
        # with the same region — one sampling round per region.
        measured: dict[frozenset, tuple[list, list, float]] = {}
        best: Optional[_Scored] = None
        for candidate in pool:
            try:
                refined = candidate.apply(sketch)
            except BuildError:
                continue
            refined_size = refined.size_bytes()
            delta = refined_size - size
            if delta <= 0:
                continue
            region = frozenset(candidate.region())
            if region not in measured:
                queries = self.sampler.sample_for_regions(
                    sketch, region, queries=self.sample_queries
                )
                truths = [self.oracle.true_count(q) for q in queries]
                base_error = (
                    average_relative_error(
                        [base_estimator.estimate(q) for q in queries], truths
                    )
                    if queries
                    else 0.0
                )
                measured[region] = (queries, truths, base_error)
            queries, truths, base_error = measured[region]
            if queries:
                estimator = TwigEstimator(refined)
                refined_error = average_relative_error(
                    [estimator.estimate(q) for q in queries], truths
                )
                gain = base_error - refined_error
            else:
                gain = 0.0
            score = gain / delta
            if (
                best is None
                or score > best.score
                or (score == best.score and refined_size < best.size_bytes)
            ):
                best = _Scored(candidate, refined, refined_size, gain, score)
        return best


def xbuild(
    tree: DocumentTree,
    budget_bytes: int,
    config: Optional[XSketchConfig] = None,
    **kwargs,
) -> TwigXSketch:
    """Convenience wrapper: run :class:`XBuild` and return the sketch."""
    return XBuild(tree, budget_bytes, config, **kwargs).run().sketch
