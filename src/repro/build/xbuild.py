"""The XBUILD construction algorithm (paper Section 5).

XBUILD grows a Twig XSKETCH greedily from the label-split synopsis
``S_0(G)``: each round it draws a pool of applicable refinement candidates
(:func:`repro.build.sampling.generate_candidates`), measures the marginal
error reduction of each on a handful of twig queries sampled around the
candidate's region, and applies the candidate with the best
error-reduction-per-byte score.  The loop stops when the synopsis reaches
the byte budget (or candidates dry up).

Determinism: all randomness flows from the ``seed`` argument, so a given
(document, budget, seed) triple always builds the same synopsis.

Parallelism (:mod:`repro.parallel`): ``workers=N`` fans each round's
candidate pool out over a pool of worker processes, each holding a tree
replica and a trail-synced copy of the growing sketch.  The master keeps
sole ownership of the random stream — pool generation and region-query
sampling happen master-side in the exact order the serial loop would
perform them — while workers do the RNG-free heavy lifting (refinement
application, sketch re-estimation, truth-oracle evaluation).  Results
merge back in candidate order with the serial tie-breaking rule, so a
parallel build is bit-identical to ``workers=1`` (the determinism tests
prove it).  A cross-round truth cache keyed by query text
(``build_oracle_cache_total{outcome=hit|miss}``) short-circuits repeated
oracle evaluations in both modes.

Resilience (:mod:`repro.resilience`): a build can carry a wall-clock
``deadline`` (or a full :class:`~repro.resilience.guards.Budget`), write a
:class:`~repro.resilience.checkpoint.BuildCheckpoint` every
``checkpoint_every`` applied refinements, and ``resume_from`` such a
checkpoint — the resumed build replays the refinement trail over the
coarsest synopsis and restores the RNG state, so it is bit-identical to
the uninterrupted build.  When a budget runs out the loop returns the
best-so-far sketch with ``truncated=True`` instead of raising.

Observability (:mod:`repro.obs`): the loop records round/refinement/
oracle-call counters, a per-round latency histogram, and ``build_*``
gauges (current size, the sampled-region error after the applied
refinement) into the default metrics registry — or one passed as
``metrics=`` — and, when handed a ``tracer=``, wraps the build, every
round, and every candidate evaluation in spans.  The tracer defaults to
the disabled :data:`~repro.obs.tracing.NULL_TRACER`, so an untraced
build pays one ``if`` per would-be span.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..doc.tree import DocumentTree
from ..errors import BuildError, CheckpointError, ResourceLimitError
from ..estimation.estimator import TwigEstimator
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.tracing import NULL_TRACER, SpanTracer
from ..resilience.checkpoint import (
    BuildCheckpoint,
    config_signature,
    load_checkpoint,
    save_checkpoint,
    tree_fingerprint,
)
from ..resilience.faults import (
    SITE_BUILD_APPLY,
    SITE_BUILD_ROUND,
    SITE_BUILD_STEP,
    fault_check,
)
from ..resilience.guards import Budget
from ..synopsis.persist import sketch_to_dict
from ..synopsis.summary import TwigXSketch, XSketchConfig
from ..workload.metrics import average_relative_error
from .oracles import ExactOracle
from .refinements import Refinement
from .sampling import RegionSampler, generate_candidates

#: default rounds without a size-increasing candidate before giving up
_MAX_STALL_ROUNDS = 5

#: default hard iteration backstop (well above any realistic budget)
_MAX_STEPS = 2000


@dataclass(frozen=True)
class BuildStep:
    """One applied refinement: its label, the resulting size, its gain.

    The first word of ``description`` is the refinement kind (the CLI
    aggregates on it); ``gain`` is the measured error reduction on the
    sampled queries (possibly ≤ 0 when the step was chosen for growth).
    """

    description: str
    size_bytes: int
    gain: float


@dataclass
class XBuildResult:
    """The constructed synopsis and the refinement trail behind it.

    ``truncated`` is True when the build stopped early — deadline or
    resource budget exhausted, or the step backstop hit — in which case
    ``sketch`` is the best synopsis reached so far and ``reason`` says
    what cut the build short (``"completed"`` otherwise).
    """

    sketch: TwigXSketch
    steps: list[BuildStep]
    truncated: bool = False
    reason: str = "completed"


@dataclass
class _Scored:
    """A candidate evaluated against the current sketch.

    ``refined`` is None when the candidate was scored on a worker replica
    (parallel mode); the master re-applies the winning refinement, which
    reproduces the same sketch because refinements are pure functions.
    """

    candidate: Refinement
    refined: Optional[TwigXSketch]
    size_bytes: int
    gain: float
    score: float
    #: sampled-region avg relative error after this refinement (the
    #: ``build_best_error`` gauge when the candidate is applied)
    error: float = 0.0


@dataclass
class _LoopState:
    """The in-flight build state (everything a checkpoint captures)."""

    sketch: TwigXSketch
    steps: list[BuildStep] = field(default_factory=list)
    trail: list[Refinement] = field(default_factory=list)
    stall: int = 0


class XBuild:
    """Greedy Twig XSKETCH construction.

    Args:
        tree: the document to summarize.
        budget_bytes: target synopsis size (the loop stops at the first
            size at or above it; the last step may overshoot slightly).
        config: synopsis configuration (engine, budgets, backward counts).
        seed: randomness seed for candidate and query sampling.
        sample_queries: queries sampled per refinement region.
        sample_value_probability: chance of value predicates in sampled
            queries — raise it when tuning for value-predicated workloads.
        max_candidates: per-round candidate pool cap.
        oracle: truth oracle; defaults to :class:`ExactOracle` on ``tree``.
        on_step: callback invoked with the growing sketch after each
            applied refinement (the experiment sweep snapshots through it).
        max_stall_rounds: rounds without a size-increasing candidate
            before the build concludes it has converged.
        max_steps: hard cap on applied refinements; hitting it flags the
            result ``truncated``.
        deadline: wall-clock budget in seconds — shorthand for passing
            ``guard=Budget(deadline=...)``.
        guard: a full :class:`~repro.resilience.guards.Budget`; overrides
            ``deadline`` when given.
        checkpoint_every: write a checkpoint after every N applied
            refinements (``None`` disables checkpointing).
        checkpoint_path: where periodic checkpoints are saved; without a
            path checkpoints are only kept in-memory (``last_checkpoint``).
        resume_from: a checkpoint path or :class:`BuildCheckpoint` to
            continue from; its identity (document fingerprint, seed,
            budget, config) must match this build or
            :class:`~repro.errors.CheckpointError` is raised.
        metrics: registry the build's counters/gauges/histograms are
            recorded into (default: the process-global registry).
        tracer: span tracer for per-build/round/candidate spans
            (default: the disabled no-op tracer).
        workers: worker processes for candidate probing/scoring and
            truth-oracle evaluation; ``1`` (the default) runs serially.
            Any value builds the bit-identical synopsis.  With a custom
            ``oracle`` the truth evaluations stay on the master (worker
            replicas only know the exact oracle), but probing and scoring
            still fan out.
    """

    def __init__(
        self,
        tree: DocumentTree,
        budget_bytes: int,
        config: Optional[XSketchConfig] = None,
        *,
        seed: int = 17,
        sample_queries: int = 8,
        sample_value_probability: float = 0.0,
        max_candidates: Optional[int] = None,
        oracle=None,
        on_step: Optional[Callable[[TwigXSketch], None]] = None,
        max_stall_rounds: int = _MAX_STALL_ROUNDS,
        max_steps: int = _MAX_STEPS,
        deadline: Optional[float] = None,
        guard: Optional[Budget] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path=None,
        resume_from: Union[None, str, BuildCheckpoint] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        workers: int = 1,
    ):
        if max_stall_rounds < 1:
            raise BuildError("max_stall_rounds must be at least 1")
        if max_steps < 1:
            raise BuildError("max_steps must be at least 1")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise BuildError("checkpoint_every must be at least 1")
        self.tree = tree
        self.budget_bytes = budget_bytes
        self.config = config or XSketchConfig()
        self.seed = seed
        self.rng = random.Random(seed)
        self.sample_queries = sample_queries
        self.max_candidates = max_candidates
        #: with a custom oracle, truth evaluation stays master-side
        self._own_oracle = oracle is None
        self.oracle = oracle if oracle is not None else ExactOracle(tree)
        self.workers = max(1, int(workers))
        #: cross-round truth cache: query text -> exact count
        self._truth_cache: dict[str, float] = {}
        self.on_step = on_step
        self.max_stall_rounds = max_stall_rounds
        self.max_steps = max_steps
        self._guard = guard if guard is not None else Budget(deadline=deadline)
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.resume_from = resume_from
        #: the most recent checkpoint written by this build (or None)
        self.last_checkpoint: Optional[BuildCheckpoint] = None
        self.sampler = RegionSampler(
            tree, self.rng, value_probability=sample_value_probability
        )
        registry = metrics if metrics is not None else default_registry()
        self.metrics = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._rounds = registry.counter(
            "build_rounds_total", "XBUILD rounds executed"
        )
        self._refinements = registry.counter(
            "build_refinements_total",
            "refinements applied, by kind",
            ["kind"],
        )
        self._oracle_calls = registry.counter(
            "build_oracle_calls_total",
            "truth-oracle evaluations during candidate scoring",
        )
        self._oracle_cache = registry.counter(
            "build_oracle_cache_total",
            "cross-round truth-cache lookups, by outcome",
            ["outcome"],
        )
        self._candidates = registry.counter(
            "build_candidates_total",
            "candidates evaluated, by outcome",
            ["outcome"],
        )
        self._size_gauge = registry.gauge(
            "build_size_bytes", "current synopsis size of the build"
        )
        self._error_gauge = registry.gauge(
            "build_best_error",
            "sampled-region avg relative error after the applied refinement",
        )
        self._round_seconds = registry.histogram(
            "build_round_seconds", "wall-clock seconds per XBUILD round"
        )

    def run(self) -> XBuildResult:
        """Build the synopsis; sizes along ``steps`` increase monotonically."""
        state = self._initial_state()
        pool = self._open_pool(state)
        try:
            return self._run_loop(state, pool)
        finally:
            if pool is not None:
                pool.close()

    def _open_pool(self, state: _LoopState):
        """Start the worker pool for ``workers > 1`` (None when serial).

        Each replica gets the tree and the resumed trail, so its sketch
        copy starts at exactly the master's state.
        """
        if self.workers <= 1:
            return None
        from ..parallel.pool import WorkerPool
        from ..parallel.replica import build_replica_factory

        return WorkerPool(
            build_replica_factory,
            {
                "tree": self.tree,
                "config": self.config,
                "trail": list(state.trail),
            },
            workers=self.workers,
        )

    def _run_loop(self, state: _LoopState, pool) -> XBuildResult:
        size = state.sketch.size_bytes()
        truncated = False
        reason = "completed"
        rounds = 0
        self._size_gauge.set(size)
        with self.tracer.span(
            "xbuild.build",
            budget_bytes=self.budget_bytes,
            seed=self.seed,
            workers=self.workers,
        ) as build_span:
            try:
                while (
                    size < self.budget_bytes
                    and state.stall < self.max_stall_rounds
                ):
                    if len(state.steps) >= self.max_steps:
                        truncated = True
                        reason = f"step limit ({self.max_steps}) reached"
                        break
                    self._guard.check_deadline("XBUILD round")
                    fault_check(SITE_BUILD_ROUND)
                    rounds += 1
                    round_started = time.perf_counter()
                    with self.tracer.span(
                        "xbuild.round", round=rounds
                    ) as round_span:
                        best = self._best_candidate(state.sketch, size, pool)
                        if best is None:
                            # redraw a fresh pool before giving up
                            state.stall += 1
                            round_span.annotate(
                                outcome="stall", stall=state.stall
                            )
                        else:
                            state.stall = 0
                            state.sketch = (
                                best.refined
                                if best.refined is not None
                                else best.candidate.apply(state.sketch)
                            )
                            size = best.size_bytes
                            state.steps.append(
                                BuildStep(
                                    best.candidate.describe(), size, best.gain
                                )
                            )
                            state.trail.append(best.candidate)
                            round_span.annotate(
                                outcome="applied",
                                refinement=best.candidate.describe(),
                                size_bytes=size,
                                gain=best.gain,
                            )
                    if pool is not None:
                        # keep every replica's sketch at the master's
                        # version before the next round probes against it
                        pool.broadcast(
                            "advance", None if best is None else best.candidate
                        )
                    self._rounds.inc()
                    self._round_seconds.observe(
                        time.perf_counter() - round_started
                    )
                    if best is None:
                        continue
                    self._refinements.inc(
                        kind=best.candidate.describe().split()[0]
                    )
                    self._size_gauge.set(size)
                    self._error_gauge.set(best.error)
                    self._maybe_checkpoint(state)
                    # after the checkpoint write: a fault here lands exactly
                    # at the boundary the resume tests interrupt at
                    fault_check(SITE_BUILD_STEP)
                    if self.on_step is not None:
                        self.on_step(state.sketch)
            except ResourceLimitError as error:
                # budget exhausted mid-build: checkpoint what we have and
                # return the best-so-far sketch instead of losing the work
                truncated = True
                reason = str(error)
                self._write_checkpoint(state)
            build_span.annotate(
                rounds=rounds,
                steps=len(state.steps),
                size_bytes=size,
                truncated=truncated,
            )
        return XBuildResult(
            state.sketch, state.steps, truncated=truncated, reason=reason
        )

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def _initial_state(self) -> _LoopState:
        """The loop's starting state: coarsest synopsis, or a resumed one."""
        sketch = TwigXSketch.coarsest(self.tree, self.config)
        if self.resume_from is None:
            return _LoopState(sketch)
        checkpoint = (
            self.resume_from
            if isinstance(self.resume_from, BuildCheckpoint)
            else load_checkpoint(self.resume_from)
        )
        checkpoint.verify_compatible(
            seed=self.seed,
            budget_bytes=self.budget_bytes,
            config=config_signature(self.config),
            fingerprint=tree_fingerprint(self.tree),
        )
        trail: list[Refinement] = []
        for refinement in checkpoint.trail:
            try:
                sketch = refinement.apply(sketch)
            except BuildError as exc:
                raise CheckpointError(
                    f"cannot replay checkpointed refinement "
                    f"{refinement.describe()!r}: {exc}"
                ) from exc
            trail.append(refinement)
        steps = [BuildStep(**entry) for entry in checkpoint.steps]
        if checkpoint.rng_state is not None:
            self.rng.setstate(checkpoint.rng_state)
        return _LoopState(sketch, steps, trail, checkpoint.stall)

    def _maybe_checkpoint(self, state: _LoopState) -> None:
        if (
            self.checkpoint_every is not None
            and state.steps
            and len(state.steps) % self.checkpoint_every == 0
        ):
            self._write_checkpoint(state)

    def _write_checkpoint(self, state: _LoopState) -> None:
        checkpoint = BuildCheckpoint(
            seed=self.seed,
            budget_bytes=self.budget_bytes,
            config=config_signature(self.config),
            fingerprint=tree_fingerprint(self.tree),
            trail=list(state.trail),
            steps=[
                {
                    "description": step.description,
                    "size_bytes": step.size_bytes,
                    "gain": step.gain,
                }
                for step in state.steps
            ],
            rng_state=self.rng.getstate(),
            stall=state.stall,
            sketch_payload=sketch_to_dict(state.sketch),
        )
        self.last_checkpoint = checkpoint
        if self.checkpoint_path is not None:
            save_checkpoint(checkpoint, self.checkpoint_path)

    # ------------------------------------------------------------------
    def _truths(self, queries: list) -> list[float]:
        """Truth counts for sampled queries, through the cross-round cache.

        ``build_oracle_calls_total`` counts actual oracle evaluations
        (cache misses); ``build_oracle_cache_total`` counts both outcomes.
        """
        truths = []
        for query in queries:
            text = query.text()
            cached = self._truth_cache.get(text)
            if cached is None:
                self._oracle_cache.inc(outcome="miss")
                self._oracle_calls.inc()
                cached = self.oracle.true_count(query)
                self._truth_cache[text] = cached
            else:
                self._oracle_cache.inc(outcome="hit")
            truths.append(cached)
        return truths

    def _best_candidate(
        self, sketch: TwigXSketch, size: int, pool=None
    ) -> Optional[_Scored]:
        """Evaluate one round's candidate pool; None when nothing grows.

        Only size-increasing candidates qualify (monotone growth toward the
        budget); among them the best error-reduction-per-byte wins, ties
        broken toward the cheaper refinement.  With a worker ``pool`` the
        evaluation fans out (:meth:`_best_candidate_parallel`) but the
        chosen candidate is identical.
        """
        if pool is not None:
            return self._best_candidate_parallel(sketch, size, pool)
        candidates = generate_candidates(sketch, self.rng, self.max_candidates)
        base_estimator = TwigEstimator(sketch)
        # queries, truths, and base error are shared across candidates
        # with the same region — one sampling round per region.
        measured: dict[frozenset, tuple[list, list, float]] = {}
        best: Optional[_Scored] = None
        for candidate in candidates:
            self._guard.check_deadline("XBUILD candidate evaluation")
            fault_check(SITE_BUILD_APPLY)
            with self.tracer.span(
                "xbuild.candidate", refinement=candidate.describe()
            ):
                try:
                    refined = candidate.apply(sketch)
                except BuildError:
                    self._candidates.inc(outcome="inapplicable")
                    continue
                refined_size = refined.size_bytes()
                delta = refined_size - size
                if delta <= 0:
                    self._candidates.inc(outcome="non-growing")
                    continue
                region = frozenset(candidate.region())
                if region not in measured:
                    queries = self.sampler.sample_for_regions(
                        sketch, region, queries=self.sample_queries
                    )
                    truths = self._truths(queries)
                    base_error = (
                        average_relative_error(
                            [base_estimator.estimate(q) for q in queries],
                            truths,
                        )
                        if queries
                        else 0.0
                    )
                    measured[region] = (queries, truths, base_error)
                queries, truths, base_error = measured[region]
                if queries:
                    estimator = TwigEstimator(refined)
                    refined_error = average_relative_error(
                        [estimator.estimate(q) for q in queries], truths
                    )
                    gain = base_error - refined_error
                else:
                    refined_error = 0.0
                    gain = 0.0
                self._candidates.inc(outcome="scored")
                score = gain / delta
                if (
                    best is None
                    or score > best.score
                    or (score == best.score and refined_size < best.size_bytes)
                ):
                    best = _Scored(
                        candidate, refined, refined_size, gain, score,
                        refined_error,
                    )
        return best

    def _best_candidate_parallel(
        self, sketch: TwigXSketch, size: int, pool
    ) -> Optional[_Scored]:
        """The fanned-out round: probe, sample+truth, score, merge.

        Chosen to be bit-identical to the serial path:

        1. **probe** (workers) — every candidate applied on its chunk's
           replica; sizes merge back in candidate order.  Applicability
           and sizes are pure functions of (sketch, refinement), so the
           classification matches serial exactly.
        2. **classify + sample** (master) — walking candidates in pool
           order, the master performs the serial loop's deadline/fault
           checks and samples each region's queries on first encounter —
           the only RNG consumer, in the exact serial order.
        3. **truth** (workers) — uncached query truths evaluate on the
           replicas' exact oracles in one batch (master-side when a
           custom oracle was supplied); hit/miss counters match serial.
        4. **score** (workers, sticky) — each scored candidate routes
           back to the worker that probed it, reusing its cached refined
           sketch; errors merge in candidate order and the serial
           tie-break picks the same winner.
        """
        from ..parallel.pool import split_chunks

        candidates = generate_candidates(sketch, self.rng, self.max_candidates)
        if not candidates:
            return None
        chunks = split_chunks(len(candidates), pool.workers)
        owner = {
            index: worker_id
            for worker_id, chunk in enumerate(chunks)
            for index in chunk
        }
        with self.tracer.span("xbuild.probe", candidates=len(candidates)):
            sizes = pool.run_chunks(
                "probe",
                [
                    [(index, candidates[index]) for index in chunk]
                    for chunk in chunks
                ],
            )

        base_estimator = TwigEstimator(sketch)
        measured: dict[frozenset, list] = {}
        entries: list[tuple[int, Refinement, int, int, frozenset]] = []
        pending: list = []
        pending_texts: set[str] = set()
        for index, candidate in enumerate(candidates):
            self._guard.check_deadline("XBUILD candidate evaluation")
            fault_check(SITE_BUILD_APPLY)
            refined_size = sizes.get(index)
            if refined_size is None:
                self._candidates.inc(outcome="inapplicable")
                continue
            delta = refined_size - size
            if delta <= 0:
                self._candidates.inc(outcome="non-growing")
                continue
            region = frozenset(candidate.region())
            if region not in measured:
                queries = self.sampler.sample_for_regions(
                    sketch, region, queries=self.sample_queries
                )
                measured[region] = [queries, None, 0.0]
                for query in queries:
                    text = query.text()
                    if text in self._truth_cache or text in pending_texts:
                        self._oracle_cache.inc(outcome="hit")
                    else:
                        self._oracle_cache.inc(outcome="miss")
                        pending_texts.add(text)
                        pending.append(query)
            entries.append((index, candidate, refined_size, delta, region))
        if not entries:
            return None

        if pending:
            self._oracle_calls.inc(len(pending))
            with self.tracer.span("xbuild.truth", queries=len(pending)):
                if self._own_oracle:
                    values = pool.run("truth", pending)
                else:
                    values = [self.oracle.true_count(q) for q in pending]
            for query, value in zip(pending, values):
                self._truth_cache[query.text()] = value
        for entry in measured.values():
            queries = entry[0]
            entry[1] = [self._truth_cache[q.text()] for q in queries]
            entry[2] = (
                average_relative_error(
                    [base_estimator.estimate(q) for q in queries], entry[1]
                )
                if queries
                else 0.0
            )

        score_chunks: list[list] = [[] for _ in range(pool.workers)]
        errors: dict[int, float] = {}
        for index, candidate, refined_size, delta, region in entries:
            queries, truths, _ = measured[region]
            if queries:
                score_chunks[owner[index]].append(
                    (index, (candidate, queries, truths))
                )
            else:
                errors[index] = 0.0
        if any(score_chunks):
            with self.tracer.span(
                "xbuild.score", candidates=len(entries)
            ):
                errors.update(pool.run_chunks("score", score_chunks))

        best: Optional[_Scored] = None
        for index, candidate, refined_size, delta, region in entries:
            queries, truths, base_error = measured[region]
            refined_error = errors[index]
            gain = base_error - refined_error if queries else 0.0
            self._candidates.inc(outcome="scored")
            score = gain / delta
            if (
                best is None
                or score > best.score
                or (score == best.score and refined_size < best.size_bytes)
            ):
                best = _Scored(
                    candidate, None, refined_size, gain, score, refined_error
                )
        return best


def xbuild(
    tree: DocumentTree,
    budget_bytes: int,
    config: Optional[XSketchConfig] = None,
    **kwargs,
) -> TwigXSketch:
    """Convenience wrapper: run :class:`XBuild` and return the sketch."""
    return XBuild(tree, budget_bytes, config, **kwargs).run().sketch
