"""Workloads and the evaluation metric (paper Section 6.1).

* :class:`WorkloadGenerator`, :class:`WorkloadSpec` — positive/negative
  twig workloads (P and P+V variants);
* :class:`Workload`, :class:`WorkloadQuery` — generated workloads with
  exact selectivities and Table 2 statistics;
* :func:`average_relative_error`, :func:`sanity_bound` — the error metric
  with the 10th-percentile sanity bound.
"""

from .generator import Workload, WorkloadGenerator, WorkloadQuery, WorkloadSpec
from .metrics import average_relative_error, relative_error, sanity_bound

__all__ = [
    "Workload",
    "WorkloadGenerator",
    "WorkloadQuery",
    "WorkloadSpec",
    "average_relative_error",
    "relative_error",
    "sanity_bound",
]
