"""The paper's evaluation metric (Section 6.1 "Evaluation Metric").

Accuracy is the average *absolute relative error* with a sanity bound:
for a query with true count ``c`` and estimate ``r``, the error is
``|r − c| / max(s, c)`` where the sanity bound ``s`` is the 10th percentile
of the workload's true counts.  The bound avoids artificially high
percentages on low-count queries and makes the metric well-defined for
negative queries (``c = 0``).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import WorkloadError

#: The paper sets s to the 10th percentile of true query counts.
SANITY_PERCENTILE = 10.0


def sanity_bound(
    true_counts: Sequence[float], percentile: float = SANITY_PERCENTILE
) -> float:
    """The ``s`` of the error metric: the given percentile of true counts.

    Zero counts (negative queries) are excluded from the percentile so the
    bound stays meaningful on mixed workloads; an all-zero workload gets a
    bound of 1.
    """
    positive = sorted(c for c in true_counts if c > 0)
    if not positive:
        return 1.0
    rank = max(0, min(len(positive) - 1, math.ceil(percentile / 100.0 * len(positive)) - 1))
    return float(positive[rank])


def relative_error(estimate: float, true_count: float, bound: float) -> float:
    """``|r − c| / max(s, c)`` for one query."""
    if bound <= 0:
        raise WorkloadError("sanity bound must be positive")
    return abs(estimate - true_count) / max(bound, true_count)


def average_relative_error(
    estimates: Sequence[float],
    true_counts: Sequence[float],
    percentile: float = SANITY_PERCENTILE,
    exclude_above: float | None = None,
) -> float:
    """Workload-average absolute relative error.

    Args:
        estimates: one estimate per query.
        true_counts: the exact selectivities, same order.
        percentile: sanity-bound percentile (paper: 10).
        exclude_above: when given, per-query errors above this value are
            dropped before averaging — the paper does exactly this for the
            CST outliers (">1000%") in Figure 9(c).

    Raises:
        WorkloadError: on length mismatch or empty input.
    """
    if len(estimates) != len(true_counts):
        raise WorkloadError(
            f"{len(estimates)} estimates vs {len(true_counts)} true counts"
        )
    if not estimates:
        raise WorkloadError("cannot average over an empty workload")
    bound = sanity_bound(true_counts, percentile)
    errors = [
        relative_error(estimate, truth, bound)
        for estimate, truth in zip(estimates, true_counts)
    ]
    if exclude_above is not None:
        kept = [error for error in errors if error <= exclude_above]
        errors = kept or errors  # never average over nothing
    return sum(errors) / len(errors)
