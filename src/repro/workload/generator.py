"""Twig-query workload generation (paper Section 6.1 "Workload").

The paper evaluates against workloads of 1000 *positive* twig queries
(non-zero selectivity) whose total twig-node count is uniform in [4, 8];
the P workload adds branching predicates, the P+V workload additionally
puts 1–2 value predicates (covering a random 10% slice of the value
domain) on half the queries.  "Negative" workloads (true count zero) are
used for the robustness remark in 6.1.

Positivity is guaranteed by construction: every query is grown around a
concrete *witness* assignment sampled from the document, so at least one
binding tuple exists.  True selectivities are computed with the exact
evaluator once per workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..doc.index import DocumentIndex
from ..doc.node import DocumentNode
from ..doc.tree import DocumentTree
from ..errors import WorkloadError
from ..query.ast import Path, Step, TwigNode, TwigQuery
from ..query.evaluator import count_bindings
from ..query.values import ValuePredicate


@dataclass
class WorkloadQuery:
    """One workload entry: the query and its exact selectivity."""

    query: TwigQuery
    true_count: int


@dataclass
class Workload:
    """A named list of workload queries plus Table 2 statistics."""

    name: str
    queries: list[WorkloadQuery] = field(default_factory=list)

    def average_result(self) -> float:
        """Table 2's "Avg. Result": mean true selectivity."""
        if not self.queries:
            return 0.0
        return sum(q.true_count for q in self.queries) / len(self.queries)

    def average_fanout(self) -> float:
        """Table 2's "Avg. Fanout": mean child count of internal twig nodes."""
        fanouts: list[int] = []
        for entry in self.queries:
            fanouts.extend(entry.query.internal_fanouts())
        return sum(fanouts) / len(fanouts) if fanouts else 0.0

    def true_counts(self) -> list[int]:
        """The exact selectivities, in workload order."""
        return [entry.true_count for entry in self.queries]


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs of the generator.

    ``min_nodes``/``max_nodes`` bound the *total* number of navigation
    steps per query (the paper's 4–8).  ``branch_probability`` converts
    some expansions into branching predicates (P workload);
    ``value_predicates`` enables the P+V behaviour: half the queries get
    1–2 value predicates covering ``value_range_fraction`` of the domain.
    """

    min_nodes: int = 4
    max_nodes: int = 8
    branch_probability: float = 0.3
    descendant_probability: float = 0.1
    value_predicates: bool = False
    value_range_fraction: float = 0.1
    seed: int = 7
    #: maximum children per twig node; 1 produces pure chain (path) queries
    max_children: int = 2


class WorkloadGenerator:
    """Generates positive/negative twig workloads over one document."""

    def __init__(self, tree: DocumentTree, spec: Optional[WorkloadSpec] = None):
        self.tree = tree
        self.spec = spec or WorkloadSpec()
        self.rng = random.Random(self.spec.seed)
        self.index = DocumentIndex(tree)
        self._internal = [
            node for node in tree.iter_nodes() if len(node.children) >= 2
        ]
        if not self._internal:
            raise WorkloadError("document has no internal elements to seed twigs")
        # value domain (min, max) per tag with numeric values
        self._domains: dict[str, tuple[float, float]] = {}
        for tag in tree.tags:
            numeric = [
                e.value
                for e in tree.extent(tag)
                if isinstance(e.value, (int, float))
            ]
            if numeric:
                self._domains[tag] = (min(numeric), max(numeric))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def positive_workload(self, count: int, name: str = "") -> Workload:
        """Generate ``count`` positive queries with exact selectivities."""
        workload = Workload(name or ("P+V" if self.spec.value_predicates else "P"))
        attempts = 0
        while len(workload.queries) < count:
            attempts += 1
            if attempts > 50 * count:
                raise WorkloadError(
                    f"could not generate {count} positive queries "
                    f"(got {len(workload.queries)})"
                )
            query = self._generate_query()
            if query is None:
                continue
            true_count = count_bindings(query, self.tree)
            if true_count <= 0:
                continue  # defensive; witnesses should prevent this
            workload.queries.append(WorkloadQuery(query, true_count))
        return workload

    def negative_workload(self, count: int, name: str = "negative") -> Workload:
        """Generate ``count`` queries with true selectivity zero.

        Each query takes a positive skeleton and retargets one leaf step at
        a tag that never appears under its parent tag (verified through the
        document's tag-pair index), so the zero count needs no evaluation.
        """
        workload = Workload(name)
        all_tags = list(self.tree.tags)
        attempts = 0
        while len(workload.queries) < count:
            attempts += 1
            if attempts > 100 * count:
                raise WorkloadError(f"could not generate {count} negative queries")
            query = self._generate_query()
            if query is None:
                continue
            mutated = self._break_query(query, all_tags)
            if mutated is not None:
                workload.queries.append(WorkloadQuery(mutated, 0))
        return workload

    # ------------------------------------------------------------------
    # positive query construction
    # ------------------------------------------------------------------
    def _generate_query(self) -> Optional[TwigQuery]:
        spec = self.spec
        target = self.rng.randint(spec.min_nodes, spec.max_nodes)
        witness_root = self.rng.choice(self._internal)

        counter = [0]

        def new_node(path: Path) -> TwigNode:
            node = TwigNode(f"t{counter[0]}", path)
            counter[0] += 1
            return node

        root = new_node(Path((Step(witness_root.tag),)))
        size = 1
        # open list of (twig node, witness element) pairs we may expand
        frontier: list[tuple[TwigNode, DocumentNode]] = [(root, witness_root)]
        witnesses: dict[int, DocumentNode] = {id(root): witness_root}

        stall = 0
        while size < target and frontier and stall < 40:
            # Depth bias: half the time continue from the most recent node,
            # which keeps the average internal fanout near the paper's ~2.
            if self.rng.random() < 0.5:
                position = len(frontier) - 1
            else:
                position = self.rng.randrange(len(frontier))
            twig_node, element = frontier[position]
            used_tags = {c.path.steps[0].tag for c in twig_node.children}
            used_tags.update(b.steps[0].tag for b in twig_node.path.last.branches)
            candidates = [
                c for c in element.children if c.tag not in used_tags
            ]
            if not candidates or len(twig_node.children) >= spec.max_children:
                frontier.pop(position)
                continue
            pick = self.rng.choice(candidates)
            roll = self.rng.random()
            if roll < spec.branch_probability:
                if self._add_branch(twig_node, pick):
                    size += 1
                else:
                    stall += 1
                continue
            if (
                roll < spec.branch_probability + spec.descendant_probability
                and pick.children
            ):
                grand = self.rng.choice(pick.children)
                step = Step(grand.tag, axis="descendant")
                node = new_node(Path((step,)))
                twig_node.add_child(node)
                witnesses[id(node)] = grand
                frontier.append((node, grand))
                size += 1
                continue
            node = new_node(Path((Step(pick.tag),)))
            twig_node.add_child(node)
            witnesses[id(node)] = pick
            frontier.append((node, pick))
            size += 1

        if size < self.spec.min_nodes:
            return None
        query = TwigQuery(root)
        if spec.value_predicates and self.rng.random() < 0.5:
            self._add_value_predicates(query, witnesses)
        return query

    def _add_branch(self, twig_node: TwigNode, witness_child: DocumentNode) -> bool:
        """Turn a child expansion into a branching predicate on the node."""
        last = twig_node.path.last
        branch_tags = {b.steps[0].tag for b in last.branches}
        child_tags = {c.path.steps[0].tag for c in twig_node.children}
        if witness_child.tag in branch_tags or witness_child.tag in child_tags:
            return False
        patched = Step(
            last.tag,
            last.axis,
            last.value_pred,
            last.branches + (Path((Step(witness_child.tag),)),),
        )
        twig_node.path = Path(twig_node.path.steps[:-1] + (patched,))
        return True

    def _add_value_predicates(
        self, query: TwigQuery, witnesses: dict[int, DocumentNode]
    ) -> None:
        """Attach 1–2 value predicates on nodes whose witness has a value.

        Numeric witnesses get a closed range covering ``value_range_fraction``
        of the tag's domain and containing the witness value (positivity);
        string witnesses get an equality predicate.
        """
        candidates = [
            node
            for node in query.nodes()
            if witnesses.get(id(node)) is not None
            and witnesses[id(node)].value is not None
            and node.path.last.value_pred is None
        ]
        self.rng.shuffle(candidates)
        for node in candidates[: self.rng.randint(1, 2)]:
            witness = witnesses[id(node)]
            predicate = self._predicate_for(witness)
            last = node.path.last
            patched = Step(last.tag, last.axis, predicate, last.branches)
            node.path = Path(node.path.steps[:-1] + (patched,))

    def _predicate_for(self, witness: DocumentNode) -> ValuePredicate:
        value = witness.value
        if isinstance(value, (int, float)) and witness.tag in self._domains:
            low, high = self._domains[witness.tag]
            width = (high - low) * self.spec.value_range_fraction
            if width <= 0:
                return ValuePredicate("=", value)
            offset = self.rng.uniform(0, width)
            range_low = value - offset
            range_high = range_low + width
            if isinstance(value, int):
                range_low, range_high = int(range_low), int(range_high) + 1
            return ValuePredicate.between(range_low, range_high)
        return ValuePredicate("=", value)

    # ------------------------------------------------------------------
    # negative query construction
    # ------------------------------------------------------------------
    def _break_query(
        self, query: TwigQuery, all_tags: list[str]
    ) -> Optional[TwigQuery]:
        leaves = [node for node in query.nodes() if not node.children]
        self.rng.shuffle(leaves)
        for leaf in leaves:
            if leaf.parent is None:
                continue
            parent_tag = leaf.parent.path.last.tag
            impossible = [
                tag
                for tag in all_tags
                if not self.index.has_pair(parent_tag, tag)
            ]
            if not impossible:
                continue
            bad_tag = self.rng.choice(impossible)
            last = leaf.path.last
            if len(leaf.path) == 1 and last.axis == "child":
                leaf.path = Path((Step(bad_tag),))
                return query
        return None
