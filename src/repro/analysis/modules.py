"""Module discovery and per-module fact extraction.

The analyzer is purely static: it never imports the code it checks.  This
module walks the given roots, maps files to dotted module names by their
``__init__.py`` chains (so ``src/repro/build/xbuild.py`` becomes
``repro.build.xbuild`` regardless of which root was passed), parses each
file once, and extracts the facts every later pass consumes:

* top-level name bindings (definitions, assignments, imports);
* the static ``__all__`` list, when one is declared;
* every import statement, with its scope (module-level or deferred) and
  whether a ``try/except ImportError`` makes it optional.

Directories named in :data:`EXCLUDED_DIRS` (caches, fixtures,
``*.egg-info``) are skipped while walking — but a root passed explicitly
is always analyzed, which is how the test fixture under
``tests/fixtures/`` gets checked without polluting normal runs.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .findings import Finding

#: directory names never descended into while walking a root
EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "node_modules", "fixtures"}
)

_TRY_NODES = (ast.Try,) + (
    (ast.TryStar,) if hasattr(ast, "TryStar") else ()
)

_OPTIONAL_EXCEPTIONS = {"ImportError", "ModuleNotFoundError"}


@dataclass(frozen=True)
class ImportRecord:
    """One ``import``/``from-import`` statement, as written.

    ``module`` is the raw dotted text after ``from`` (empty for
    ``from . import x``); plain ``import a.b`` statements store each alias
    as a name with ``is_from=False``.  Resolution against the discovered
    module set happens later, in :mod:`repro.analysis.contracts`.
    """

    module: str
    names: tuple[tuple[str, int], ...]
    level: int
    line: int
    is_from: bool
    star: bool
    module_scope: bool
    optional: bool


@dataclass
class Module:
    """One discovered source file and the facts extracted from it."""

    name: str
    path: str
    is_package: bool
    bindings: set[str] = field(default_factory=set)
    exports: Optional[list[str]] = None
    exports_line: int = 1
    dynamic_exports: bool = False
    imports: list[ImportRecord] = field(default_factory=list)
    has_star_import: bool = False
    lines: list[str] = field(default_factory=list)
    tree: Optional[ast.Module] = None

    @property
    def package(self) -> str:
        """The package relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""


def _module_name(path: str) -> str:
    """Dotted name from the file's ``__init__.py`` ancestor chain."""
    directory, filename = os.path.split(os.path.abspath(path))
    stem = filename[: -len(".py")]
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
    return ".".join(parts) if parts else stem


def _bind_target(target: ast.expr, names: set[str]) -> None:
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_target(element, names)
    elif isinstance(target, ast.Starred):
        _bind_target(target.value, names)


def _static_strings(node: ast.expr) -> Optional[list[str]]:
    """The literal string elements of a list/tuple, or None if dynamic."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    values = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return values


def _catches_import_error(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    kinds = kind.elts if isinstance(kind, ast.Tuple) else [kind]
    for item in kinds:
        if isinstance(item, ast.Name) and item.id in _OPTIONAL_EXCEPTIONS:
            return True
    return False


class _Extractor:
    """Single pass over a parsed module collecting bindings and imports."""

    def __init__(self, module: Module):
        self.module = module

    def run(self, tree: ast.Module) -> None:
        self._exports(tree)
        self._walk(tree.body, top_level=True, module_scope=True,
                   optional=False)

    def _exports(self, tree: ast.Module) -> None:
        module = self.module
        for statement in tree.body:
            value, targets = None, []
            if isinstance(statement, ast.Assign):
                value, targets = statement.value, statement.targets
            elif isinstance(statement, ast.AugAssign):
                value, targets = statement.value, [statement.target]
            elif isinstance(statement, ast.AnnAssign) and statement.value:
                value, targets = statement.value, [statement.target]
            named_all = any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in targets
            )
            if not named_all:
                continue
            strings = _static_strings(value)
            module.exports_line = statement.lineno
            if strings is None:
                module.dynamic_exports = True
            elif isinstance(statement, ast.AugAssign):
                module.exports = (module.exports or []) + strings
            else:
                module.exports = strings

    def _walk(self, statements: Iterable[ast.stmt], *, top_level: bool,
              module_scope: bool, optional: bool) -> None:
        for statement in statements:
            if isinstance(statement, ast.Import):
                self._record_import(statement, module_scope, optional)
                if top_level:
                    for alias in statement.names:
                        self.module.bindings.add(
                            alias.asname or alias.name.split(".")[0]
                        )
            elif isinstance(statement, ast.ImportFrom):
                self._record_from(statement, module_scope, optional)
                if top_level:
                    for alias in statement.names:
                        if alias.name != "*":
                            self.module.bindings.add(
                                alias.asname or alias.name
                            )
            elif isinstance(statement, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                if top_level:
                    self.module.bindings.add(statement.name)
                self._walk(statement.body, top_level=False,
                           module_scope=False, optional=optional)
            elif isinstance(statement, ast.ClassDef):
                if top_level:
                    self.module.bindings.add(statement.name)
                self._walk(statement.body, top_level=False,
                           module_scope=module_scope, optional=optional)
            elif isinstance(statement, ast.Assign):
                if top_level:
                    for target in statement.targets:
                        _bind_target(target, self.module.bindings)
            elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
                if top_level:
                    _bind_target(statement.target, self.module.bindings)
            elif isinstance(statement, _TRY_NODES):
                guarded = optional or any(
                    _catches_import_error(h) for h in statement.handlers
                )
                self._walk(statement.body, top_level=top_level,
                           module_scope=module_scope, optional=guarded)
                for handler in statement.handlers:
                    self._walk(handler.body, top_level=top_level,
                               module_scope=module_scope, optional=optional)
                self._walk(statement.orelse, top_level=top_level,
                           module_scope=module_scope, optional=optional)
                self._walk(statement.finalbody, top_level=top_level,
                           module_scope=module_scope, optional=optional)
            elif isinstance(statement, (ast.If, ast.For, ast.AsyncFor,
                                        ast.While)):
                self._walk(statement.body, top_level=top_level,
                           module_scope=module_scope, optional=optional)
                self._walk(statement.orelse, top_level=top_level,
                           module_scope=module_scope, optional=optional)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                self._walk(statement.body, top_level=top_level,
                           module_scope=module_scope, optional=optional)

    def _record_import(self, statement: ast.Import, module_scope: bool,
                       optional: bool) -> None:
        self.module.imports.append(ImportRecord(
            module="",
            names=tuple(
                (alias.name, statement.lineno) for alias in statement.names
            ),
            level=0,
            line=statement.lineno,
            is_from=False,
            star=False,
            module_scope=module_scope,
            optional=optional,
        ))

    def _record_from(self, statement: ast.ImportFrom, module_scope: bool,
                     optional: bool) -> None:
        star = any(alias.name == "*" for alias in statement.names)
        if star:
            self.module.has_star_import = True
        self.module.imports.append(ImportRecord(
            module=statement.module or "",
            names=tuple(
                (alias.name, statement.lineno)
                for alias in statement.names if alias.name != "*"
            ),
            level=statement.level,
            line=statement.lineno,
            is_from=True,
            star=star,
            module_scope=module_scope,
            optional=optional,
        ))


def _python_files(root: str) -> list[str]:
    if os.path.isfile(root):
        return [root] if root.endswith(".py") else []
    found: list[str] = []
    for directory, subdirs, files in os.walk(root):
        subdirs[:] = sorted(
            d for d in subdirs
            if d not in EXCLUDED_DIRS and not d.endswith(".egg-info")
        )
        for filename in sorted(files):
            if filename.endswith(".py"):
                found.append(os.path.join(directory, filename))
    return found


def parse_module(path: str) -> tuple[Optional[Module], Optional[Finding]]:
    """Parse one file into a :class:`Module`, or a syntax-error finding."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return None, Finding(path, error.lineno or 1, "syntax-error",
                             str(error.msg))
    module = Module(
        name=_module_name(path),
        path=path,
        is_package=os.path.basename(path) == "__init__.py",
        lines=source.splitlines(),
    )
    _Extractor(module).run(tree)
    module.tree = tree
    return module, None


def discover_modules(
    roots: Iterable[str],
) -> tuple[dict[str, Module], list[Finding]]:
    """All modules reachable from ``roots``, keyed by dotted name.

    Returns the module map plus any syntax-error findings.  When two
    files map to the same dotted name the first root wins — roots are
    processed in the order given.
    """
    modules: dict[str, Module] = {}
    findings: list[Finding] = []
    for root in roots:
        for path in _python_files(root):
            module, finding = parse_module(path)
            if finding is not None:
                findings.append(finding)
            elif module is not None and module.name not in modules:
                modules[module.name] = module
    return modules, findings
