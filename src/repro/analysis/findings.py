"""Finding model and rule registry for the static analyzer.

A :class:`Finding` is one violation at one source location, tagged with a
stable rule identifier from :data:`RULES`.  Rule ids are part of the
tool's contract: tests assert on them, CI logs key on them, and the
``# analysis: ignore[rule]`` suppression syntax names them.
"""

from __future__ import annotations

from dataclasses import dataclass

#: rule id -> one-line description (the analyzer's complete rule surface)
RULES: dict[str, str] = {
    "syntax-error": "file does not parse as Python",
    "missing-module": "import of a repository module that does not exist",
    "missing-name": "from-import of a name its module never defines",
    "bad-export": "__all__ lists a name the module does not bind",
    "unexported-name": "public re-export missing from the package __all__",
    "missing-all": "package __init__ re-exports names without an __all__",
    "import-cycle": "module-level import cycle between repository modules",
    "mutable-default": "mutable default argument (list/dict/set)",
    "stray-print": "print() call in library code",
    "float-count": "float literal where an integer cardinality is required",
}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, rule, message) so sorted findings read in
    file order — the order both renderers emit.
    """

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line: [rule] message`` — the text-mode output line."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready mapping (machine-readable output mode)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }
