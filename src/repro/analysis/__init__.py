"""Static analysis for the repository's own import contracts.

The analyzer is pure stdlib and never imports the code under test: it
parses every module under the given roots with :mod:`ast` and checks

* the **import contract** — every internal import names a module that
  exists and a name that module binds (:mod:`repro.analysis.contracts`);
* the **API surface** — each package ``__all__`` matches its re-exports,
  in both directions;
* a small set of **lint rules** — mutable default arguments, stray
  ``print`` in library code, import cycles, float literals where integer
  cardinalities belong (:mod:`repro.analysis.rules`).

Run as ``python -m repro.analysis src tests`` (or ``repro analyze``);
suppress a line with ``# analysis: ignore[rule]``.
"""

from .contracts import check_cycles, check_imports, check_surface
from .engine import (
    analyze_paths,
    default_roots,
    main,
    render_json,
    render_text,
)
from .findings import RULES, Finding
from .modules import Module, discover_modules, parse_module
from .rules import check_all_rules, check_rules

__all__ = [
    "Finding",
    "Module",
    "RULES",
    "analyze_paths",
    "check_all_rules",
    "check_cycles",
    "check_imports",
    "check_rules",
    "check_surface",
    "default_roots",
    "discover_modules",
    "main",
    "parse_module",
    "render_json",
    "render_text",
]
