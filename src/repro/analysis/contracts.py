"""Import-contract and API-surface checking.

The contract is simple: every import between repository modules must name
a module that exists, and every from-imported name must be something its
module actually binds.  Stdlib and third-party imports are out of scope —
a module counts as *internal* when its top-level package was discovered
under one of the analyzed roots, so ``repro.*`` is checked whenever
``src`` is a root, and test helpers are checked alongside it.

Three passes live here:

* :func:`check_imports` — module existence and name-binding for every
  import statement (the pass that catches a phantom ``repro.build``);
* :func:`check_surface` — ``__all__`` versus actual re-exports for every
  package ``__init__``, in both directions;
* :func:`check_cycles` — module-level import cycles, reported once per
  strongly connected component.
"""

from __future__ import annotations

from typing import Optional

from .findings import Finding
from .modules import ImportRecord, Module


def _internal_tops(modules: dict[str, Module]) -> set[str]:
    return {name.split(".", 1)[0] for name in modules}


def _resolve_base(module: Module, record: ImportRecord) -> Optional[str]:
    """Absolute module the from-import targets, or None when unresolvable."""
    if record.level == 0:
        return record.module
    parts = module.package.split(".") if module.package else []
    if record.level - 1 > len(parts):
        return None
    if record.level > 1:
        parts = parts[: len(parts) - (record.level - 1)]
    base = ".".join(parts)
    if record.module:
        base = f"{base}.{record.module}" if base else record.module
    return base or None


def _exports_name(target: Module, name: str,
                  modules: dict[str, Module]) -> bool:
    """Whether ``from target import name`` can bind statically."""
    if f"{target.name}.{name}" in modules:
        return True  # submodule import
    if name in target.bindings:
        return True
    # a star import or module __getattr__ makes the surface dynamic;
    # stay quiet rather than guess
    return target.has_star_import or "__getattr__" in target.bindings


def check_imports(modules: dict[str, Module]) -> list[Finding]:
    """Verify module existence and name bindings for internal imports."""
    tops = _internal_tops(modules)
    findings: list[Finding] = []
    for module in modules.values():
        for record in module.imports:
            if record.optional:
                continue
            if not record.is_from:
                for dotted, line in record.names:
                    if dotted.split(".", 1)[0] in tops \
                            and dotted not in modules:
                        findings.append(Finding(
                            module.path, line, "missing-module",
                            f"import of '{dotted}', which does not exist",
                        ))
                continue
            base = _resolve_base(module, record)
            if base is None:
                findings.append(Finding(
                    module.path, record.line, "missing-module",
                    "relative import reaches beyond the top-level package",
                ))
                continue
            if base.split(".", 1)[0] not in tops:
                continue
            target = modules.get(base)
            if target is None:
                findings.append(Finding(
                    module.path, record.line, "missing-module",
                    f"from-import of '{base}', which does not exist",
                ))
                continue
            if record.star:
                continue
            for name, line in record.names:
                if not _exports_name(target, name, modules):
                    findings.append(Finding(
                        module.path, line, "missing-name",
                        f"'{base}' does not define '{name}'",
                    ))
    return findings


def _reexported_names(module: Module,
                      modules: dict[str, Module]) -> dict[str, int]:
    """Public names a package ``__init__`` re-exports, with their lines.

    A re-export is a module-scope from-import whose target lives inside
    the package itself (the ``from .sub import Name`` idiom); imports
    from elsewhere are implementation details, not surface.
    """
    names: dict[str, int] = {}
    prefix = module.name + "."
    for record in module.imports:
        if not record.is_from or record.star or not record.module_scope:
            continue
        base = _resolve_base(module, record)
        if base is None or not (base == module.name
                                or base.startswith(prefix)):
            continue
        for name, line in record.names:
            if not name.startswith("_"):
                names.setdefault(name, line)
    return names


def check_surface(modules: dict[str, Module]) -> list[Finding]:
    """Cross-validate each package ``__all__`` against its re-exports."""
    findings: list[Finding] = []
    for module in modules.values():
        if not module.is_package or module.dynamic_exports:
            continue
        reexports = _reexported_names(module, modules)
        if module.exports is None:
            if reexports:
                line = min(reexports.values())
                findings.append(Finding(
                    module.path, line, "missing-all",
                    f"package '{module.name}' re-exports "
                    f"{len(reexports)} public names but declares no "
                    "__all__",
                ))
            continue
        for name in module.exports:
            bound = (name in module.bindings
                     or f"{module.name}.{name}" in modules
                     or module.has_star_import)
            if not bound:
                findings.append(Finding(
                    module.path, module.exports_line, "bad-export",
                    f"__all__ lists '{name}', which '{module.name}' "
                    "does not bind",
                ))
        declared = set(module.exports)
        for name, line in sorted(reexports.items()):
            if name not in declared:
                findings.append(Finding(
                    module.path, line, "unexported-name",
                    f"'{name}' is re-exported but missing from __all__",
                ))
    return findings


def _import_edges(modules: dict[str, Module]) -> dict[str, dict[str, int]]:
    """Module-scope internal import edges: source -> {target: line}."""
    edges: dict[str, dict[str, int]] = {name: {} for name in modules}
    tops = _internal_tops(modules)
    for module in modules.values():
        out = edges[module.name]
        for record in module.imports:
            if not record.module_scope:
                continue
            if not record.is_from:
                for dotted, line in record.names:
                    if dotted in modules:
                        out.setdefault(dotted, line)
                continue
            base = _resolve_base(module, record)
            if base is None or base.split(".", 1)[0] not in tops:
                continue
            if record.star or not record.names:
                if base in modules:
                    out.setdefault(base, record.line)
                continue
            for name, line in record.names:
                target = f"{base}.{name}"
                if target in modules:
                    out.setdefault(target, line)
                elif base in modules:
                    out.setdefault(base, line)
        out.pop(module.name, None)
    return edges


def _strongly_connected(edges: dict[str, dict[str, int]]) -> list[list[str]]:
    """Tarjan's SCC, iterative; components with at least two modules."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(edges[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = low[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(edges[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

    for name in sorted(edges):
        if name not in index:
            strongconnect(name)
    return components


def check_cycles(modules: dict[str, Module]) -> list[Finding]:
    """Report each module-level import cycle once.

    Only module-scope imports create cycle edges: a deferred, inside-a-
    function import is the standard way to break an import cycle, so it
    must not re-create one here.
    """
    edges = _import_edges(modules)
    findings: list[Finding] = []
    for component in _strongly_connected(edges):
        anchor = modules[component[0]]
        members = set(component)
        line = min(
            (l for target, l in edges[anchor.name].items()
             if target in members),
            default=1,
        )
        findings.append(Finding(
            anchor.path, line, "import-cycle",
            "import cycle: " + " -> ".join(component + [component[0]]),
        ))
    return findings
