"""Analyzer driver: discovery, all passes, suppression, rendering.

Run it over the repository roots::

    python -m repro.analysis src tests

Exit status 0 means no findings; 1 means at least one.  ``--json`` emits
a machine-readable list instead of ``path:line: [rule] message`` lines.

Suppression: append ``# analysis: ignore`` to a line to silence every
rule there, or ``# analysis: ignore[rule-a, rule-b]`` to silence only
those rules.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Iterable, Optional

from .contracts import check_cycles, check_imports, check_surface
from .findings import RULES, Finding
from .modules import Module, discover_modules
from .rules import check_all_rules

#: roots analyzed when none are given on the command line
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples")

_SUPPRESSION = re.compile(
    r"#\s*analysis:\s*ignore(?:\[(?P<rules>[\w\-, ]*)\])?"
)


def suppressed(finding: Finding, lines: list[str]) -> bool:
    """Whether the finding's source line carries a matching suppression."""
    if not 1 <= finding.line <= len(lines):
        return False
    match = _SUPPRESSION.search(lines[finding.line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    return finding.rule in {r.strip() for r in rules.split(",") if r.strip()}


def _apply_suppressions(
    findings: Iterable[Finding], modules: dict[str, Module]
) -> list[Finding]:
    by_path = {module.path: module.lines for module in modules.values()}
    return [
        finding for finding in findings
        if not suppressed(finding, by_path.get(finding.path, []))
    ]


def analyze_paths(paths: Iterable[str]) -> list[Finding]:
    """Run every analysis pass over the given roots; sorted findings."""
    modules, findings = discover_modules(paths)
    findings += check_imports(modules)
    findings += check_surface(modules)
    findings += check_cycles(modules)
    findings += check_all_rules(modules)
    return sorted(_apply_suppressions(findings, modules))


def render_text(findings: list[Finding]) -> str:
    """Human-readable report, one line per finding."""
    return "\n".join(finding.format() for finding in findings)


def render_json(findings: list[Finding]) -> str:
    """Machine-readable report: a JSON array of finding objects."""
    return json.dumps([finding.to_dict() for finding in findings], indent=2)


def default_roots() -> list[str]:
    """The standard roots that exist under the current directory."""
    return [root for root in DEFAULT_ROOTS if os.path.isdir(root)]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static import-contract and lint analysis "
                    "for the repro repository.",
        epilog="rules: " + ", ".join(sorted(RULES)),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze "
             f"(default: {' '.join(DEFAULT_ROOTS)}, where present)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit findings as a JSON array",
    )
    return parser


def main(argv: Optional[list[str]] = None, stream=None) -> int:
    """Entry point shared by ``python -m repro.analysis`` and the CLI."""
    stream = sys.stdout if stream is None else stream
    args = build_parser().parse_args(argv)
    paths = args.paths or default_roots()
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        sys.stderr.write(
            "error: no such path: " + ", ".join(missing) + "\n"
        )
        return 2
    findings = analyze_paths(paths)
    report = render_json(findings) if args.json else render_text(findings)
    if report:
        stream.write(report + "\n")
    if findings and not args.json:
        stream.write(f"{len(findings)} finding(s)\n")
    return 1 if findings else 0
