"""Paper-specific lint rules, run per module over its parsed AST.

These are the rules the reproduction has actually been bitten by (or
would be):

* ``mutable-default`` — a ``list``/``dict``/``set`` default argument is
  shared across calls; with frozen-dataclass refinements and memo caches
  everywhere, an aliased default silently corrupts candidate scoring.
* ``stray-print`` — library modules must stay quiet; only the CLI veneer
  (``cli.py``, ``__main__.py``) talks to stdout.
* ``float-count`` — the histogram layer stores integer cardinalities
  (bucket budgets, edge counts); a float literal in one of those slots
  means someone passed a byte budget or an average where a count belongs.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .modules import Module

_MUTABLE_CALLS = {"list", "dict", "set"}

#: histogram-layer operations whose numeric arguments are cardinalities
_COUNT_OPS = {
    "make_edge_histogram",
    "make_value_summary",
    "make_extended_summary",
    "build_value_histogram",
    "edge_histogram_bytes",
    "value_histogram_bytes",
}

#: library modules allowed to print: CLI entry points and rendering shims
_PRINT_EXEMPT_BASENAMES = {"cli", "__main__", "conftest"}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS)


def _callee_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _print_exempt(module: Module) -> bool:
    """Library code only: scripts, tests, and CLI shims may print."""
    if "." not in module.name and not module.is_package:
        return True  # standalone script (examples/, benchmarks/)
    top = module.name.split(".", 1)[0]
    basename = module.name.rsplit(".", 1)[-1]
    return (top == "tests"
            or basename.startswith("test_")
            or basename in _PRINT_EXEMPT_BASENAMES)


def check_rules(module: Module) -> list[Finding]:
    """Run every AST lint rule over one module."""
    if module.tree is None:
        return []
    findings: list[Finding] = []
    print_exempt = _print_exempt(module)
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    findings.append(Finding(
                        module.path, default.lineno, "mutable-default",
                        "mutable default argument is shared across calls; "
                        "use None and create inside",
                    ))
        elif isinstance(node, ast.Call):
            callee = _callee_name(node)
            if (callee == "print"
                    and isinstance(node.func, ast.Name)
                    and not print_exempt):
                findings.append(Finding(
                    module.path, node.lineno, "stray-print",
                    "print() in library code; return or log instead",
                ))
            elif callee in _COUNT_OPS:
                values = list(node.args) + [
                    k.value for k in node.keywords if k.arg is not None
                ]
                for argument in values:
                    if (isinstance(argument, ast.Constant)
                            and isinstance(argument.value, float)):
                        findings.append(Finding(
                            module.path, argument.lineno, "float-count",
                            f"float literal passed to {callee}(); "
                            "cardinalities are integers",
                        ))
    return findings


def check_all_rules(modules: dict[str, Module]) -> list[Finding]:
    """Lint every discovered module."""
    findings: list[Finding] = []
    for module in modules.values():
        findings.extend(check_rules(module))
    return findings
