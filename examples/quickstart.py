"""Quickstart: summarize a document, estimate a twig, compare to truth.

Walks the library's core loop in five steps:

1. parse an XML document into the data-tree model;
2. write a twig query (as an XQuery-style ``for`` clause);
3. evaluate it exactly (the ground truth an optimizer cannot afford);
4. build a Twig XSKETCH with XBUILD under a small byte budget;
5. estimate the selectivity from the synopsis alone.

Run:  python examples/quickstart.py
"""

from repro.build import xbuild
from repro.doc import parse_string
from repro.estimation import TwigEstimator
from repro.query import count_bindings, parse_for_clause
from repro.synopsis import TwigXSketch

DOCUMENT = """
<bib>
  <author><name>Serge</name>
    <paper><title>Regular Path Queries</title><year>1997</year>
           <keyword>paths</keyword></paper>
    <paper><title>Data on the Web</title><year>2000</year>
           <keyword>web</keyword><keyword>semistructured</keyword></paper>
    <book><title>Foundations of Databases</title></book>
  </author>
  <author><name>Mary</name>
    <paper><title>Twig Joins</title><year>2002</year>
           <keyword>twigs</keyword></paper>
  </author>
  <author><name>Dan</name>
    <paper><title>Holistic Joins</title><year>2002</year>
           <keyword>twigs</keyword><keyword>joins</keyword></paper>
  </author>
</bib>
"""


def main() -> None:
    # 1. document
    tree = parse_string(DOCUMENT, name="quickstart")
    print(f"document: {tree.element_count} elements, tags: {', '.join(tree.tags)}")

    # 2. a twig query: authors with a recent paper, paired with the
    #    paper's keywords (the paper's Example 2.1 shape)
    query = parse_for_clause(
        """
        for a in author,
            n in a/name,
            p in a/paper[year > 2000],
            k in p/keyword
        """
    )
    print("\nquery:")
    print(query.text())

    # 3. ground truth
    truth = count_bindings(query, tree)
    print(f"\nexact selectivity (binding tuples): {truth}")

    # 4. the coarsest synopsis vs an XBUILD-refined one
    coarsest = TwigXSketch.coarsest(tree)
    refined = xbuild(tree, budget_bytes=coarsest.size_bytes() + 512, seed=7)
    print(f"\ncoarsest synopsis: {coarsest.size_bytes()} bytes")
    print(f"refined synopsis:  {refined.size_bytes()} bytes")

    # 5. estimates
    for label, sketch in [("coarsest", coarsest), ("refined", refined)]:
        estimate = TwigEstimator(sketch).estimate(query)
        print(f"estimate ({label}): {estimate:.2f}  (truth {truth})")


if __name__ == "__main__":
    main()
