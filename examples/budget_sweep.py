"""Accuracy-for-space: trace XBUILD's error curve on correlated data.

Reproduces the Figure 9(a) methodology on a single data set at example
scale: generate the IMDB-substitute corpus, generate a positive twig
workload with branching predicates, then watch the average relative
error fall as XBUILD grows the synopsis — printing which refinement
operations the marginal-gain criterion picked along the way.

Run:  python examples/budget_sweep.py
"""

from collections import Counter

from repro.build import XBuild
from repro.datasets import generate_imdb
from repro.estimation import TwigEstimator
from repro.synopsis import TwigXSketch
from repro.workload import WorkloadGenerator, WorkloadSpec, average_relative_error


def workload_error(sketch, workload) -> float:
    estimator = TwigEstimator(sketch)
    estimates = [estimator.estimate(entry.query) for entry in workload.queries]
    return average_relative_error(estimates, workload.true_counts())


def main() -> None:
    tree = generate_imdb(10_000, seed=2)
    workload = WorkloadGenerator(tree, WorkloadSpec(seed=31)).positive_workload(60)
    print(
        f"document: {tree.element_count} elements; workload: "
        f"{len(workload.queries)} positive twigs "
        f"(avg result {workload.average_result():,.0f})"
    )

    coarsest = TwigXSketch.coarsest(tree)
    base = coarsest.size_bytes()
    print(f"\n{'size (KB)':>10}  {'error (%)':>10}")
    print(f"{coarsest.size_kb():>10.1f}  {100 * workload_error(coarsest, workload):>10.1f}")

    snapshots = []
    thresholds = [base + step for step in (1024, 2048, 4096, 8192)]

    def on_step(sketch):
        while thresholds and sketch.size_bytes() >= thresholds[0]:
            snapshots.append(sketch.copy())
            thresholds.pop(0)

    result = XBuild(tree, base + 8192, seed=3, on_step=on_step).run()
    for sketch in snapshots:
        error = workload_error(sketch, workload)
        print(f"{sketch.size_kb():>10.1f}  {100 * error:>10.1f}")

    kinds = Counter(step.description.split()[0] for step in result.steps)
    print("\nrefinements applied by marginal gain:")
    for kind, count in kinds.most_common():
        print(f"  {kind:<14} x{count}")


if __name__ == "__main__":
    main()
