"""Graceful degradation: serving estimates from a corrupted synopsis.

Builds a Twig XSKETCH, saves it, then corrupts the saved file the way a
bad disk or a buggy writer would (negated extent counts behind a forged
legacy header).  The walkthrough then shows each layer of the robustness
stack reacting:

1. ``load_sketch(strict=True)`` refuses the file with a typed
   ``SynopsisIntegrityError`` naming the offending payload path.
2. ``validate_sketch`` lists the individual invariant violations a
   fast-mode load smuggled in.
3. ``EstimatorService`` keeps answering anyway: the twig tier fails on
   the broken synopsis, the fallback cascade steps down tier by tier,
   and every response arrives finite, non-negative, and annotated with
   the tier that produced it plus the warnings accumulated on the way.
4. After repeated failures the circuit breaker opens and the broken
   tier is skipped without being retried.

Run:  python examples/serving_degradation.py
"""

import json
import tempfile
from pathlib import Path

from repro.baselines import CorrelatedSuffixTree
from repro.build import xbuild
from repro.datasets import generate_imdb
from repro.errors import SynopsisIntegrityError
from repro.query import parse_for_clause
from repro.serve import EstimatorService
from repro.synopsis import (
    error_violations,
    load_sketch,
    save_sketch,
    sketch_to_dict,
    validate_sketch,
)

BUDGET_BYTES = 3 * 1024


def corrupt_file(sketch, path: Path) -> None:
    """Write a schema-valid but semantically broken synopsis file.

    The payload claims to be a legacy v1 file (no digest), so the
    checksum cannot catch the damage — exactly the situation the
    invariant validator and the serving cascade exist for.
    """
    payload = sketch_to_dict(sketch)
    payload["version"] = 1
    del payload["digest"]
    for node in payload["nodes"]:
        node["count"] = -node["count"]
    path.write_text(json.dumps(payload), encoding="utf8")


def main() -> None:
    tree = generate_imdb(4000, seed=2)
    sketch = xbuild(tree, BUDGET_BYTES, seed=5)
    baseline = CorrelatedSuffixTree.build(tree, 2 * BUDGET_BYTES)
    query = parse_for_clause("for m in movie, a in m/actor")

    with tempfile.TemporaryDirectory() as tmp:
        good_path = Path(tmp) / "good.json"
        bad_path = Path(tmp) / "corrupt.json"
        save_sketch(sketch, good_path)
        corrupt_file(sketch, bad_path)

        print("== 1. strict load rejects the corrupted file ==")
        try:
            load_sketch(bad_path, strict=True)
        except SynopsisIntegrityError as exc:
            message = str(exc)
            print(f"SynopsisIntegrityError: {message[:140]}…"
                  if len(message) > 140 else
                  f"SynopsisIntegrityError: {message}")

        print("\n== 2. the validator itemizes the damage ==")
        damaged = load_sketch(bad_path)  # fast mode: schema checks only
        violations = error_violations(validate_sketch(damaged))
        print(f"{len(violations)} invariant violations, e.g.:")
        for violation in violations[:3]:
            print(f"  [{violation.code}] {violation.path}: "
                  f"{violation.message}")

        print("\n== 3. the service degrades instead of failing ==")
        service = EstimatorService(failure_threshold=2, cooldown=60.0)
        service.register("healthy", path=good_path)
        service.register(
            "damaged", damaged, baseline=baseline, validate=False
        )

        for name in ("healthy", "damaged"):
            response = service.estimate(name, query)
            print(f"sketch={name!r}: estimate={response.estimate:.1f} "
                  f"tier={response.source} degraded={response.degraded}")
            for warning in response.warnings:
                print(f"    warning: {warning}")

        print("\n== 4. repeated failures open the circuit breaker ==")
        service.estimate("damaged", query)  # second twig failure: trips
        response = service.estimate("damaged", query)
        print(f"breaker states: {service.breaker_states('damaged')}")
        skipped = [w for w in response.warnings if "circuit open" in w]
        print(f"tier skipped without retry: {skipped[0]}")
        print(f"still serving: estimate={response.estimate:.1f} "
              f"tier={response.source}")


if __name__ == "__main__":
    main()
