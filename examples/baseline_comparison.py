"""Head-to-head: Twig XSKETCH vs the Correlated Suffix Tree baseline.

Gives both summaries the *same* byte budget over the same document and
the same simple-path twig workload (the Figure 9(c) setting), then prints
per-summary errors and a small per-query sample so the failure mode is
visible: the CST's independence assumption overshoots on correlated
structure, while the XSKETCH spends its budget on exactly those
correlated regions.

Run:  python examples/baseline_comparison.py
"""

from repro.baselines import CorrelatedSuffixTree, CSTEstimator
from repro.build import xbuild
from repro.datasets import generate_imdb
from repro.estimation import TwigEstimator
from repro.workload import (
    WorkloadGenerator,
    WorkloadSpec,
    average_relative_error,
)

BUDGET_BYTES = 6 * 1024


def main() -> None:
    tree = generate_imdb(12_000, seed=2)
    spec = WorkloadSpec(seed=41, branch_probability=0.15, descendant_probability=0.0)
    workload = WorkloadGenerator(tree, spec).positive_workload(80)
    truths = workload.true_counts()

    cst = CorrelatedSuffixTree.build(tree, BUDGET_BYTES)
    cst_estimator = CSTEstimator(cst)
    sketch = xbuild(tree, BUDGET_BYTES, seed=5)
    xsketch_estimator = TwigEstimator(sketch)

    cst_estimates = [cst_estimator.estimate(e.query) for e in workload.queries]
    xsketch_estimates = [
        xsketch_estimator.estimate(e.query) for e in workload.queries
    ]
    cst_error = average_relative_error(cst_estimates, truths, exclude_above=10.0)
    xsketch_error = average_relative_error(xsketch_estimates, truths)

    print(f"budget: {BUDGET_BYTES / 1024:.0f} KB each")
    print(f"CST         size {cst.size_bytes() / 1024:.1f} KB  "
          f"error {100 * cst_error:.1f}%")
    print(f"Twig XSKETCH size {sketch.size_kb():.1f} KB  "
          f"error {100 * xsketch_error:.1f}%")
    print(f"error ratio err_CST / err_X = "
          f"{cst_error / max(xsketch_error, 1e-6):.1f}\n")

    print("worst CST queries (true vs CST vs XSKETCH):")
    scored = sorted(
        zip(workload.queries, cst_estimates, xsketch_estimates),
        key=lambda row: -abs(row[1] - row[0].true_count)
        / max(1, row[0].true_count),
    )
    for entry, cst_estimate, xsketch_estimate in scored[:3]:
        flat = " | ".join(line.strip() for line in entry.query.text().splitlines())
        print(f"  {flat}")
        print(
            f"    true {entry.true_count:>8,}   "
            f"CST {cst_estimate:>10,.0f}   XSKETCH {xsketch_estimate:>10,.0f}"
        )


if __name__ == "__main__":
    main()
