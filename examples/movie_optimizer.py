"""Cardinality estimation inside a toy query optimizer.

The scenario from the paper's introduction: an XQuery processor must pick
a join order for

    for t0 in //movie[/type = X], t1 in t0/actor, t2 in t0/producer

and the right choice depends on how many binding tuples each genre X
produces — Action movies carry large casts, Documentaries tiny ones.
This example builds one Twig XSKETCH over a movie corpus and shows both
sides of the trade: the dominant genres are estimated within tens of
percent (XBUILD's value-splits isolate them), while the rare tail stays
coarse because the sanity-bounded average-error objective — the paper's
own metric — deliberately discounts low-count queries.

Run:  python examples/movie_optimizer.py
"""

from repro.build import xbuild
from repro.datasets import generate_imdb
from repro.doc import text_size_bytes
from repro.estimation import TwigEstimator
from repro.query import count_bindings, parse_for_clause

GENRES = ["Action", "Drama", "Comedy", "Documentary", "Noir"]


def genre_query(genre: str):
    return parse_for_clause(
        f"""
        for t0 in movie[/type = "{genre}"],
            t1 in t0/actor,
            t2 in t0/producer
        """
    )


def main() -> None:
    tree = generate_imdb(15_000, seed=4)
    document_bytes = text_size_bytes(tree)

    sketch = xbuild(
        tree,
        budget_bytes=8 * 1024,
        seed=11,
        sample_value_probability=0.4,  # tune construction for value twigs
    )
    estimator = TwigEstimator(sketch)
    print(
        f"document: {tree.element_count} elements "
        f"({document_bytes / 1024:.0f} KB of XML text); "
        f"synopsis: {sketch.size_kb():.1f} KB "
        f"({100 * sketch.size_bytes() / document_bytes:.1f}% of the text)"
    )

    print(f"\n{'genre':>12}  {'true tuples':>12}  {'estimate':>12}  {'ratio':>6}")
    rows = []
    for genre in GENRES:
        query = genre_query(genre)
        truth = count_bindings(query, tree)
        estimate = estimator.estimate(query)
        rows.append((genre, truth, estimate))
        ratio = estimate / truth if truth else float("inf")
        print(f"{genre:>12}  {truth:>12,}  {estimate:>12,.0f}  {ratio:>6.2f}")

    true_order = [g for g, t, _ in sorted(rows, key=lambda r: -r[1])]
    est_order = [g for g, _, e in sorted(rows, key=lambda r: -r[2])]
    print(f"\ntrue cardinality order:      {' > '.join(true_order)}")
    print(f"estimated cardinality order: {' > '.join(est_order)}")
    top = 3
    verdict = (
        "correct"
        if true_order == est_order
        else f"top-{top} correct"
        if true_order[:top] == est_order[:top]
        else "partially correct"
    )
    print(f"optimizer ranking from the synopsis alone: {verdict}")
    print(
        "(the rare-genre tail stays coarse: the sanity-bounded error "
        "metric that drives XBUILD discounts low-count queries)"
    )


if __name__ == "__main__":
    main()
