"""Other half of the import cycle; defines what a.py imports (mostly)."""

from .a import accumulate

beta = 2


def make_edge_histogram(node, scope, buckets):
    return (node, scope, buckets, accumulate)
