"""Half of an import cycle, plus one of each lint-rule violation."""

from .b import beta, gamma, make_edge_histogram


def accumulate(item, bucket=[]):
    bucket.append(item)
    return bucket


def debug(item):
    print(item)
    return item


def quiet(item):
    print(item)  # analysis: ignore[stray-print]
    return item


def sketch():
    return make_edge_histogram("node", ("edge",), 8.0)
