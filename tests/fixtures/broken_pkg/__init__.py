"""Deliberately broken package exercised by tests/test_analysis.py."""

from .a import accumulate
from .missing import thing

__all__ = ["thing", "phantom"]
