"""Tests for repro.resilience: budgets, retry, fault injection, and the
XBUILD checkpoint/resume protocol (resume must be bit-identical)."""

import json

import pytest

from repro.build.oracles import ExactOracle
from repro.build.refinements import (
    BStabilize,
    EdgeExpand,
    EdgeRefine,
    FStabilize,
    ValueExpand,
    ValueRefine,
    ValueSplit,
)
from repro.build.xbuild import XBuild
from repro.datasets import generate_imdb
from repro.errors import (
    BuildError,
    CheckpointError,
    DeadlineExceeded,
    FaultInjected,
    ParseError,
    ReproError,
    ResourceLimitError,
)
from repro.experiments import ExperimentConfig, run_suite
from repro.experiments.runner import GENERATORS
from repro.query import parse_path, twig
from repro.query.values import ValuePredicate
from repro.resilience import (
    SITE_BUILD_STEP,
    SITE_ORACLE,
    SITE_PARSE,
    Budget,
    BuildCheckpoint,
    Fault,
    FaultPlan,
    RetryPolicy,
    fault_check,
    load_checkpoint,
    refinement_from_dict,
    refinement_to_dict,
    retry,
    save_checkpoint,
)
from repro.resilience.checkpoint import config_signature, tree_fingerprint
from repro.synopsis import TwigXSketch, XSketchConfig
from repro.synopsis.distributions import EdgeRef
from repro.synopsis.persist import sketch_to_dict


class FakeClock:
    """A monotonic clock advanced by hand."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def sketch_key(sketch):
    """Canonical serialization for sketch-identity assertions."""
    return json.dumps(sketch_to_dict(sketch), sort_keys=True)


# ----------------------------------------------------------------------
# guards
# ----------------------------------------------------------------------
class TestBudget:
    def test_deadline_with_fake_clock(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock)
        budget.check_deadline("op")
        clock.advance(4.9)
        assert not budget.expired()
        assert budget.remaining() == pytest.approx(0.1)
        clock.advance(0.2)
        assert budget.expired()
        with pytest.raises(DeadlineExceeded, match="op"):
            budget.check_deadline("op")

    def test_deadline_is_resource_limit_error(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(ResourceLimitError):
            budget.check_deadline()

    def test_no_limits_is_noop(self):
        budget = Budget()
        for _ in range(100):
            budget.check_deadline()
            budget.step()
            budget.charge_bytes(10**9)
        assert budget.remaining() is None

    def test_step_limit(self):
        budget = Budget(max_steps=3)
        assert [budget.step() for _ in range(3)] == [1, 2, 3]
        with pytest.raises(ResourceLimitError, match="step limit"):
            budget.step("loop")

    def test_byte_limit(self):
        budget = Budget(max_bytes=100)
        budget.charge_bytes(60)
        with pytest.raises(ResourceLimitError, match="size limit"):
            budget.charge_bytes(60)

    def test_recursion_limit(self):
        budget = Budget(max_depth=2)
        with budget.recursion():
            with budget.recursion():
                with pytest.raises(ResourceLimitError, match="depth"):
                    with budget.recursion():
                        pass
        # frames unwound: nesting is allowed again
        with budget.recursion() as depth:
            assert depth == 1

    def test_invalid_limit_rejected(self):
        with pytest.raises(ResourceLimitError):
            Budget(deadline=0)
        with pytest.raises(ResourceLimitError):
            Budget(max_steps=-1)

    def test_context_manager_returns_self(self):
        with Budget(max_steps=1) as budget:
            assert isinstance(budget, Budget)


# ----------------------------------------------------------------------
# retry
# ----------------------------------------------------------------------
class TestRetry:
    def test_retries_then_succeeds(self):
        calls = []
        sleeps = []

        @retry(RetryPolicy(attempts=3), sleep=sleeps.append)
        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise BuildError("transient")
            return "ok"

        assert flaky() == "ok"
        assert len(calls) == 3
        assert len(sleeps) == 2

    def test_deterministic_delays(self):
        def delays_of(run):
            sleeps = []
            attempts = []

            @retry(RetryPolicy(attempts=4), seed=7, sleep=sleeps.append)
            def always_fails():
                attempts.append(run)
                raise BuildError("nope")

            with pytest.raises(BuildError):
                always_fails()
            return sleeps

        assert delays_of(1) == delays_of(2)

    def test_give_up_on_deadline(self):
        calls = []

        @retry(RetryPolicy(attempts=5), sleep=lambda s: None)
        def doomed():
            calls.append(1)
            raise DeadlineExceeded("out of time")

        with pytest.raises(DeadlineExceeded):
            doomed()
        assert len(calls) == 1

    def test_non_retryable_propagates_immediately(self):
        calls = []

        @retry(RetryPolicy(attempts=5), sleep=lambda s: None)
        def broken():
            calls.append(1)
            raise ValueError("a bug, not a library failure")

        with pytest.raises(ValueError):
            broken()
        assert len(calls) == 1

    def test_exhausted_attempts_reraise(self):
        @retry(RetryPolicy(attempts=2, base_delay=0.0), sleep=lambda s: None)
        def always_fails():
            raise BuildError("persistent")

        with pytest.raises(BuildError, match="persistent"):
            always_fails()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)

    def test_on_retry_observer(self):
        seen = []

        @retry(
            RetryPolicy(attempts=2),
            sleep=lambda s: None,
            on_retry=lambda i, err, delay: seen.append((i, str(err))),
        )
        def flaky():
            if not seen:
                raise BuildError("first")
            return "ok"

        assert flaky() == "ok"
        assert seen == [(1, "first")]


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultInjected, match="unknown site"):
            FaultPlan(Fault("no.such.site"))

    def test_fires_after_and_times(self):
        plan = FaultPlan(Fault(SITE_PARSE, after=2, times=1))
        with plan.active():
            fault_check(SITE_PARSE)
            fault_check(SITE_PARSE)
            with pytest.raises(FaultInjected):
                fault_check(SITE_PARSE)
            fault_check(SITE_PARSE)  # quota spent
        assert plan.hits[SITE_PARSE] == 4
        assert plan.injected == [(SITE_PARSE, 3)]

    def test_inactive_plan_is_noop(self):
        FaultPlan(Fault(SITE_PARSE))  # never activated
        fault_check(SITE_PARSE)

    def test_probabilistic_faults_are_seeded(self):
        def fire_pattern(seed):
            plan = FaultPlan(
                Fault(SITE_PARSE, probability=0.5, times=None), seed=seed
            )
            pattern = []
            with plan.active():
                for _ in range(20):
                    try:
                        fault_check(SITE_PARSE)
                        pattern.append(False)
                    except FaultInjected:
                        pattern.append(True)
            return pattern

        assert fire_pattern(3) == fire_pattern(3)
        assert any(fire_pattern(3))
        assert not all(fire_pattern(3))

    def test_custom_error_type(self):
        plan = FaultPlan(Fault(SITE_ORACLE, error=OSError, message="disk"))
        with plan.active():
            with pytest.raises(OSError, match="disk"):
                fault_check(SITE_ORACLE)

    def test_parse_site_instrumented(self):
        from repro.doc import parse_string

        with FaultPlan(Fault(SITE_PARSE)).active():
            with pytest.raises(FaultInjected):
                parse_string("<a/>")

    def test_oracle_site_instrumented(self):
        from repro.doc import parse_string

        tree = parse_string("<a><b/></a>")
        oracle = ExactOracle(tree)
        with FaultPlan(Fault(SITE_ORACLE)).active():
            with pytest.raises(FaultInjected):
                oracle.true_count(twig(parse_path("//b")))


# ----------------------------------------------------------------------
# checkpoint serialization
# ----------------------------------------------------------------------
REFINEMENTS = [
    BStabilize(1, 2),
    FStabilize(3, 4),
    EdgeRefine(5, 0),
    EdgeExpand(1, 0, EdgeRef(1, 2)),
    ValueRefine(2),
    ValueExpand(2, "year", (EdgeRef(1, 2), EdgeRef(2, 3))),
    ValueSplit(2, ValuePredicate("range", 1990, 2000), "year"),
    ValueSplit(2, ValuePredicate("=", "Action"), "type"),
]


class TestCheckpointSerialization:
    @pytest.mark.parametrize("refinement", REFINEMENTS, ids=lambda r: r.describe())
    def test_refinement_round_trip(self, refinement):
        payload = json.loads(json.dumps(refinement_to_dict(refinement)))
        assert refinement_from_dict(payload) == refinement

    def test_unknown_kind_rejected(self):
        with pytest.raises(CheckpointError):
            refinement_from_dict({"kind": "Frobnicate"})

    def test_malformed_entry_rejected(self):
        with pytest.raises(CheckpointError):
            refinement_from_dict({"kind": "EdgeExpand", "node_id": 1})

    def _checkpoint(self):
        import random

        rng = random.Random(5)
        rng.random()
        return BuildCheckpoint(
            seed=5,
            budget_bytes=4096,
            config={"engine": "centroid"},
            fingerprint={"name": "t", "element_count": 10},
            trail=list(REFINEMENTS),
            steps=[{"description": "b-stabilize 1->2", "size_bytes": 100,
                    "gain": 0.5}],
            rng_state=rng.getstate(),
            stall=2,
            sketch_payload=None,
        )

    def test_checkpoint_json_round_trip(self):
        checkpoint = self._checkpoint()
        payload = json.loads(json.dumps(checkpoint.to_dict()))
        restored = BuildCheckpoint.from_dict(payload)
        assert restored == checkpoint
        assert isinstance(restored.rng_state, tuple)

    def test_file_round_trip(self, tmp_path):
        checkpoint = self._checkpoint()
        path = tmp_path / "cp.json"
        save_checkpoint(checkpoint, path)
        assert load_checkpoint(path) == checkpoint

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.json")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_wrong_format_and_version(self):
        with pytest.raises(CheckpointError, match="not an XBUILD"):
            BuildCheckpoint.from_dict({"format": "other"})
        payload = self._checkpoint().to_dict()
        payload["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            BuildCheckpoint.from_dict(payload)

    def test_verify_compatible(self):
        checkpoint = self._checkpoint()
        checkpoint.verify_compatible(
            seed=5,
            budget_bytes=4096,
            config={"engine": "centroid"},
            fingerprint={"name": "t", "element_count": 10},
        )
        with pytest.raises(CheckpointError, match="seed"):
            checkpoint.verify_compatible(
                seed=6,
                budget_bytes=4096,
                config={"engine": "centroid"},
                fingerprint={"name": "t", "element_count": 10},
            )

    def test_best_sketch_requires_payload(self):
        with pytest.raises(CheckpointError, match="no sketch payload"):
            self._checkpoint().best_sketch()


# ----------------------------------------------------------------------
# XBUILD resilience: the resume-equivalence invariant
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_tree():
    return generate_imdb(1200, seed=2)


@pytest.fixture(scope="module")
def build_budget(small_tree):
    coarse = TwigXSketch.coarsest(small_tree, XSketchConfig())
    return coarse.size_bytes() + 700


@pytest.fixture(scope="module")
def full_build(small_tree, build_budget):
    return XBuild(small_tree, build_budget, seed=5).run()


class TestXBuildResilience:
    def test_uninterrupted_build_not_truncated(self, full_build):
        assert not full_build.truncated
        assert full_build.reason == "completed"
        assert len(full_build.steps) >= 2  # enough boundaries to interrupt at

    def test_resume_identical_at_every_boundary(
        self, small_tree, build_budget, full_build, tmp_path
    ):
        """Interrupt at each checkpoint boundary; resume must reproduce the
        uninterrupted build bit-for-bit (sketch and step trail)."""
        expected = sketch_key(full_build.sketch)
        for boundary in range(1, len(full_build.steps)):
            path = tmp_path / f"cp-{boundary}.json"
            interrupted = XBuild(
                small_tree,
                build_budget,
                seed=5,
                checkpoint_every=1,
                checkpoint_path=path,
            )
            with FaultPlan(Fault(SITE_BUILD_STEP, after=boundary - 1)).active():
                with pytest.raises(FaultInjected):
                    interrupted.run()
            assert len(interrupted.last_checkpoint.steps) == boundary
            resumed = XBuild(
                small_tree, build_budget, seed=5, resume_from=str(path)
            ).run()
            assert sketch_key(resumed.sketch) == expected, (
                f"resume at boundary {boundary} diverged"
            )
            assert resumed.steps == full_build.steps
            assert not resumed.truncated

    def test_resume_from_in_memory_checkpoint(
        self, small_tree, build_budget, full_build
    ):
        interrupted = XBuild(
            small_tree, build_budget, seed=5, checkpoint_every=1
        )
        with FaultPlan(Fault(SITE_BUILD_STEP)).active():
            with pytest.raises(FaultInjected):
                interrupted.run()
        resumed = XBuild(
            small_tree,
            build_budget,
            seed=5,
            resume_from=interrupted.last_checkpoint,
        ).run()
        assert sketch_key(resumed.sketch) == sketch_key(full_build.sketch)

    def test_checkpoint_best_sketch_matches_build(
        self, small_tree, build_budget
    ):
        build = XBuild(small_tree, build_budget, seed=5, checkpoint_every=1)
        with FaultPlan(Fault(SITE_BUILD_STEP, after=1)).active():
            with pytest.raises(FaultInjected):
                build.run()
        checkpoint = build.last_checkpoint
        sketch = checkpoint.best_sketch()
        assert sketch.size_bytes() == checkpoint.steps[-1]["size_bytes"]

    def test_resume_rejects_mismatched_settings(
        self, small_tree, build_budget, tmp_path
    ):
        path = tmp_path / "cp.json"
        build = XBuild(
            small_tree, build_budget, seed=5, checkpoint_every=1,
            checkpoint_path=path,
        )
        with FaultPlan(Fault(SITE_BUILD_STEP)).active():
            with pytest.raises(FaultInjected):
                build.run()
        with pytest.raises(CheckpointError, match="seed"):
            XBuild(small_tree, build_budget, seed=6, resume_from=str(path))._initial_state()
        with pytest.raises(CheckpointError, match="budget"):
            XBuild(
                small_tree, build_budget + 1, seed=5, resume_from=str(path)
            )._initial_state()

    def test_deadline_returns_truncated_best_so_far(
        self, small_tree, build_budget
    ):
        # a clock that jumps one second per reading: the deadline expires
        # after a handful of checks, without sleeping
        ticks = iter(range(10**6))
        guard = Budget(deadline=10.0, clock=lambda: next(ticks))
        result = XBuild(small_tree, build_budget, seed=5, guard=guard).run()
        assert result.truncated
        assert "deadline" in result.reason
        # the best-so-far sketch is still a valid synopsis
        assert result.sketch.size_bytes() > 0

    def test_step_limit_marks_truncated(self, small_tree, build_budget):
        result = XBuild(
            small_tree, build_budget, seed=5, max_steps=1
        ).run()
        assert result.truncated
        assert "step limit" in result.reason
        assert len(result.steps) == 1

    def test_promoted_limits_keep_their_defaults(self, small_tree):
        build = XBuild(small_tree, 4096)
        assert build.max_stall_rounds == 5
        assert build.max_steps == 2000

    def test_budget_already_met_completes_with_no_steps(self, small_tree):
        coarse = TwigXSketch.coarsest(small_tree, XSketchConfig())
        result = XBuild(
            small_tree, coarse.size_bytes(), seed=5, max_stall_rounds=1
        ).run()
        assert result.steps == []
        assert not result.truncated

    def test_parameter_validation(self, small_tree):
        with pytest.raises(BuildError):
            XBuild(small_tree, 4096, max_stall_rounds=0)
        with pytest.raises(BuildError):
            XBuild(small_tree, 4096, max_steps=0)
        with pytest.raises(BuildError):
            XBuild(small_tree, 4096, checkpoint_every=0)


# ----------------------------------------------------------------------
# suite isolation
# ----------------------------------------------------------------------
TINY = ExperimentConfig(
    scale=900,
    queries=6,
    budget_steps=1,
    budget_stride=512,
    dataset_seeds=(
        ("broken", 1),
        ("tiny", 2),
        ("flaky", 3),
        ("slowpoke", 4),
    ),
)


class TestRunSuite:
    def test_failure_is_isolated(self, monkeypatch):
        def explode(scale, seed=0):
            raise BuildError("generator exploded")

        monkeypatch.setitem(GENERATORS, "broken", explode)
        monkeypatch.setitem(GENERATORS, "tiny", generate_imdb)
        result = run_suite(("broken", "tiny"), kinds=("P",), config=TINY)
        assert result.partial
        assert [e.dataset for e in result.errors] == ["broken"]
        assert result.errors[0].stage == "dataset"
        assert result.errors[0].error_type == "BuildError"
        # the healthy dataset still produced everything
        assert "tiny" in result.sweeps
        assert ("tiny", "P") in result.workloads

    def test_retry_recovers_transient_failure(self, monkeypatch):
        attempts = []

        def flaky(scale, seed=0):
            attempts.append(1)
            if len(attempts) == 1:
                raise BuildError("transient")
            return generate_imdb(scale, seed=seed)

        monkeypatch.setitem(GENERATORS, "flaky", flaky)
        result = run_suite(
            ("flaky",),
            kinds=("P",),
            config=TINY,
            retry_policy=RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0),
        )
        assert len(attempts) == 2
        assert result.errors == []
        assert "flaky" in result.sweeps

    def test_deadline_truncates_sweep_not_suite(self, monkeypatch):
        monkeypatch.setitem(GENERATORS, "slowpoke", generate_imdb)
        result = run_suite(
            ("slowpoke",), kinds=(), config=TINY, deadline=1e-6
        )
        assert result.truncated == ("slowpoke",)
        assert result.partial
        # truncated sweeps still deliver a full-length snapshot tuple
        budgets = TINY.budgets(result.sweeps["slowpoke"][0].size_bytes())
        assert len(result.sweeps["slowpoke"]) == len(budgets)
