"""Tests for the observability layer (repro.obs).

Covers the metrics registry (semantics + a thread-safety hammer), the
span tracer (nesting, JSONL sink, disabled no-op), the estimate-explain
recorder (including the consistency invariant: the recorded per-embedding
values sum to the returned estimate), the exporters/validators, and the
instrumentation hooks threaded through build/estimate/serve/parse.
"""

import json
import math
import threading

import pytest

from repro.build import XBuild
from repro.datasets import figure1_document, generate_imdb
from repro.doc import parse_string
from repro.errors import ReproError
from repro.estimation import PathEstimator, TwigEstimator
from repro.obs import (
    DEFAULT_BUCKETS,
    ExplainRecorder,
    JsonlSink,
    METRICS_SCHEMA,
    MetricsError,
    MetricsRegistry,
    NULL_TRACER,
    SERVE_EVAL_SCHEMA,
    SpanTracer,
    default_registry,
    load_payload,
    render_explanation,
    render_prometheus,
    reset_default_registry,
    validate_metrics_payload,
    validate_payload,
    validate_serve_eval_payload,
    write_export,
)
from repro.obs import explain as explain_mod
from repro.obs.tracing import _NULL_SPAN
from repro.query import parse_for_clause, parse_path
from repro.serve import EstimatorService


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", ["tier"])
        counter.inc(tier="twig")
        counter.inc(3, tier="path")
        assert counter.value(tier="twig") == 1
        assert counter.value(tier="path") == 3
        assert counter.value(tier="cst") == 0.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("n_total", "n")
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_missing_label_rejected(self):
        counter = MetricsRegistry().counter("n_total", "n", ["tier"])
        with pytest.raises(MetricsError):
            counter.inc()
        with pytest.raises(MetricsError):
            counter.inc(tier="twig", extra="x")

    def test_bad_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.counter("bad name", "oops")
        with pytest.raises(MetricsError):
            registry.counter("ok_total", "oops", ["0bad"])


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("level", "level")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13

    def test_labelled(self):
        gauge = MetricsRegistry().gauge("state", "s", ["tier"])
        gauge.set(1, tier="twig")
        gauge.set(0, tier="path")
        assert gauge.value(tier="twig") == 1
        assert gauge.value(tier="path") == 0


class TestHistogram:
    def test_observe_and_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", "latency", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        state = histogram.snapshot_series()
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(6.05)
        # Cumulative counts per upper bound, with the implicit +Inf last.
        assert state["buckets"] == [[0.1, 1], [1.0, 3], ["+Inf", 4]]

    def test_bad_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.histogram("h1_seconds", "h", buckets=(1.0, 1.0))
        with pytest.raises(MetricsError):
            registry.histogram("h2_seconds", "h", buckets=(2.0, 1.0))
        with pytest.raises(MetricsError):
            registry.histogram("h3_seconds", "h", buckets=())
        with pytest.raises(MetricsError):
            registry.histogram("h4_seconds", "h", buckets=(1.0, math.inf))

    def test_non_finite_observation_rejected(self):
        histogram = MetricsRegistry().histogram("h_seconds", "h")
        with pytest.raises(MetricsError):
            histogram.observe(math.nan)

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "a", ["x"])
        second = registry.counter("a_total", "ignored", ["x"])
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a")
        with pytest.raises(MetricsError):
            registry.gauge("a_total", "a")

    def test_labelnames_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a", ["x"])
        with pytest.raises(MetricsError):
            registry.counter("a_total", "a", ["y"])

    def test_metrics_error_is_reproerror(self):
        assert issubclass(MetricsError, ReproError)

    def test_snapshot_shape_and_validation(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a", ["x"]).inc(x="1")
        registry.gauge("g", "g").set(2)
        registry.histogram("h_seconds", "h").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA
        names = [metric["name"] for metric in snapshot["metrics"]]
        assert names == sorted(names)
        assert validate_metrics_payload(snapshot) == []
        # Snapshots are plain data: JSON round-trips losslessly.
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_default_registry_reset(self):
        first = default_registry()
        assert default_registry() is first
        second = reset_default_registry()
        assert second is not first
        assert default_registry() is second

    def test_thread_hammer_exact_counts(self):
        """N threads hammering shared series must lose no increment."""
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", "hammer", ["worker"])
        shared = registry.counter("shared_total", "shared")
        histogram = registry.histogram(
            "hammer_seconds", "hammer", buckets=(0.5,)
        )
        threads, per_thread = 8, 2500
        barrier = threading.Barrier(threads)

        def work(index: int) -> None:
            barrier.wait()
            label = str(index % 2)  # two contended series
            for _ in range(per_thread):
                counter.inc(worker=label)
                shared.inc()
                histogram.observe(0.25)

        pool = [
            threading.Thread(target=work, args=(index,))
            for index in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = threads * per_thread
        assert shared.value() == total
        assert counter.value(worker="0") == total / 2
        assert counter.value(worker="1") == total / 2
        state = histogram.snapshot_series()
        assert state["count"] == total
        assert state["buckets"][-1] == ["+Inf", total]


# ----------------------------------------------------------------------
# Span tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_tracer_returns_shared_null_span(self):
        assert NULL_TRACER.span("anything") is _NULL_SPAN
        with NULL_TRACER.span("anything", key="v") as span:
            span.annotate(more="x")  # must be inert, not raise
        assert len(NULL_TRACER.finished) == 0

    def test_nesting_records_parent_ids(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
                assert inner.parent_id == outer.span_id
            assert tracer.current() is outer
        assert tracer.current() is None
        names = [span.name for span in tracer.finished]
        assert names == ["inner", "outer"]  # inner closes first
        assert all(span.duration >= 0 for span in tracer.finished)

    def test_annotate_and_error_attr(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("risky", stage="x") as span:
                span.annotate(detail="boom")
                raise ValueError("boom")
        finished = tracer.finished[-1]
        assert finished.attrs["stage"] == "x"
        assert finished.attrs["detail"] == "boom"
        assert finished.attrs["error"] == "ValueError"

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with SpanTracer(JsonlSink(path)) as tracer:
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert [line["name"] for line in lines] == ["b", "a"]
        assert lines[0]["parent_id"] == lines[1]["span_id"]
        assert tracer.sink.written == 2

    def test_sink_accepts_plain_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(str(path))
        with tracer.span("only"):
            pass
        tracer.close()
        assert path.exists()

    def test_ring_is_bounded(self):
        tracer = SpanTracer(max_kept=3)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.finished) == 3
        assert [span.name for span in tracer.finished] == ["s7", "s8", "s9"]


# ----------------------------------------------------------------------
# Estimate-explain
# ----------------------------------------------------------------------
class TestExplain:
    def test_enter_exit_depth(self):
        recorder = ExplainRecorder()
        frame = recorder.enter(explain_mod.KIND_EMBEDDING, "e")
        recorder.record(explain_mod.KIND_EXPAND, "child")
        recorder.exit(frame, 4.0)
        recorder.record(explain_mod.KIND_RESULT, "total", value=4.0)
        depths = [event.depth for event in recorder.events]
        assert depths == [0, 1, 0]
        assert recorder.embedding_total() == 4.0

    def test_rendering(self):
        recorder = ExplainRecorder()
        frame = recorder.enter(explain_mod.KIND_EMBEDDING, "root a#1")
        recorder.record(
            explain_mod.KIND_HISTOGRAM, "H[1->2]", "1 points", 2.0
        )
        recorder.exit(frame, 2.0)
        text = render_explanation(recorder)
        assert "embedding: root a#1" in text
        assert "\n  histogram: H[1->2] (1 points) = 2" in text

    def test_twig_explain_consistent_with_estimate(self):
        tree = figure1_document()
        sketch = XBuild(tree, budget_bytes=2048, seed=7).run().sketch
        query = parse_for_clause(
            "for a in author, p in a/paper, y in p/year"
        )
        registry = MetricsRegistry()
        recorder = ExplainRecorder()
        estimator = TwigEstimator(
            sketch, metrics=registry, explain=recorder
        )
        report = estimator.report(query)
        assert recorder.embedding_total() == pytest.approx(
            report.selectivity
        )
        assert recorder.by_kind(explain_mod.KIND_QUERY)
        assert recorder.by_kind(explain_mod.KIND_RESULT)
        assert registry.counter(
            "estimator_estimates_total", "estimates"
        ).value() >= 1
        lookups = registry.get("estimator_lookups_total")
        assert lookups is not None and lookups.series()

    def test_path_explain_records_steps(self):
        tree = figure1_document()
        sketch = XBuild(tree, budget_bytes=2048, seed=7).run().sketch
        recorder = ExplainRecorder()
        estimator = PathEstimator(sketch, explain=recorder)
        total = estimator.estimate(parse_path("//author/paper"))
        assert total > 0
        steps = recorder.by_kind(explain_mod.KIND_STEP)
        assert steps and all(event.value is not None for event in steps)


# ----------------------------------------------------------------------
# Exporters and validators
# ----------------------------------------------------------------------
def _sample_snapshot():
    registry = MetricsRegistry()
    registry.counter("a_total", "a", ["x"]).inc(2, x='va"l\\ue')
    registry.gauge("g", "g").set(1.5)
    registry.histogram("h_seconds", "h", buckets=(0.1, 1.0)).observe(0.2)
    return registry.snapshot()


class TestExport:
    def test_prometheus_rendering(self):
        text = render_prometheus(_sample_snapshot())
        assert "# HELP a_total a" in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{x="va\\"l\\\\ue"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum" in text
        assert "h_seconds_count 1" in text

    def test_registry_render_prometheus_matches_export(self):
        registry = MetricsRegistry()
        registry.gauge("g", "g").set(1)
        assert registry.render_prometheus() == render_prometheus(
            registry.snapshot()
        )

    def test_validate_rejects_corruption(self):
        snapshot = _sample_snapshot()
        assert validate_metrics_payload(snapshot) == []
        snapshot["metrics"][0]["type"] = "mystery"
        problems = validate_metrics_payload(snapshot)
        assert problems and any("mystery" in p for p in problems)
        assert validate_metrics_payload({"schema": "nope"})
        assert validate_metrics_payload([1, 2])

    def test_validate_serve_eval_payload(self):
        payload = {
            "schema": SERVE_EVAL_SCHEMA,
            "requests": [{
                "query": "q",
                "estimate": 1.0,
                "tier": "twig",
                "latency": 0.001,
                "warnings": [],
            }],
            "breakers": {"twig": "closed"},
            "metrics": _sample_snapshot(),
        }
        assert validate_serve_eval_payload(payload) == []
        assert validate_payload(payload) == []
        broken = dict(payload, breakers={"twig": "melted"})
        assert any(
            "melted" in problem
            for problem in validate_serve_eval_payload(broken)
        )
        assert validate_serve_eval_payload(dict(payload, requests=[]))

    def test_write_and_load_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        snapshot = _sample_snapshot()
        write_export(json.dumps(snapshot), str(path))
        assert load_payload(str(path)) == snapshot
        write_export(json.dumps(snapshot), "-")
        out = capsys.readouterr().out
        assert json.loads(out) == snapshot


# ----------------------------------------------------------------------
# Instrumentation hooks across the pipeline
# ----------------------------------------------------------------------
class TestPipelineInstrumentation:
    def test_xbuild_publishes_build_series(self):
        registry = MetricsRegistry()
        tracer = SpanTracer()
        tree = figure1_document()
        result = XBuild(
            tree, budget_bytes=2048, seed=7, metrics=registry, tracer=tracer
        ).run()
        assert result.steps
        rounds = registry.counter("build_rounds_total", "r").value()
        assert rounds >= len(result.steps)
        assert registry.counter(
            "build_oracle_calls_total", "o"
        ).value() > 0
        assert registry.get("build_round_seconds").snapshot_series()[
            "count"
        ] >= len(result.steps)
        names = {span.name for span in tracer.finished}
        assert {"xbuild.build", "xbuild.round", "xbuild.candidate"} <= names

    def test_service_publishes_serve_series(self):
        registry = MetricsRegistry()
        tree = generate_imdb(600, seed=3)
        sketch = XBuild(tree, budget_bytes=2048, seed=3).run().sketch
        service = EstimatorService(metrics=registry)
        service.register("s", sketch)
        query = parse_for_clause("for m in movie, a in m/actor")
        response = service.estimate("s", query)
        assert math.isfinite(response.estimate)
        requests = registry.get("serve_requests_total")
        assert sum(value for _, value in requests.series()) == 1
        latency = registry.get("serve_request_seconds")
        assert latency is not None and latency.series()
        states = {
            (labels["tier"], labels["state"]): value
            for labels, value in registry.get(
                "serve_breaker_state"
            ).series()
        }
        assert states[("twig", "closed")] == 1.0

    def test_parser_counts_documents(self):
        registry = MetricsRegistry()
        parse_string("<a><b>1</b></a>", metrics=registry)
        outcomes = registry.get("doc_parse_total")
        assert outcomes.value(mode="strict", outcome="ok") == 1
        assert registry.get("doc_parse_elements_total").value() == 2
        assert (
            registry.get("doc_parse_bytes_total").value(mode="strict") > 0
        )
