"""Tests for document indexes (repro.doc.index)."""

import pytest

from repro.datasets import figure1_document
from repro.doc import DocumentIndex, build_tree


@pytest.fixture(scope="module")
def index():
    return DocumentIndex(figure1_document())


class TestTagPairs:
    def test_pair_counts(self, index):
        assert index.tag_pairs[("author", "paper")] == 4
        assert index.tag_pairs[("author", "book")] == 2
        assert index.tag_pairs[("paper", "keyword")] == 5

    def test_has_pair(self, index):
        assert index.has_pair("paper", "title")
        assert index.has_pair("book", "title")
        assert not index.has_pair("book", "keyword")

    def test_child_tags(self, index):
        assert index.child_tags("paper") == {"title", "year", "keyword"}
        assert index.child_tags("keyword") == set()

    def test_parent_tags(self, index):
        assert index.parent_tags("title") == {"paper", "book"}
        assert index.parent_tags("bib") == set()


class TestLabelPaths:
    def test_path_counts(self, index):
        assert index.path_count(("bib",)) == 1
        assert index.path_count(("bib", "author")) == 3
        assert index.path_count(("bib", "author", "paper", "title")) == 4
        assert index.path_count(("nope",)) == 0

    def test_distinct_paths_sorted_by_length(self, index):
        paths = index.distinct_paths()
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        assert ("bib",) == paths[0]

    def test_total_mass_equals_elements(self, index):
        total = sum(index.label_paths.values())
        assert total == index.tree.element_count

    def test_elements_delegates_to_extent(self, index):
        assert len(index.elements("paper")) == 4
        assert index.elements("missing") == []


class TestRecursiveDocument:
    def test_nested_tags_counted_per_depth(self):
        tree = build_tree(
            ("doc", [("sec", [("sec", [("sec", ["p"])]), "p"])])
        )
        index = DocumentIndex(tree)
        assert index.tag_pairs[("sec", "sec")] == 2
        assert index.path_count(("doc", "sec")) == 1
        assert index.path_count(("doc", "sec", "sec")) == 1
        assert index.path_count(("doc", "sec", "sec", "sec")) == 1
