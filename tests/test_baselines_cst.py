"""Tests for the CST baseline (suffix trie + maximal-overlap estimation)."""

import pytest

from repro.baselines import TRIE_NODE_BYTES, CorrelatedSuffixTree, CSTEstimator, PathTrie
from repro.datasets import figure1_document, generate_imdb
from repro.errors import EstimationError
from repro.query import count_bindings, parse_for_clause, parse_path, twig


@pytest.fixture(scope="module")
def fig1():
    return figure1_document()


@pytest.fixture(scope="module")
def trie(fig1):
    return PathTrie.from_document(fig1)


class TestPathTrie:
    def test_counts_full_paths(self, trie):
        assert trie.count(("bib", "author")) == 3
        assert trie.count(("bib", "author", "paper")) == 4

    def test_counts_suffixes(self, trie):
        # titles occur under both paper and book
        assert trie.count(("title",)) == 6
        assert trie.count(("paper", "title")) == 4
        assert trie.count(("book", "title")) == 2

    def test_missing_path_is_zero(self, trie):
        assert trie.count(("movie",)) == 0.0
        assert trie.count(("book", "keyword")) == 0.0

    def test_size_accounting(self, trie):
        assert trie.size_bytes() == trie.node_count * TRIE_NODE_BYTES

    def test_max_suffix_limits_depth(self, fig1):
        shallow = PathTrie.from_document(fig1, max_suffix=2)
        assert shallow.count(("bib", "author", "paper")) is None or (
            shallow.count(("bib", "author", "paper")) == 0.0
        )
        assert shallow.count(("author", "paper")) == 4

    def test_pruning_reduces_size(self, fig1):
        full = PathTrie.from_document(fig1)
        pruned = PathTrie.from_document(fig1)
        pruned.prune_to_bytes(full.size_bytes() // 2)
        assert pruned.size_bytes() <= full.size_bytes() // 2
        assert pruned.node_count >= 1

    def test_pruned_lookup_falls_back_to_none(self, fig1):
        pruned = PathTrie.from_document(fig1)
        pruned.prune_to_bytes(5 * TRIE_NODE_BYTES)
        # deep lookups must signal "unknown" (None), not a hard zero
        deep = pruned.count(("bib", "author", "paper", "keyword"))
        assert deep is None or deep >= 0


class TestCSTPathCount:
    def test_exact_when_unpruned(self, fig1):
        summary = CorrelatedSuffixTree.build(fig1, budget_bytes=10_000)
        assert summary.path_count(("bib", "author", "paper")) == 4
        assert summary.path_count(("book", "title")) == 2

    def test_markov_fallback_when_pruned(self, fig1):
        summary = CorrelatedSuffixTree.build(fig1, budget_bytes=30 * TRIE_NODE_BYTES)
        estimate = summary.path_count(("bib", "author", "paper", "keyword"))
        assert estimate >= 0  # composed from shorter suffixes

    def test_conditional_count(self, fig1):
        summary = CorrelatedSuffixTree.build(fig1, budget_bytes=10_000)
        # 4 papers over 3 authors
        assert summary.conditional_count(("author",), "paper") == pytest.approx(4 / 3)

    def test_empty_sequence(self, fig1):
        summary = CorrelatedSuffixTree.build(fig1, budget_bytes=10_000)
        assert summary.path_count(()) == 0.0


class TestCSTEstimator:
    def test_single_path_query(self, fig1):
        summary = CorrelatedSuffixTree.build(fig1, budget_bytes=10_000)
        estimator = CSTEstimator(summary)
        query = twig(parse_path("author/paper/title"))
        assert estimator.estimate(query) == pytest.approx(4.0)

    def test_twig_with_independence(self, fig1):
        summary = CorrelatedSuffixTree.build(fig1, budget_bytes=10_000)
        estimator = CSTEstimator(summary)
        query = parse_for_clause(
            "for a in author, n in a/name, p in a/paper"
        )
        # independence: 3 authors x (3/3 names) x (4/3 papers) = 4
        assert estimator.estimate(query) == pytest.approx(4.0)
        assert count_bindings(query, fig1) == 4

    def test_branch_predicate(self, fig1):
        summary = CorrelatedSuffixTree.build(fig1, budget_bytes=10_000)
        estimator = CSTEstimator(summary)
        query = twig(parse_path("author[book]"))
        # expected books per author = 2/3, clamped as existence prob
        assert estimator.estimate(query) == pytest.approx(2.0)

    def test_zero_for_missing_structure(self, fig1):
        summary = CorrelatedSuffixTree.build(fig1, budget_bytes=10_000)
        estimator = CSTEstimator(summary)
        assert estimator.estimate(twig(parse_path("movie"))) == 0.0
        query = parse_for_clause("for b in book, k in b/keyword")
        assert estimator.estimate(query) == 0.0

    def test_descendant_rejected(self, fig1):
        summary = CorrelatedSuffixTree.build(fig1, budget_bytes=10_000)
        estimator = CSTEstimator(summary)
        with pytest.raises(EstimationError):
            estimator.estimate(twig(parse_path("//title")))

    def test_value_predicate_rejected(self, fig1):
        summary = CorrelatedSuffixTree.build(fig1, budget_bytes=10_000)
        estimator = CSTEstimator(summary)
        with pytest.raises(EstimationError):
            estimator.estimate(twig(parse_path("year{>2000}")))


class TestCSTOnCorrelatedData:
    def test_degrades_on_correlated_twigs(self):
        """The correlated actor/producer counts hurt the independence-based
        CST more than a factor-2 error on genre-conditioned twigs."""
        tree = generate_imdb(5000, seed=2)
        summary = CorrelatedSuffixTree.build(tree, budget_bytes=100_000)
        estimator = CSTEstimator(summary)
        query = parse_for_clause(
            "for m in movie[narrator], a in m/actor, k in m/keyword"
        )
        truth = count_bindings(query, tree)
        estimate = estimator.estimate(query)
        assert truth > 0
        ratio = estimate / truth
        assert ratio > 2.0 or ratio < 0.5
