"""Direct unit tests for the TREEPARSE algorithm (repro.estimation.treeparse)."""

import pytest

from repro.datasets import figure1_document
from repro.estimation import enumerate_embeddings, tree_parse
from repro.query import parse_for_clause, parse_path, twig
from repro.synopsis import EdgeRef, TwigXSketch, XSketchConfig


@pytest.fixture()
def sketch():
    return TwigXSketch.coarsest(figure1_document(), XSketchConfig(engine="exact"))


def nid(sketch, tag):
    return sketch.graph.nodes_with_tag(tag)[0].node_id


def plan_for(sketch, query_text):
    query = parse_for_clause(query_text)
    (embedding,) = enumerate_embeddings(query, sketch.graph)
    return embedding, tree_parse(embedding, sketch)


class TestSets:
    def test_leaf_plans_empty(self, sketch):
        embedding, plans = plan_for(sketch, "for a in author, n in a/name")
        leaf = embedding.root.children[0]
        plan = plans[id(leaf)]
        assert not plan.uses
        assert not plan.uncovered
        assert not plan.covered_refs

    def test_covered_child_in_expansion(self, sketch):
        embedding, plans = plan_for(sketch, "for a in author, n in a/name")
        plan = plans[id(embedding.root)]
        assert len(plan.uses) == 1
        (use,) = plan.uses
        (dim,) = use.expansion
        assert use.histogram.scope[dim] == EdgeRef(
            nid(sketch, "author"), nid(sketch, "name")
        )
        assert plan.covered_refs == {use.histogram.scope[dim]}

    def test_uncovered_child_in_u_set(self, sketch):
        # A→B (book) is not F-stable, so the coarsest synopsis stores no
        # histogram for it: the book child must land in U.
        embedding, plans = plan_for(sketch, "for a in author, b in a/book")
        plan = plans[id(embedding.root)]
        assert [c.node_id for c in plan.uncovered] == [nid(sketch, "book")]

    def test_backward_condition_set(self, sketch):
        author = nid(sketch, "author")
        paper = nid(sketch, "paper")
        sketch.edge_stats[paper] = [
            sketch.make_edge_histogram(
                paper,
                (EdgeRef(paper, nid(sketch, "keyword")), EdgeRef(author, paper)),
                buckets=8,
            )
        ]
        embedding, plans = plan_for(
            sketch, "for a in author, p in a/paper, k in p/keyword"
        )
        paper_node = embedding.root.children[0]
        plan = plans[id(paper_node)]
        (use,) = plan.uses
        assert list(use.conditions.values()) == [EdgeRef(author, paper)]

    def test_backward_without_cover_is_marginalized(self, sketch):
        # same histogram, but the query never counts A→P upstream: the
        # backward dim must NOT appear in D (it gets marginalized away)
        author = nid(sketch, "author")
        paper = nid(sketch, "paper")
        sketch.edge_stats[paper] = [
            sketch.make_edge_histogram(
                paper,
                (EdgeRef(paper, nid(sketch, "keyword")), EdgeRef(author, paper)),
                buckets=8,
            )
        ]
        query = twig(parse_path("paper"), parse_path("keyword"))
        (embedding,) = enumerate_embeddings(query, sketch.graph)
        plans = tree_parse(embedding, sketch)
        (use,) = plans[id(embedding.root)].uses
        assert not use.conditions
        assert use.kept_dimensions() == [0]


class TestBranchConditioning:
    def test_single_alternative_branch_absorbed(self, sketch):
        paper = nid(sketch, "paper")
        year = nid(sketch, "year")
        sketch.edge_stats[paper] = [
            sketch.make_edge_histogram(
                paper,
                (EdgeRef(paper, nid(sketch, "keyword")), EdgeRef(paper, year)),
                buckets=8,
            )
        ]
        query = twig(parse_path("paper[year]"), parse_path("keyword"))
        (embedding,) = enumerate_embeddings(query, sketch.graph)
        plans = tree_parse(embedding, sketch)
        plan = plans[id(embedding.root)]
        assert plan.absorbed_branches == {0}
        (use,) = plan.uses
        assert len(use.branch_conditions) == 1

    def test_conditioning_disabled(self, sketch):
        paper = nid(sketch, "paper")
        sketch.edge_stats[paper] = [
            sketch.make_edge_histogram(
                paper,
                (
                    EdgeRef(paper, nid(sketch, "keyword")),
                    EdgeRef(paper, nid(sketch, "year")),
                ),
                buckets=8,
            )
        ]
        query = twig(parse_path("paper[year]"), parse_path("keyword"))
        (embedding,) = enumerate_embeddings(query, sketch.graph)
        plans = tree_parse(embedding, sketch, branch_conditioning=False)
        plan = plans[id(embedding.root)]
        assert not plan.absorbed_branches
        (use,) = plan.uses
        assert not use.branch_conditions

    def test_duplicate_child_and_branch_not_double_assigned(self, sketch):
        # the same edge used by a child variable keeps priority; the
        # branch falls back to independent handling
        query = twig(parse_path("paper[title]"), parse_path("title"))
        (embedding,) = enumerate_embeddings(query, sketch.graph)
        plans = tree_parse(embedding, sketch)
        plan = plans[id(embedding.root)]
        for use in plan.uses:
            overlap = set(use.expansion) & set(use.branch_conditions)
            assert not overlap


class TestBranchConditioningEffect:
    def test_narrator_twig_estimated_exactly(self):
        """A joint (actor, keyword, narrator) histogram plus branch
        conditioning answers the correlated movie[narrator] twig exactly,
        where branch independence overestimates by more than an order of
        magnitude (EXPERIMENTS.md E11)."""
        from repro.datasets import generate_imdb
        from repro.estimation import TwigEstimator
        from repro.query import count_bindings, parse_for_clause

        tree = generate_imdb(6000, seed=2)
        sketch = TwigXSketch.coarsest(tree, XSketchConfig(engine="exact"))
        movie = nid(sketch, "movie")
        scope = tuple(
            EdgeRef(movie, nid(sketch, tag))
            for tag in ("actor", "keyword", "narrator")
        )
        sketch.edge_stats[movie] = [
            sketch.make_edge_histogram(movie, scope, buckets=64)
        ]
        query = parse_for_clause(
            "for m in movie[narrator], a in m/actor, k in m/keyword"
        )
        truth = count_bindings(query, tree)
        conditioned = TwigEstimator(sketch, branch_conditioning=True)
        independent = TwigEstimator(sketch, branch_conditioning=False)
        assert conditioned.estimate(query) == pytest.approx(truth, rel=0.01)
        assert independent.estimate(query) > truth * 10
