"""Tests for synopsis persistence (repro.synopsis.persist)."""

import json

import pytest

from repro.build import ValueExpand, xbuild
from repro.datasets import figure1_document, generate_imdb, movie_document
from repro.errors import SynopsisError, SynopsisIntegrityError
from repro.estimation import PathEstimator, TwigEstimator
from repro.query import parse_for_clause, parse_path, twig
from repro.synopsis import (
    FORMAT_VERSION,
    EdgeRef,
    TwigXSketch,
    XSketchConfig,
    load_sketch,
    payload_digest,
    save_sketch,
    sketch_from_dict,
    sketch_to_dict,
    validate_sketch,
)


@pytest.fixture(scope="module")
def built_sketch():
    tree = generate_imdb(3000, seed=2)
    sketch = xbuild(tree, budget_bytes=3 * 1024, seed=3)
    # include an extended summary so every stat kind round-trips
    movie = sketch.graph.nodes_with_tag("movie")[0].node_id
    actor_nodes = [
        e.target
        for e in sketch.graph.children_of(movie)
        if sketch.graph.node(e.target).tag == "actor"
    ]
    if actor_nodes:
        sketch = ValueExpand(
            movie, "type", (EdgeRef(movie, actor_nodes[0]),)
        ).apply(sketch)
    return sketch


class TestRoundTrip:
    def test_json_serializable(self, built_sketch):
        payload = sketch_to_dict(built_sketch)
        text = json.dumps(payload)
        assert sketch_from_dict(json.loads(text)).graph.node_count == (
            built_sketch.graph.node_count
        )

    def test_graph_preserved(self, built_sketch):
        loaded = sketch_from_dict(sketch_to_dict(built_sketch))
        assert loaded.graph.node_count == built_sketch.graph.node_count
        assert loaded.graph.edge_count == built_sketch.graph.edge_count
        for node in built_sketch.graph.iter_nodes():
            frozen = loaded.graph.node(node.node_id)
            assert frozen.tag == node.tag
            assert frozen.count == node.count
        for key, edge in built_sketch.graph.edges.items():
            frozen_edge = loaded.graph.edge(*key)
            assert frozen_edge.child_count == edge.child_count
            assert frozen_edge.backward_stable == edge.backward_stable
            assert frozen_edge.forward_stable == edge.forward_stable

    def test_size_accounting_preserved(self, built_sketch):
        loaded = sketch_from_dict(sketch_to_dict(built_sketch))
        assert loaded.size_bytes() == built_sketch.size_bytes()

    def test_estimates_identical(self, built_sketch):
        loaded = sketch_from_dict(sketch_to_dict(built_sketch))
        queries = [
            parse_for_clause("for m in movie, a in m/actor, k in m/keyword"),
            parse_for_clause(
                'for m in movie[/type = "Action"], a in m/actor'
            ),
            twig(parse_path("movie[narrator]")),
            twig(parse_path("series/episode/movie")),
            parse_for_clause("for m in movie[year > 1990], a in m/actor"),
        ]
        original = TwigEstimator(built_sketch)
        reloaded = TwigEstimator(loaded)
        for query in queries:
            assert reloaded.estimate(query) == pytest.approx(
                original.estimate(query)
            )

    def test_path_estimator_works_on_loaded(self, built_sketch):
        loaded = sketch_from_dict(sketch_to_dict(built_sketch))
        path = parse_path("movie/actor")
        assert PathEstimator(loaded).estimate(path) == pytest.approx(
            PathEstimator(built_sketch).estimate(path)
        )


class TestFiles:
    def test_save_and_load(self, built_sketch, tmp_path):
        path = tmp_path / "synopsis.json"
        save_sketch(built_sketch, path)
        loaded = load_sketch(path)
        assert loaded.size_bytes() == built_sketch.size_bytes()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SynopsisError):
            load_sketch(tmp_path / "nope.json")

    def test_load_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf8")
        with pytest.raises(SynopsisError):
            load_sketch(path)

    def test_version_check(self, built_sketch):
        payload = sketch_to_dict(built_sketch)
        payload["version"] = 999
        with pytest.raises(SynopsisError):
            sketch_from_dict(payload)


class TestIntegrity:
    def test_payload_carries_digest_and_version(self, built_sketch):
        payload = sketch_to_dict(built_sketch)
        assert payload["version"] == FORMAT_VERSION
        assert payload["digest"] == payload_digest(payload)

    def test_digest_stable_across_json_round_trip(self, built_sketch):
        payload = sketch_to_dict(built_sketch)
        reloaded = json.loads(json.dumps(payload))
        assert payload_digest(reloaded) == payload["digest"]

    def test_strict_round_trip_clean(self, built_sketch, tmp_path):
        path = tmp_path / "synopsis.json"
        save_sketch(built_sketch, path)
        loaded = load_sketch(path, strict=True)
        assert validate_sketch(loaded) == []
        assert sketch_to_dict(loaded)["digest"] == (
            sketch_to_dict(built_sketch)["digest"]
        )

    def test_tampered_content_raises_integrity_error(self, built_sketch):
        payload = json.loads(json.dumps(sketch_to_dict(built_sketch)))
        payload["nodes"][0]["count"] += 1
        with pytest.raises(SynopsisIntegrityError) as excinfo:
            sketch_from_dict(payload)
        assert "digest" in str(excinfo.value)

    def test_missing_key_is_typed(self, built_sketch):
        payload = json.loads(json.dumps(sketch_to_dict(built_sketch)))
        del payload["nodes"][0]["count"]
        payload["digest"] = payload_digest(payload)  # forge the digest
        with pytest.raises(SynopsisIntegrityError) as excinfo:
            sketch_from_dict(payload)
        assert "count" in str(excinfo.value)
        assert excinfo.value.path.startswith("nodes[0]")

    def test_extra_key_is_typed(self, built_sketch):
        payload = json.loads(json.dumps(sketch_to_dict(built_sketch)))
        payload["edges"][2]["surprise"] = 1
        payload["digest"] = payload_digest(payload)
        with pytest.raises(SynopsisIntegrityError) as excinfo:
            sketch_from_dict(payload)
        assert excinfo.value.path == "edges[2]"

    def test_extra_top_level_key_rejected(self, built_sketch):
        payload = json.loads(json.dumps(sketch_to_dict(built_sketch)))
        payload["extensions"] = {}
        payload["digest"] = payload_digest(payload)
        with pytest.raises(SynopsisIntegrityError):
            sketch_from_dict(payload)

    def test_wrong_type_is_typed(self, built_sketch):
        payload = json.loads(json.dumps(sketch_to_dict(built_sketch)))
        payload["nodes"][0]["count"] = "many"
        payload["digest"] = payload_digest(payload)
        with pytest.raises(SynopsisIntegrityError) as excinfo:
            sketch_from_dict(payload)
        assert "int" in str(excinfo.value)

    def test_edge_to_undeclared_node_rejected(self, built_sketch):
        payload = json.loads(json.dumps(sketch_to_dict(built_sketch)))
        payload["edges"][0]["target"] = 424242
        payload["digest"] = payload_digest(payload)
        with pytest.raises(SynopsisIntegrityError):
            sketch_from_dict(payload)

    def test_version_1_files_still_load(self, built_sketch):
        payload = json.loads(json.dumps(sketch_to_dict(built_sketch)))
        payload["version"] = 1
        del payload["digest"]
        loaded = sketch_from_dict(payload)
        assert loaded.graph.node_count == built_sketch.graph.node_count

    def test_missing_version_rejected(self, built_sketch):
        payload = json.loads(json.dumps(sketch_to_dict(built_sketch)))
        del payload["version"]
        with pytest.raises(SynopsisIntegrityError):
            sketch_from_dict(payload)

    def test_strict_mode_runs_invariants(self, built_sketch):
        payload = json.loads(json.dumps(sketch_to_dict(built_sketch)))
        payload["version"] = 1
        del payload["digest"]
        for node in payload["nodes"]:
            node["count"] = -node["count"]
        sketch_from_dict(payload)  # fast mode: schema-valid
        with pytest.raises(SynopsisIntegrityError):
            sketch_from_dict(payload, strict=True)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(SynopsisIntegrityError):
            sketch_from_dict([1, 2, 3])

    def test_truncated_file_raises_integrity_error(
        self, built_sketch, tmp_path
    ):
        path = tmp_path / "synopsis.json"
        save_sketch(built_sketch, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SynopsisIntegrityError):
            load_sketch(path)


class TestFrozenGraph:
    def test_refinement_rejected_on_loaded(self, built_sketch):
        loaded = sketch_from_dict(sketch_to_dict(built_sketch))
        with pytest.raises(SynopsisError):
            loaded.graph.split_node(0, {1})

    def test_missing_node_lookup(self, built_sketch):
        loaded = sketch_from_dict(sketch_to_dict(built_sketch))
        with pytest.raises(SynopsisError):
            loaded.graph.node(99_999)

    def test_value_histograms_round_trip_both_kinds(self):
        sketch = TwigXSketch.coarsest(
            figure1_document(), XSketchConfig(initial_value_buckets=4)
        )
        loaded = sketch_from_dict(sketch_to_dict(sketch))
        kinds = {
            summary.histogram.kind for summary in loaded.value_stats.values()
        }
        assert kinds == {"numeric", "string"}

    def test_movie_document_round_trip(self):
        sketch = TwigXSketch.coarsest(movie_document())
        loaded = sketch_from_dict(sketch_to_dict(sketch))
        query = parse_for_clause("for m in movie, a in m/actor")
        assert TwigEstimator(loaded).estimate(query) == pytest.approx(
            TwigEstimator(sketch).estimate(query)
        )
