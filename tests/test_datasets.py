"""Tests for the synthetic data-set generators."""

import pytest

from repro.datasets import (
    figure1_document,
    figure4_documents,
    generate_imdb,
    generate_sprot,
    generate_xmark,
    movie_document,
)
from repro.doc import DocumentIndex, document_stats
from repro.query import count_bindings, parse_for_clause


@pytest.fixture(scope="module")
def imdb():
    return generate_imdb(8000, seed=2)


@pytest.fixture(scope="module")
def xmark():
    return generate_xmark(8000, seed=1)


@pytest.fixture(scope="module")
def sprot():
    return generate_sprot(8000, seed=3)


class TestDeterminism:
    @pytest.mark.parametrize(
        "generator", [generate_imdb, generate_xmark, generate_sprot]
    )
    def test_same_seed_same_document(self, generator):
        first = generator(2000, seed=42)
        second = generator(2000, seed=42)
        assert [n.tag for n in first.nodes()] == [n.tag for n in second.nodes()]
        assert [n.value for n in first.nodes()] == [n.value for n in second.nodes()]

    @pytest.mark.parametrize(
        "generator", [generate_imdb, generate_xmark, generate_sprot]
    )
    def test_different_seed_different_document(self, generator):
        first = generator(2000, seed=1)
        second = generator(2000, seed=2)
        assert [n.tag for n in first.nodes()] != [n.tag for n in second.nodes()]


class TestScale:
    @pytest.mark.parametrize(
        "generator", [generate_imdb, generate_xmark, generate_sprot]
    )
    @pytest.mark.parametrize("target", [1000, 5000])
    def test_element_count_near_target(self, generator, target):
        tree = generator(target)
        assert target <= tree.element_count <= target * 1.1

    def test_structural_validity(self, imdb, xmark, sprot):
        for tree in (imdb, xmark, sprot):
            tree.validate()


class TestImdbCorrelations:
    def test_action_has_more_actors_than_documentary(self, imdb):
        def mean_actors(genre):
            movies = [
                m
                for m in imdb.extent("movie")
                if any(
                    c.tag == "type" and c.value == genre for c in m.children
                )
                and m.parent.tag == "imdb"
            ]
            return sum(m.child_count("actor") for m in movies) / len(movies)

        assert mean_actors("Action") > 5 * mean_actors("Documentary")

    def test_actor_producer_joint_correlation(self, imdb):
        """Cov(actors, producers) > 0 per movie — the skew the coarsest
        synopsis cannot capture."""
        movies = imdb.extent("movie")
        actor_counts = [m.child_count("actor") for m in movies]
        producer_counts = [m.child_count("producer") for m in movies]
        n = len(movies)
        mean_a = sum(actor_counts) / n
        mean_p = sum(producer_counts) / n
        covariance = (
            sum(a * p for a, p in zip(actor_counts, producer_counts)) / n
            - mean_a * mean_p
        )
        assert covariance > 1.0

    def test_series_movies_have_smaller_casts(self, imdb):
        top = [m for m in imdb.extent("movie") if m.parent.tag == "imdb"]
        nested = [m for m in imdb.extent("movie") if m.parent.tag == "episode"]
        assert nested, "series episodes must exist"
        mean_top = sum(m.child_count("actor") for m in top) / len(top)
        mean_nested = sum(m.child_count("actor") for m in nested) / len(nested)
        assert mean_top > 2 * mean_nested

    def test_structural_markers(self, imdb):
        index = DocumentIndex(imdb)
        assert index.has_pair("movie", "narrator")
        assert index.has_pair("movie", "stunts")

    def test_intro_query_selectivity_gap(self, imdb):
        action = parse_for_clause(
            'for m in movie[/type = "Action"], a in m/actor, p in m/producer'
        )
        documentary = parse_for_clause(
            'for m in movie[/type = "Documentary"], a in m/actor, p in m/producer'
        )
        action_count = count_bindings(action, imdb)
        documentary_count = count_bindings(documentary, imdb)
        assert action_count > 10 * max(1, documentary_count)


class TestXmarkRegularity:
    def test_quantity_counts_iid(self, xmark):
        """Nearly every item has the uniform core (the last generated item
        may be truncated by the element budget)."""
        items = xmark.extent("item")
        regular = sum(
            1
            for item in items
            if item.child_count("quantity") == 1
            and item.child_count("name") == 1
            and 1 <= item.child_count("incategory") <= 2
        )
        assert regular >= 0.99 * len(items)

    def test_recursive_structure_present(self, xmark):
        """The DTD's recursions exist: nested parlists and nested markup."""
        nested_parlist = any(
            any(anc.tag == "parlist" for anc in p.iter_ancestors())
            for p in xmark.extent("parlist")
        )
        assert nested_parlist
        from repro.doc import DocumentIndex

        index = DocumentIndex(xmark)
        assert len(index.label_paths) > 300  # many distinct label paths

    def test_four_populations_present(self, xmark):
        for tag in ["item", "person", "open_auction", "closed_auction"]:
            assert len(xmark.extent(tag)) > 10

    def test_bidder_counts_spread(self, xmark):
        counts = {a.child_count("bidder") for a in xmark.extent("open_auction")}
        assert len(counts) > 2  # 0..4 uniform


class TestSprot:
    def test_entries_regular_core(self, sprot):
        for entry in sprot.extent("Entry"):
            assert entry.child_count("AC") == 1
            assert entry.child_count("Protein") == 1

    def test_two_organism_classes(self, sprot):
        classes = {c.value for c in sprot.extent("Class")}
        assert classes == {"eukaryota", "bacteria"}


class TestPaperFigures:
    def test_figure1_shape(self):
        tree = figure1_document()
        assert len(tree.extent("author")) == 3
        assert len(tree.extent("paper")) == 4
        assert len(tree.extent("book")) == 2

    def test_figure4_totals(self):
        doc_a, doc_b = figure4_documents()
        for doc in (doc_a, doc_b):
            assert len(doc.extent("a")) == 2
            assert len(doc.extent("b")) == 110
            assert len(doc.extent("c")) == 110

    def test_movie_document_genres(self):
        tree = movie_document()
        genres = [t.value for t in tree.extent("type")]
        assert genres.count("Action") == 2

    def test_stats_computable(self, imdb):
        stats = document_stats(imdb)
        assert stats.element_count == imdb.element_count
        assert stats.text_size_mb > 0
