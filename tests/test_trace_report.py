"""Tests for trace aggregation (repro.obs.trace_report) and the
benchmark-envelope validator (repro.obs.export)."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    BENCH_SCHEMA,
    METRICS_SCHEMA,
    load_spans,
    render_trace_report,
    trace_report,
    validate_bench_payload,
    validate_payload,
)


def _span(name, span_id, parent_id, duration, start=0.0):
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "thread": 1,
        "start": start,
        "duration": duration,
        "attrs": {},
    }


@pytest.fixture()
def spans():
    return [
        _span("build", 1, None, 1.0),
        _span("round", 2, 1, 0.6),
        _span("round", 3, 1, 0.3),
        _span("score", 4, 2, 0.2),
        # an unfinished span (interrupted run) must be dropped
        {"name": "round", "span_id": 5, "parent_id": 1, "start": 0.9},
    ]


class TestLoadSpans:
    def test_reads_jsonl(self, tmp_path, spans):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(json.dumps(span) + "\n" for span in spans),
            encoding="utf8",
        )
        assert load_spans(str(path)) == spans

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "a"}\n\n{"name": "b"}\n', encoding="utf8")
        assert [span["name"] for span in load_spans(str(path))] == ["a", "b"]

    def test_junk_line_raises_with_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "a"}\nnot json\n', encoding="utf8")
        with pytest.raises(ReproError, match=":2:"):
            load_spans(str(path))

    def test_record_without_name_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"span_id": 1}\n', encoding="utf8")
        with pytest.raises(ReproError, match="'name'"):
            load_spans(str(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_spans(str(tmp_path / "nope.jsonl"))


class TestTraceReport:
    def test_self_time_subtracts_direct_children(self, spans):
        report = trace_report(spans)
        assert report.spans == 4  # the unfinished span is dropped
        assert report.wall == 1.0
        by_name = {kind.name: kind for kind in report.kinds}
        assert by_name["build"].self_time == pytest.approx(0.1)
        assert by_name["round"].self_time == pytest.approx(0.7)
        assert by_name["score"].self_time == pytest.approx(0.2)
        assert by_name["round"].count == 2
        assert by_name["round"].total == pytest.approx(0.9)
        assert by_name["round"].mean == pytest.approx(0.45)
        assert by_name["round"].max == pytest.approx(0.6)

    def test_kinds_ordered_by_self_time(self, spans):
        report = trace_report(spans)
        assert [kind.name for kind in report.kinds] == [
            "round",
            "score",
            "build",
        ]

    def test_critical_path_follows_longest_children(self, spans):
        report = trace_report(spans)
        assert [
            (hop.name, hop.span_id, hop.depth)
            for hop in report.critical_path
        ] == [("build", 1, 0), ("round", 2, 1), ("score", 4, 2)]

    def test_longest_root_wins(self, spans):
        spans = spans + [_span("other", 9, None, 2.0)]
        report = trace_report(spans)
        assert report.wall == 2.0
        assert report.critical_path[0].name == "other"

    def test_empty_trace(self):
        report = trace_report([])
        assert report.spans == 0
        assert report.wall == 0.0
        assert report.critical_path == ()

    def test_to_dict_round_trips_through_json(self, spans):
        payload = json.loads(json.dumps(trace_report(spans).to_dict()))
        assert payload["spans"] == 4
        assert payload["kinds"][0]["name"] == "round"
        assert payload["critical_path"][0]["depth"] == 0


class TestRender:
    def test_render_contains_table_and_path(self, spans):
        text = render_trace_report(trace_report(spans))
        assert "4 spans, wall 1000.0ms" in text
        assert "critical path" in text
        assert "100% of wall" in text

    def test_top_limits_rows(self, spans):
        text = render_trace_report(trace_report(spans), top=1)
        assert "... 2 more span kind(s)" in text
        assert "score" not in text.split("critical path")[0]

    def test_empty_report_renders(self):
        text = render_trace_report(trace_report([]))
        assert "(no finished root span)" in text


class TestBenchValidator:
    def _payload(self):
        return {
            "schema": BENCH_SCHEMA,
            "results": [
                {"name": "figure8", "seconds": 1.25, "data": {"rows": []}}
            ],
            "metrics": {"schema": METRICS_SCHEMA, "metrics": []},
        }

    def test_valid_payload(self):
        payload = self._payload()
        assert validate_bench_payload(payload) == []
        # the dispatching validator routes on the schema field
        assert validate_payload(payload) == []

    def test_wrong_schema(self):
        payload = self._payload()
        payload["schema"] = "nope"
        assert any(
            "schema" in problem
            for problem in validate_bench_payload(payload)
        )

    def test_empty_results(self):
        payload = self._payload()
        payload["results"] = []
        assert validate_bench_payload(payload) == ["'results' must be a non-empty list"]

    def test_negative_seconds_and_missing_data(self):
        payload = self._payload()
        payload["results"] = [{"name": "x", "seconds": -1}]
        problems = validate_bench_payload(payload)
        assert any("seconds" in problem for problem in problems)
        assert any("data" in problem for problem in problems)

    def test_embedded_metrics_validated(self):
        payload = self._payload()
        payload["metrics"] = {"schema": "bogus", "metrics": "nope"}
        problems = validate_bench_payload(payload)
        assert any("'metrics'" in problem for problem in problems)
