"""Tests for the robust estimation service (repro.serve)."""

import json
import math
import threading

import pytest

from repro.baselines import CorrelatedSuffixTree
from repro.build import xbuild
from repro.datasets import generate_imdb
from repro.errors import ServiceError, SynopsisError, SynopsisIntegrityError
from repro.query import parse_for_clause, parse_path, twig
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    EstimatorService,
    TIER_CST,
    TIER_PATH,
    TIER_TWIG,
    TIER_UNIFORM,
)
from repro.serve.service import _primary_chain
from repro.synopsis import load_sketch, save_sketch, sketch_to_dict


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture(scope="module")
def tree():
    return generate_imdb(2000, seed=2)


@pytest.fixture(scope="module")
def sketch(tree):
    return xbuild(tree, budget_bytes=3 * 1024, seed=3)


@pytest.fixture(scope="module")
def baseline(tree):
    return CorrelatedSuffixTree.build(tree, 8 * 1024)


@pytest.fixture()
def query():
    return parse_for_clause("for m in movie, a in m/actor")


class _ExplodingGraph:
    """A poisoned graph: every read access fails like corrupt storage."""

    def __getattr__(self, name):
        raise SynopsisError("synopsis storage is corrupt")


def _poisoned(sketch):
    """A sketch whose graph reads explode (twig and path tiers fail)."""
    poisoned = sketch.copy()
    poisoned.graph = _ExplodingGraph()
    return poisoned


def _corrupt_file(sketch, tmp_path):
    """A schema-valid legacy (v1) file whose counts were mangled."""
    path = tmp_path / "corrupt.json"
    payload = sketch_to_dict(sketch)
    payload["version"] = 1
    del payload["digest"]
    for node in payload["nodes"]:
        node["count"] = -node["count"]
    path.write_text(json.dumps(payload), encoding="utf8")
    return path


class TestRegistry:
    def test_register_and_names(self, sketch):
        service = EstimatorService()
        service.register("a", sketch)
        service.register("b", sketch)
        assert service.names() == ["a", "b"]
        assert service.sketch("a") is sketch

    def test_register_validates_by_default(self, sketch):
        service = EstimatorService()
        with pytest.raises(SynopsisIntegrityError):
            service.register("bad", _poisoned(sketch))

    def test_register_validate_opt_out(self, sketch):
        service = EstimatorService()
        service.register("bad", _poisoned(sketch), validate=False)
        assert service.names() == ["bad"]

    def test_duplicate_name_rejected(self, sketch):
        service = EstimatorService()
        service.register("a", sketch)
        with pytest.raises(ServiceError):
            service.register("a", sketch)
        service.register("a", sketch, replace=True)

    def test_exactly_one_source(self, sketch):
        service = EstimatorService()
        with pytest.raises(ServiceError):
            service.register("a")
        with pytest.raises(ServiceError):
            service.register("a", sketch, path="also.json")

    def test_register_from_file(self, sketch, tmp_path):
        path = tmp_path / "sketch.json"
        save_sketch(sketch, path)
        service = EstimatorService()
        service.register("file", path=path)
        assert service.names() == ["file"]

    def test_register_corrupt_file_rejected(self, sketch, tmp_path):
        service = EstimatorService()
        with pytest.raises(SynopsisIntegrityError):
            service.register("bad", path=_corrupt_file(sketch, tmp_path))

    def test_unknown_name(self, query):
        with pytest.raises(ServiceError):
            EstimatorService().estimate("nope", query)

    def test_unregister(self, sketch):
        service = EstimatorService()
        service.register("a", sketch)
        service.unregister("a")
        assert service.names() == []
        with pytest.raises(ServiceError):
            service.unregister("a")


class TestHappyPath:
    def test_twig_tier_answers(self, sketch, query):
        service = EstimatorService()
        service.register("imdb", sketch)
        response = service.estimate("imdb", query)
        assert response.source == TIER_TWIG
        assert not response.degraded
        assert response.warnings == ()
        assert response.sketch == "imdb"
        assert response.latency >= 0
        assert math.isfinite(response.estimate) and response.estimate >= 0

    def test_envelope_is_frozen(self, sketch, query):
        service = EstimatorService()
        service.register("imdb", sketch)
        response = service.estimate("imdb", query)
        with pytest.raises(AttributeError):
            response.estimate = 0.0


class TestDegradation:
    def test_corrupt_file_falls_back_finite(self, sketch, baseline, query, tmp_path):
        """The acceptance scenario: a corrupted sketch file still yields a
        finite, non-negative estimate from a named fallback tier."""
        bad = load_sketch(_corrupt_file(sketch, tmp_path))  # fast mode
        service = EstimatorService()
        service.register("bad", bad, baseline=baseline, validate=False)
        response = service.estimate("bad", query)
        assert response.source != TIER_TWIG
        assert response.source in (TIER_PATH, TIER_CST, TIER_UNIFORM)
        assert math.isfinite(response.estimate)
        assert response.estimate >= 0
        assert response.warnings  # every degradation step is recorded

    def test_cst_tier_survives_poisoned_sketch(self, sketch, baseline):
        service = EstimatorService()
        service.register(
            "bad", _poisoned(sketch), baseline=baseline, validate=False
        )
        query = twig(parse_path("movie/actor"))
        response = service.estimate("bad", query)
        assert response.source == TIER_CST
        assert math.isfinite(response.estimate) and response.estimate >= 0
        failed = [w for w in response.warnings if "failed" in w]
        assert len(failed) == 2  # twig and path both degraded

    def test_uniform_prior_is_terminal(self, sketch, query):
        service = EstimatorService(uniform_prior=7.5)
        service.register("bad", _poisoned(sketch), validate=False)
        response = service.estimate("bad", query)
        assert response.source == TIER_UNIFORM
        assert response.estimate == 7.5
        assert any("unavailable" in w for w in response.warnings)
        assert any("uniform prior" in w for w in response.warnings)

    def test_never_raises_never_nan(self, sketch, baseline, query, tmp_path):
        bad = load_sketch(_corrupt_file(sketch, tmp_path))
        service = EstimatorService()
        service.register("bad", bad, baseline=baseline, validate=False)
        for _ in range(10):
            response = service.estimate("bad", query)
            assert math.isfinite(response.estimate)
            assert response.estimate >= 0


class TestDeadlines:
    def test_exhausted_deadline_serves_prior(self, sketch, query):
        clock = FakeClock()
        service = EstimatorService(clock=clock)
        service.register("imdb", sketch)
        original = clock.__call__
        # Every clock read advances 10s: the budget expires before the
        # first tier is consulted.
        def slow_clock():
            clock.advance(10.0)
            return clock.now
        service._clock = slow_clock
        response = service.estimate("imdb", query, deadline=5.0)
        assert response.source == TIER_UNIFORM
        assert any("deadline" in w for w in response.warnings)
        service._clock = original

    def test_invalid_deadline(self, sketch, query):
        service = EstimatorService()
        service.register("imdb", sketch)
        with pytest.raises(ServiceError):
            service.estimate("imdb", query, deadline=0.0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self, sketch, query):
        clock = FakeClock()
        service = EstimatorService(
            failure_threshold=2, cooldown=30.0, clock=clock
        )
        service.register("bad", _poisoned(sketch), validate=False)
        for _ in range(2):
            response = service.estimate("bad", query)
            assert any("twig tier failed" in w for w in response.warnings)
        assert service.breaker_states("bad")[TIER_TWIG] == OPEN
        response = service.estimate("bad", query)
        assert any("circuit open" in w for w in response.warnings)

    def test_half_open_probe_and_recovery(self, sketch, query):
        clock = FakeClock()
        breaker = CircuitBreaker(2, 30.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(31.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # only one probe at a time
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_single_probe_under_concurrency(self):
        """Exactly one of N simultaneous callers wins the half-open probe."""
        clock = FakeClock()
        breaker = CircuitBreaker(1, 30.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(31.0)
        assert breaker.state == HALF_OPEN
        callers = 16
        barrier = threading.Barrier(callers)
        admitted = []

        def caller():
            barrier.wait()
            admitted.append(breaker.allow())

        threads = [threading.Thread(target=caller) for _ in range(callers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert admitted.count(True) == 1
        # Probe failure re-opens for everyone; probe success closes.
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(31.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert all(breaker.allow() for _ in range(3))

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 30.0, clock=clock)
        breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_breaker_rejects_bad_config(self):
        with pytest.raises(ServiceError):
            CircuitBreaker(0)
        with pytest.raises(ServiceError):
            CircuitBreaker(5, cooldown=0)


class TestConcurrency:
    def test_parallel_estimates_stay_finite(self, sketch, baseline, query):
        service = EstimatorService()
        service.register("imdb", sketch, baseline=baseline)
        results = []
        errors = []

        def worker(index):
            try:
                name = f"extra-{index}"
                service.register(name, sketch, replace=True)
                for _ in range(5):
                    response = service.estimate("imdb", query)
                    results.append(response.estimate)
                service.unregister(name)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 40
        assert all(math.isfinite(value) for value in results)
        assert len(set(results)) == 1  # read-only sketch: one answer


class TestPrimaryChain:
    def test_branching_query_collapses(self):
        query = parse_for_clause(
            "for m in movie, a in m/actor, k in m/keyword"
        )
        chain, collapsed = _primary_chain(query)
        assert [s.tag for s in chain.steps] == ["movie", "actor"]
        assert collapsed

    def test_pure_path_not_collapsed(self):
        query = twig(parse_path("movie/actor/name"))
        chain, collapsed = _primary_chain(query)
        assert [s.tag for s in chain.steps] == ["movie", "actor", "name"]
        assert not collapsed

    def test_bad_uniform_prior_rejected(self):
        with pytest.raises(ServiceError):
            EstimatorService(uniform_prior=float("nan"))
        with pytest.raises(ServiceError):
            EstimatorService(uniform_prior=-1.0)
