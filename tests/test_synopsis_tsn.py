"""Tests for TSNs and exact edge distributions (paper Example 3.1)."""

import pytest

from repro.datasets.paperfig import figure1_document
from repro.errors import SynopsisError
from repro.synopsis import (
    EdgeRef,
    bstable_ancestors,
    exact_edge_distribution,
    label_split_synopsis,
    mean_child_count,
    stable_count_edges,
    twig_stable_neighborhood,
)


@pytest.fixture()
def synopsis():
    return label_split_synopsis(figure1_document())


def nid(synopsis, tag):
    return synopsis.nodes_with_tag(tag)[0].node_id


class TestBStableAncestors:
    def test_paper_node(self, synopsis):
        paper = nid(synopsis, "paper")
        ancestors = bstable_ancestors(synopsis, paper)
        assert nid(synopsis, "author") in ancestors
        assert nid(synopsis, "bib") in ancestors
        assert paper in ancestors

    def test_title_chain_broken(self, synopsis):
        # paper→title is not B-stable (book titles), so the chain above
        # title contains only title itself.
        title = nid(synopsis, "title")
        assert bstable_ancestors(synopsis, title) == {title}


class TestTSN:
    def test_tsn_of_paper(self, synopsis):
        tsn = twig_stable_neighborhood(synopsis, nid(synopsis, "paper"))
        tags = {synopsis.node(n).tag for n in tsn.members}
        # anchors: paper, author, bib; F-stable children of those:
        # name, title, year (every paper has one), paper, author
        assert {"paper", "author", "bib", "name", "title", "year"} <= tags
        assert "book" not in tags  # A→B not F-stable
        anchor_tags = {synopsis.node(n).tag for n in tsn.anchors}
        assert anchor_tags == {"paper", "author", "bib"}

    def test_stable_count_edges_at_paper(self, synopsis):
        paper = nid(synopsis, "paper")
        author = nid(synopsis, "author")
        edges = stable_count_edges(synopsis, paper)
        assert (paper, nid(synopsis, "title")) in edges
        assert (paper, nid(synopsis, "year")) in edges
        assert (author, nid(synopsis, "name")) in edges  # backward count
        assert (author, paper) in edges  # backward count C_P
        assert all(
            synopsis.edge(s, t).forward_stable for (s, t) in edges
        )


class TestExample31:
    """The edge distribution f_P(C_K, C_Y, C_P, C_N) of Example 3.1.

    Roles of p4/p5 are swapped relative to the printed table (see the note
    in repro.datasets.paperfig); the fractions and all derived quantities
    match the paper.
    """

    def scope(self, synopsis):
        paper = nid(synopsis, "paper")
        author = nid(synopsis, "author")
        return [
            EdgeRef(paper, nid(synopsis, "keyword")),  # C_K forward
            EdgeRef(paper, nid(synopsis, "year")),  # C_Y forward
            EdgeRef(author, paper),  # C_P backward
            EdgeRef(author, nid(synopsis, "name")),  # C_N backward
        ]

    def test_distribution_table(self, synopsis):
        dist = exact_edge_distribution(
            synopsis, nid(synopsis, "paper"), self.scope(synopsis)
        )
        assert dist.fraction((2, 1, 2, 1)) == pytest.approx(0.25)  # p5
        assert dist.fraction((1, 1, 2, 1)) == pytest.approx(0.25)  # p4
        assert dist.fraction((1, 1, 1, 1)) == pytest.approx(0.50)  # p8, p9
        assert dist.point_count == 3

    def test_example31_selectivity_formula(self, synopsis):
        """s = Σ |P| · f_P(ck,cy,cp,cn) · ck · cn for the twig
        (A, A/N, A/P/K) — evaluates to the exact count 5."""
        paper_size = synopsis.node(nid(synopsis, "paper")).count
        dist = exact_edge_distribution(
            synopsis, nid(synopsis, "paper"), self.scope(synopsis)
        )
        total = sum(
            paper_size * mass * vector[0] * vector[3]
            for vector, mass in dist.points()
        )
        assert total == pytest.approx(5.0)


class TestExactDistribution:
    def test_forward_only(self, synopsis):
        author = nid(synopsis, "author")
        dist = exact_edge_distribution(
            synopsis,
            author,
            [EdgeRef(author, nid(synopsis, "paper")),
             EdgeRef(author, nid(synopsis, "book"))],
        )
        assert dist.fraction((2, 2)) == pytest.approx(1 / 3)  # a1
        assert dist.fraction((1, 0)) == pytest.approx(2 / 3)  # a2, a3

    def test_missing_edge_rejected(self, synopsis):
        author = nid(synopsis, "author")
        with pytest.raises(SynopsisError):
            exact_edge_distribution(
                synopsis, author, [EdgeRef(author, nid(synopsis, "keyword"))]
            )

    def test_empty_scope_rejected(self, synopsis):
        with pytest.raises(SynopsisError):
            exact_edge_distribution(synopsis, nid(synopsis, "author"), [])

    def test_mean_child_count(self, synopsis):
        author = nid(synopsis, "author")
        book = nid(synopsis, "book")
        assert mean_child_count(synopsis, author, book) == pytest.approx(2 / 3)
        assert mean_child_count(synopsis, book, author) == 0.0
