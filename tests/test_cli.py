"""Tests for the command-line interface (repro.cli)."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.doc import build_tree, write_file


@pytest.fixture(scope="module")
def xml_file(tmp_path_factory):
    tree = build_tree(
        (
            "bib",
            [
                (
                    "author",
                    [
                        ("name", "A", []),
                        ("paper", [("year", 2001, []), "title", "keyword"]),
                        ("paper", [("year", 1999, []), "title"]),
                    ],
                ),
                ("author", [("name", "B", []), ("paper", [("year", 2003, []), "title"])]),
            ],
        )
    )
    path = tmp_path_factory.mktemp("cli") / "bib.xml"
    write_file(tree, path)
    return str(path)


class TestStats:
    def test_stats_output(self, xml_file, capsys):
        assert main(["stats", xml_file]) == 0
        out = capsys.readouterr().out
        assert "elements:" in out
        assert "coarsest synopsis:" in out

    def test_missing_file_is_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.xml")]) == 2
        assert "error:" in capsys.readouterr().err


class TestBuild:
    def test_build_reports_inventory(self, xml_file, capsys):
        assert main(["build", xml_file, "--budget", "1"]) == 0
        out = capsys.readouterr().out
        assert "synopsis" in out
        assert "nodes:" in out


class TestEstimate:
    def test_estimate_with_exact(self, xml_file, capsys):
        code = main(
            [
                "estimate",
                xml_file,
                "--query",
                "for a in author, p in a/paper[year > 2000]",
                "--budget",
                "2",
                "--exact",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated selectivity:" in out
        assert "exact selectivity:" in out

    def test_estimate_path_syntax(self, xml_file, capsys):
        code = main(
            ["estimate", xml_file, "--query", "author/paper/title",
             "--budget", "1"]
        )
        assert code == 0
        assert "estimated selectivity:" in capsys.readouterr().out

    def test_bad_query_is_error(self, xml_file, capsys):
        assert main(["estimate", xml_file, "--query", "a[[", "--budget", "1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestWorkload:
    def test_workload_stats(self, xml_file, capsys):
        assert main(["workload", xml_file, "--queries", "3", "--show", "2"]) == 0
        out = capsys.readouterr().out
        assert "avg result:" in out
        assert out.count("t0 in") == 2


class TestDemo:
    def test_demo_runs_on_builtin_dataset(self, capsys):
        code = main(["demo", "--scale", "1500", "--budget", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated selectivity:" in out
        assert "exact selectivity:" in out


class TestPersistenceFlow:
    def test_build_save_then_estimate_from_synopsis(self, xml_file, tmp_path, capsys):
        synopsis_path = str(tmp_path / "synopsis.json")
        assert main(
            ["build", xml_file, "--budget", "2", "--out", synopsis_path]
        ) == 0
        assert "saved to" in capsys.readouterr().out
        code = main(
            [
                "estimate",
                xml_file,
                "--query",
                "author/paper",
                "--synopsis",
                synopsis_path,
                "--exact",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated selectivity:" in out


class TestAnalyze:
    def test_analyze_clean_repo_exits_zero(self, capsys):
        src = str(Path(__file__).resolve().parent.parent / "src")
        assert main(["analyze", src]) == 0
        assert capsys.readouterr().out == ""

    def test_analyze_broken_fixture_reports_findings(self, capsys):
        fixture = str(
            Path(__file__).resolve().parent / "fixtures" / "broken_pkg"
        )
        assert main(["analyze", fixture]) == 1
        out = capsys.readouterr().out
        assert "[missing-module]" in out
        assert "finding(s)" in out

    def test_analyze_json_output(self, capsys):
        fixture = str(
            Path(__file__).resolve().parent / "fixtures" / "broken_pkg"
        )
        assert main(["analyze", "--json", fixture]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in payload} >= {
            "missing-module", "import-cycle", "mutable-default"
        }

    def test_analyze_missing_path_is_error(self, capsys):
        assert main(["analyze", "no-such-directory"]) == 2
        assert "no such path" in capsys.readouterr().err


class TestObservability:
    def test_estimate_explain_prints_trail(self, xml_file, capsys):
        code = main([
            "estimate", xml_file,
            "--query", "for a in author, p in a/paper",
            "--budget", "2", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "--- explain ---" in out
        assert "query:" in out
        assert "embedding:" in out

    def test_build_trace_writes_jsonl(self, xml_file, tmp_path, capsys):
        trace = tmp_path / "build.jsonl"
        code = main([
            "build", xml_file, "--budget", "2", "--trace", str(trace),
        ])
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        spans = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert spans
        assert {"xbuild.build", "xbuild.round"} <= {
            span["name"] for span in spans
        }

    def test_metrics_command_exports_valid_json(self, tmp_path, capsys):
        from repro.obs import validate_payload

        out_path = tmp_path / "metrics.json"
        code = main([
            "metrics", "--dataset", "paperfig",
            "--budget", "2", "--queries", "4",
            "--out", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert validate_payload(payload) == []
        names = {metric["name"] for metric in payload["metrics"]}
        assert {
            "build_rounds_total",
            "estimator_lookups_total",
            "serve_request_seconds",
            "serve_breaker_state",
        } <= names

    def test_metrics_command_prometheus_stdout(self, capsys):
        code = main([
            "metrics", "--dataset", "paperfig",
            "--budget", "2", "--queries", "2",
            "--format", "prometheus",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE build_rounds_total counter" in out
        assert "serve_breaker_state{" in out

    def test_serve_eval_metrics_json_envelope(self, tmp_path, capsys):
        from repro.obs import validate_payload

        out_path = tmp_path / "serve.json"
        code = main([
            "serve-eval", "--dataset", "paperfig",
            "--budget", "2", "--queries", "4",
            "--metrics-json", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "breakers:" in out and "twig=closed" in out
        payload = json.loads(out_path.read_text())
        assert validate_payload(payload) == []
        assert len(payload["requests"]) == 4
        for request in payload["requests"]:
            assert request["tier"] in {"twig", "path", "cst", "uniform"}
            assert isinstance(request["warnings"], list)
        assert payload["breakers"]["twig"] == "closed"


class TestParallelFlags:
    def test_build_with_workers(self, tmp_path, capsys):
        out_path = tmp_path / "build.json"
        code = main([
            "build", "--dataset", "paperfig", "--budget", "2",
            "--workers", "2", "--metrics-json", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 workers" in out
        from repro.obs import validate_payload

        payload = json.loads(out_path.read_text())
        assert validate_payload(payload) == []
        by_name = {metric["name"]: metric for metric in payload["metrics"]}
        cache = by_name["build_oracle_cache_total"]
        hits = sum(
            series["value"]
            for series in cache["series"]
            if series["labels"].get("outcome") == "hit"
        )
        assert hits > 0

    def test_serve_eval_batch_with_pool(self, capsys):
        code = main([
            "serve-eval", "--dataset", "paperfig",
            "--budget", "2", "--queries", "4",
            "--batch", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "breakers:" in out and "twig=closed" in out


class TestTraceReport:
    def test_report_from_build_trace(self, xml_file, tmp_path, capsys):
        trace = tmp_path / "build.jsonl"
        assert main([
            "build", xml_file, "--budget", "2", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["trace-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "xbuild.build" in out

    def test_report_json(self, xml_file, tmp_path, capsys):
        trace = tmp_path / "build.jsonl"
        assert main([
            "build", xml_file, "--budget", "2", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["trace-report", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] > 0
        names = {kind["name"] for kind in payload["kinds"]}
        assert "xbuild.round" in names

    def test_missing_trace_is_error(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path / "no.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
