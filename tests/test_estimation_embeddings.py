"""Tests for maximal expansion and embedding enumeration."""

import pytest

from repro.datasets.paperfig import figure1_document
from repro.estimation import (
    EmbeddingBudget,
    enumerate_embeddings,
    maximal_twigs,
    validate_embedding,
)
from repro.query import parse_for_clause, parse_path, twig
from repro.synopsis import label_split_synopsis


@pytest.fixture()
def synopsis():
    return label_split_synopsis(figure1_document())


def tag_of(synopsis, node_id):
    return synopsis.node(node_id).tag


class TestEnumeration:
    def test_simple_child_query_single_embedding(self, synopsis):
        query = parse_for_clause("for a in author, p in a/paper")
        embeddings = enumerate_embeddings(query, synopsis)
        assert len(embeddings) == 1
        root = embeddings[0].root
        assert tag_of(synopsis, root.node_id) == "author"
        assert tag_of(synopsis, root.children[0].node_id) == "paper"

    def test_multi_step_path_becomes_chain(self, synopsis):
        query = parse_for_clause("for a in author, k in a/paper/keyword")
        embeddings = enumerate_embeddings(query, synopsis)
        assert len(embeddings) == 1
        chain = embeddings[0].root.children[0]
        assert tag_of(synopsis, chain.node_id) == "paper"
        assert tag_of(synopsis, chain.children[0].node_id) == "keyword"

    def test_root_descendant_uses_extent_semantics(self, synopsis):
        # a root path matches the extent directly: exactly one embedding
        query = twig(parse_path("//title"))
        embeddings = enumerate_embeddings(query, synopsis)
        assert len(embeddings) == 1
        assert tag_of(synopsis, embeddings[0].root.node_id) == "title"

    def test_descendant_expands_to_all_paths(self, synopsis):
        query = parse_for_clause("for b in bib, t in b//title")
        embeddings = enumerate_embeddings(query, synopsis)
        # bib -> author/paper/title and bib -> author/book/title
        assert len(embeddings) == 2
        lengths = set()
        for embedding in embeddings:
            nodes = embedding.nodes()
            assert tag_of(synopsis, nodes[-1].node_id) == "title"
            lengths.add(len(nodes))
        assert lengths == {4}

    def test_descendant_from_variable(self, synopsis):
        query = parse_for_clause("for a in author, t in a//title")
        embeddings = enumerate_embeddings(query, synopsis)
        assert len(embeddings) == 2  # via paper and via book

    def test_impossible_query_has_no_embeddings(self, synopsis):
        query = parse_for_clause("for a in author, m in a/movie")
        assert enumerate_embeddings(query, synopsis) == []

    def test_branch_attached(self, synopsis):
        query = twig(parse_path("paper[year{>2000}]"))
        embeddings = enumerate_embeddings(query, synopsis)
        assert len(embeddings) == 1
        root = embeddings[0].root
        assert len(root.branches) == 1
        (alternatives,) = root.branches
        assert len(alternatives) == 1
        assert tag_of(synopsis, alternatives[0].node_id) == "year"

    def test_unembeddable_branch_kills_embedding(self, synopsis):
        query = twig(parse_path("paper[movie]"))
        assert enumerate_embeddings(query, synopsis) == []

    def test_multi_child_twig(self, synopsis):
        query = parse_for_clause(
            "for a in author, n in a/name, p in a/paper, k in p/keyword"
        )
        embeddings = enumerate_embeddings(query, synopsis)
        assert len(embeddings) == 1
        root = embeddings[0].root
        assert len(root.children) == 2

    def test_embeddings_use_existing_edges(self, synopsis):
        query = parse_for_clause("for b in bib, t in b//title, a in b/author")
        for embedding in enumerate_embeddings(query, synopsis):
            validate_embedding(embedding, synopsis)

    def test_budget_truncation(self, synopsis):
        budget = EmbeddingBudget(limit=1)
        query = parse_for_clause("for b in bib, t in b//title")
        embeddings = enumerate_embeddings(query, synopsis, budget=budget)
        assert len(embeddings) == 1
        assert budget.truncated


class TestMaximalTwigs:
    def test_every_node_single_step(self, synopsis):
        query = parse_for_clause("for a in author, k in a/paper/keyword")
        for maximal in maximal_twigs(query, synopsis):
            assert all(node.path.is_single_step for node in maximal.nodes())

    def test_descendant_expansion_count(self, synopsis):
        query = parse_for_clause("for b in bib, t in b//title")
        maximal = maximal_twigs(query, synopsis)
        assert len(maximal) == 2
        texts = {m.text() for m in maximal}
        assert any("book" in text for text in texts)
        assert any("paper" in text for text in texts)

    def test_predicates_preserved(self, synopsis):
        query = twig(parse_path("paper[year{>2000}]"))
        (maximal,) = maximal_twigs(query, synopsis)
        step = maximal.root.path.steps[0]
        assert step.branches and step.branches[0].steps[0].value_pred is not None


class TestRecursiveSynopsis:
    def test_cycles_terminate(self):
        from repro.doc import build_tree
        from repro.synopsis import label_split_synopsis as split

        tree = build_tree(
            ("doc", [("section", [("section", [("section", ["p"])]), "p"])])
        )
        synopsis = split(tree)
        query = twig(parse_path("//p"))
        embeddings = enumerate_embeddings(query, synopsis, max_depth=6)
        assert embeddings  # enumeration terminated and found something
