"""Tests for the Haar wavelet histogram engine."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.histogram import SparseDistribution, WaveletHistogram, ops


def dist(mapping):
    return SparseDistribution(mapping)


class TestWaveletHistogram:
    def test_exact_with_all_coefficients(self):
        source = dist({(1,): 1, (3,): 1, (5,): 2})
        hist = WaveletHistogram(source, coefficients=64)
        for (vector, mass) in source.points():
            match = [m for v, m in hist.points() if v == vector]
            assert match and match[0] == pytest.approx(mass, abs=1e-9)

    def test_mass_normalized_after_truncation(self):
        source = SparseDistribution.from_observations(
            [(i % 13,) for i in range(100)]
        )
        hist = WaveletHistogram(source, coefficients=3)
        assert ops.total_mass(hist.points()) == pytest.approx(1.0)

    def test_points_non_negative(self):
        source = SparseDistribution.from_observations(
            [(i % 7, (3 * i) % 5) for i in range(50)]
        )
        hist = WaveletHistogram(source, coefficients=4)
        assert all(mass >= 0 for _, mass in hist.points())
        assert all(all(c >= 0 for c in vector) for vector, _ in hist.points())

    def test_budget_respected(self):
        source = SparseDistribution.from_observations([(i,) for i in range(60)])
        hist = WaveletHistogram(source, coefficients=5)
        assert hist.bucket_count() <= 5

    def test_large_counts_clipped_into_top_cell(self):
        source = dist({(1000,): 1, (1,): 1})
        hist = WaveletHistogram(source, coefficients=64)
        assert ops.total_mass(hist.points()) == pytest.approx(1.0)
        top = max(v for (v,), _ in hist.points())
        assert top <= 63

    def test_two_dimensional(self):
        source = dist({(1, 2): 1, (3, 1): 1})
        hist = WaveletHistogram(source, coefficients=256)
        assert hist.dimensions == 2
        reconstructed = dict(hist.points())
        assert reconstructed[(1.0, 2.0)] == pytest.approx(0.5, abs=1e-9)
        assert reconstructed[(3.0, 1.0)] == pytest.approx(0.5, abs=1e-9)

    def test_bad_budget_rejected(self):
        with pytest.raises(SynopsisError):
            WaveletHistogram(dist({(1,): 1}), coefficients=0)

    def test_expected_product_reasonable(self):
        source = dist({(2,): 1, (4,): 1})
        hist = WaveletHistogram(source, coefficients=64)
        assert hist.expected_product([0]) == pytest.approx(3.0, abs=1e-9)
        assert hist.mean(0) == pytest.approx(3.0, abs=1e-9)


class TestWaveletProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=15)),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=32),
    )
    def test_unit_mass_nonnegative(self, obs, coefficients):
        source = SparseDistribution.from_observations(obs)
        hist = WaveletHistogram(source, coefficients)
        points = hist.points()
        assert points, "reconstruction must not be empty"
        assert math.isclose(ops.total_mass(points), 1.0, rel_tol=1e-9)
        assert all(mass >= 0 for _, mass in points)
