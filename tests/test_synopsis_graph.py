"""Tests for the graph synopsis: partition, edges, stability, splitting."""

import pytest

from repro.datasets.paperfig import figure1_document, figure4_documents
from repro.doc import build_tree
from repro.errors import SynopsisError
from repro.synopsis import GraphSynopsis, label_split_synopsis


@pytest.fixture()
def fig1_synopsis():
    return label_split_synopsis(figure1_document())


def node_by_tag(synopsis, tag):
    nodes = synopsis.nodes_with_tag(tag)
    assert len(nodes) == 1
    return nodes[0]


class TestLabelSplit:
    def test_one_node_per_tag(self, fig1_synopsis):
        tree = fig1_synopsis.tree
        assert fig1_synopsis.node_count == len(tree.tags)

    def test_extent_sizes_match_paper(self, fig1_synopsis):
        assert node_by_tag(fig1_synopsis, "author").count == 3
        assert node_by_tag(fig1_synopsis, "paper").count == 4
        assert node_by_tag(fig1_synopsis, "book").count == 2
        assert node_by_tag(fig1_synopsis, "name").count == 3

    def test_partition_invariant(self, fig1_synopsis):
        fig1_synopsis.validate()
        total = sum(n.count for n in fig1_synopsis.iter_nodes())
        assert total == fig1_synopsis.tree.element_count

    def test_every_document_edge_represented(self, fig1_synopsis):
        for parent, child in fig1_synopsis.tree.iter_edges():
            edge = fig1_synopsis.edge(
                fig1_synopsis.node_of(parent), fig1_synopsis.node_of(child)
            )
            assert edge is not None


class TestStability:
    def test_author_paper_both_stable(self, fig1_synopsis):
        """Paper Figure 3(b): A→P is backward AND forward stable."""
        author = node_by_tag(fig1_synopsis, "author")
        paper = node_by_tag(fig1_synopsis, "paper")
        edge = fig1_synopsis.edge(author.node_id, paper.node_id)
        assert edge.backward_stable
        assert edge.forward_stable

    def test_author_book_backward_only(self, fig1_synopsis):
        """All books have an author parent, but not all authors own books."""
        author = node_by_tag(fig1_synopsis, "author")
        book = node_by_tag(fig1_synopsis, "book")
        edge = fig1_synopsis.edge(author.node_id, book.node_id)
        assert edge.backward_stable
        assert not edge.forward_stable

    def test_title_not_backward_stable_from_paper(self, fig1_synopsis):
        """Titles hang off papers and books, so P→T is not B-stable."""
        paper = node_by_tag(fig1_synopsis, "paper")
        title = node_by_tag(fig1_synopsis, "title")
        edge = fig1_synopsis.edge(paper.node_id, title.node_id)
        assert not edge.backward_stable
        assert edge.forward_stable  # every paper has a title

    def test_counts(self, fig1_synopsis):
        author = node_by_tag(fig1_synopsis, "author")
        book = node_by_tag(fig1_synopsis, "book")
        edge = fig1_synopsis.edge(author.node_id, book.node_id)
        assert edge.child_count == 2  # both books
        assert edge.parent_count == 1  # only one author owns books

    def test_stability_by_brute_force(self, fig1_synopsis):
        synopsis = fig1_synopsis
        for (source, target), edge in synopsis.edges.items():
            source_extent = synopsis.node(source).extent
            target_extent = synopsis.node(target).extent
            brute_b = all(
                element.parent is not None
                and synopsis.node_of(element.parent) == source
                for element in target_extent
            )
            brute_f = all(
                any(synopsis.node_of(child) == target for child in element.children)
                for element in source_extent
            )
            assert edge.backward_stable == brute_b
            assert edge.forward_stable == brute_f


class TestFigure4SameSynopsis:
    def test_label_split_synopses_identical(self):
        doc_a, doc_b = figure4_documents()
        synopsis_a = label_split_synopsis(doc_a)
        synopsis_b = label_split_synopsis(doc_b)
        shape_a = {
            (synopsis_a.node(s).tag, synopsis_a.node(t).tag): (
                e.child_count,
                e.backward_stable,
                e.forward_stable,
            )
            for (s, t), e in synopsis_a.edges.items()
        }
        shape_b = {
            (synopsis_b.node(s).tag, synopsis_b.node(t).tag): (
                e.child_count,
                e.backward_stable,
                e.forward_stable,
            )
            for (s, t), e in synopsis_b.edges.items()
        }
        assert shape_a == shape_b

    def test_all_edges_fully_stable(self):
        doc_a, _ = figure4_documents()
        synopsis = label_split_synopsis(doc_a)
        assert all(
            e.backward_stable and e.forward_stable for e in synopsis.edges.values()
        )


class TestSplitNode:
    def test_split_preserves_partition(self, fig1_synopsis):
        paper = node_by_tag(fig1_synopsis, "paper")
        part = {paper.extent[0].node_id, paper.extent[1].node_id}
        first, second = fig1_synopsis.split_node(paper.node_id, part)
        fig1_synopsis.validate()
        assert fig1_synopsis.node(first).count == 2
        assert fig1_synopsis.node(second).count == 2
        assert len(fig1_synopsis.nodes_with_tag("paper")) == 2

    def test_split_updates_edges(self, fig1_synopsis):
        author = node_by_tag(fig1_synopsis, "author")
        paper = node_by_tag(fig1_synopsis, "paper")
        part = {paper.extent[0].node_id}
        first, second = fig1_synopsis.split_node(paper.node_id, part)
        edge_first = fig1_synopsis.edge(author.node_id, first)
        edge_second = fig1_synopsis.edge(author.node_id, second)
        assert edge_first.child_count == 1
        assert edge_second.child_count == 3
        assert edge_first.backward_stable and edge_second.backward_stable

    def test_split_rejects_improper_subsets(self, fig1_synopsis):
        paper = node_by_tag(fig1_synopsis, "paper")
        with pytest.raises(SynopsisError):
            fig1_synopsis.split_node(paper.node_id, set())
        with pytest.raises(SynopsisError):
            fig1_synopsis.split_node(
                paper.node_id, {e.node_id for e in paper.extent}
            )

    def test_split_then_downstream_edges_correct(self, fig1_synopsis):
        # Split papers into {p5} vs rest; keyword edge counts must follow.
        paper = node_by_tag(fig1_synopsis, "paper")
        keyword = node_by_tag(fig1_synopsis, "keyword")
        p5 = next(
            e for e in paper.extent if e.child_count("keyword") == 2
        )
        first, second = fig1_synopsis.split_node(paper.node_id, {p5.node_id})
        assert fig1_synopsis.edge(first, keyword.node_id).child_count == 2
        assert fig1_synopsis.edge(second, keyword.node_id).child_count == 3


class TestFromPartition:
    def test_missing_elements_rejected(self):
        tree = build_tree(("a", ["b", "b"]))
        with pytest.raises(SynopsisError):
            GraphSynopsis.from_partition(tree, [[tree.root]])

    def test_mixed_tags_rejected(self):
        tree = build_tree(("a", ["b"]))
        with pytest.raises(SynopsisError):
            GraphSynopsis.from_partition(tree, [list(tree.nodes())])

    def test_double_assignment_rejected(self):
        tree = build_tree(("a", ["b"]))
        b = tree.extent("b")
        with pytest.raises(SynopsisError):
            GraphSynopsis.from_partition(tree, [[tree.root], b, b])

    def test_finer_partition_valid(self):
        tree = build_tree(("a", ["b", "b", "b"]))
        bs = tree.extent("b")
        synopsis = GraphSynopsis.from_partition(
            tree, [[tree.root], bs[:1], bs[1:]]
        )
        synopsis.validate()
        assert synopsis.node_count == 3


class TestCopy:
    def test_copy_is_independent(self, fig1_synopsis):
        duplicate = fig1_synopsis.copy()
        paper = node_by_tag(duplicate, "paper")
        duplicate.split_node(paper.node_id, {paper.extent[0].node_id})
        assert len(fig1_synopsis.nodes_with_tag("paper")) == 1
        assert len(duplicate.nodes_with_tag("paper")) == 2
        fig1_synopsis.validate()
        duplicate.validate()

    def test_ancestor_in(self, fig1_synopsis):
        author = node_by_tag(fig1_synopsis, "author")
        keyword = node_by_tag(fig1_synopsis, "keyword")
        element = keyword.extent[0]
        ancestor = fig1_synopsis.ancestor_in(element, author.node_id)
        assert ancestor is not None and ancestor.tag == "author"
        assert fig1_synopsis.ancestor_in(element, keyword.node_id) is None
