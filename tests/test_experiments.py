"""Tests for the experiment harness (repro.experiments) at tiny scale.

These exercise the same code paths the benchmarks run, on documents small
enough for the unit-test suite; the benchmark suite is where the real
scales and the paper-shape assertions live.
"""

import pytest

from repro.experiments import (
    DATASETS,
    ExperimentConfig,
    dataset,
    format_figure9a,
    format_negative,
    format_table1,
    format_table2,
    run_negative,
    run_table1,
    run_table2,
    sketch_error,
    synopsis_sweep,
    workload,
)
from repro.experiments.reporting import render_series, render_table

TINY = ExperimentConfig(
    scale=1500, queries=12, budget_steps=1, budget_stride=1024
)


class TestConfig:
    def test_env_defaults(self):
        config = ExperimentConfig()
        assert config.scale >= 1000
        assert config.queries >= 10

    def test_budgets_start_at_base(self):
        assert TINY.budgets(1000) == [1000, 2024]

    def test_seed_for(self):
        assert TINY.seed_for("imdb") == 2

    def test_hashable_for_caching(self):
        assert hash(TINY) == hash(
            ExperimentConfig(scale=1500, queries=12, budget_steps=1,
                             budget_stride=1024)
        )


class TestRunnerCaching:
    def test_dataset_cached(self):
        assert dataset("imdb", TINY) is dataset("imdb", TINY)

    def test_all_datasets_buildable(self):
        for name in DATASETS:
            tree = dataset(name, TINY)
            assert tree.element_count >= TINY.scale

    def test_workload_kinds(self):
        p_load = workload("imdb", "P", TINY)
        assert len(p_load.queries) == TINY.queries
        negative = workload("imdb", "negative", TINY)
        assert all(entry.true_count == 0 for entry in negative.queries)

    def test_unknown_workload_kind(self):
        with pytest.raises(ValueError):
            workload("imdb", "bogus", TINY)

    def test_sweep_shapes(self):
        snapshots = synopsis_sweep("imdb", TINY)
        assert len(snapshots) == TINY.budget_steps + 1
        sizes = [sketch.size_bytes() for sketch in snapshots]
        assert sizes == sorted(sizes)

    def test_sketch_error_in_range(self):
        load = workload("imdb", "P", TINY)
        error = sketch_error(synopsis_sweep("imdb", TINY)[0], load)
        assert 0.0 <= error < 50.0


class TestTables:
    def test_table1_rows(self):
        rows = run_table1(TINY)
        assert [row.name for row in rows] == ["XMark", "IMDB", "SProt"]
        text = format_table1(rows)
        assert "Element Count" in text
        assert "XMark" in text

    def test_table2_rows(self):
        rows = run_table2(TINY)
        assert len(rows) == 5
        text = format_table2(rows)
        assert "Avg. Result" in text


class TestNegativeExperiment:
    def test_negative_runs(self):
        results = run_negative(TINY)
        assert {r.name for r in results} == {"IMDB", "XMARK"}
        text = format_negative(results)
        assert "mean estimate" in text


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table("T", ["col", "x"], [["a", 1], ["bb", 22]], note="n")
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert lines[-1].strip() == "n"
        widths = {len(line) for line in lines[1:-1]}
        assert len(widths) == 1  # all rows aligned

    def test_render_table_empty_rows(self):
        text = render_table("T", ["a"], [])
        assert "== T ==" in text

    def test_render_series(self):
        text = render_series(
            "S", "x", "y", {"ONE": [(1.0, 2.0)], "TWO": [(3.0, 4.5)]}
        )
        assert "-- ONE --" in text
        assert "4.50" in text

    def test_format_figure9a_includes_paper_note(self):
        text = format_figure9a({"IMDB": [(1.0, 50.0)]})
        assert "124%" in text
