"""Cross-module integration and property tests.

These tie the pipeline together: random documents → synopses → estimates
checked against the exact evaluator, plus fuzzing for robustness and an
end-to-end XBUILD accuracy check on a correlated document.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CorrelatedSuffixTree, CSTEstimator
from repro.build import xbuild
from repro.doc import DocumentNode, DocumentTree
from repro.estimation import TwigEstimator
from repro.query import Path, count_bindings, parse_for_clause, twig
from repro.synopsis import EdgeRef, TwigXSketch, XSketchConfig


@st.composite
def two_level_documents(draw):
    """Documents: root r with `a` children, each with x/y children."""
    profiles = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=1,
            max_size=8,
        )
    )
    root = DocumentNode("r")
    for x_count, y_count in profiles:
        a = root.new_child("a")
        for _ in range(x_count):
            a.new_child("x")
        for _ in range(y_count):
            a.new_child("y")
    return DocumentTree(root)


class TestExactSketchMatchesEvaluator:
    """With exact joint distributions, the estimation framework is exact
    (the paper's zero-error claim), for any document of the twig's shape."""

    QUERY = parse_for_clause("for t0 in a, t1 in t0/x, t2 in t0/y")

    @settings(max_examples=50, deadline=None)
    @given(two_level_documents())
    def test_joint_histogram_is_exact(self, tree):
        truth = count_bindings(self.QUERY, tree)
        sketch = TwigXSketch.coarsest(tree, XSketchConfig(engine="exact"))
        a_nodes = sketch.graph.nodes_with_tag("a")
        assert len(a_nodes) == 1
        a = a_nodes[0].node_id
        refs = tuple(
            EdgeRef(a, node.node_id)
            for tag in ("x", "y")
            for node in sketch.graph.nodes_with_tag(tag)
        )
        if len(refs) == 2:  # both tags present somewhere in the document
            sketch.edge_stats[a] = [sketch.make_edge_histogram(a, refs, 64)]
        estimate = TwigEstimator(sketch).estimate(self.QUERY)
        assert estimate == pytest.approx(truth, abs=1e-6)


def random_document(rng: random.Random, elements: int = 120) -> DocumentTree:
    """A random tree over a small tag alphabet with random values."""
    tags = ["a", "b", "c", "d"]
    root = DocumentNode("r")
    nodes = [root]
    for _ in range(elements):
        parent = rng.choice(nodes)
        child = parent.new_child(rng.choice(tags))
        if rng.random() < 0.3:
            child.value = rng.randint(0, 10)
        nodes.append(child)
    return DocumentTree(root)


def random_query(rng: random.Random):
    """A random 2–4 node twig over the same alphabet."""
    from repro.query import Step, TwigNode, TwigQuery

    tags = ["a", "b", "c", "d", "r", "zzz"]
    counter = [0]

    def node():
        axis = "descendant" if rng.random() < 0.3 else "child"
        pred = None
        if rng.random() < 0.2:
            from repro.query import ValuePredicate

            pred = ValuePredicate(">", rng.randint(0, 10))
        step = Step(rng.choice(tags), axis, pred)
        result = TwigNode(f"t{counter[0]}", Path((step,)))
        counter[0] += 1
        return result

    root = node()
    current = root
    for _ in range(rng.randint(1, 3)):
        child = node()
        current.add_child(child)
        if rng.random() < 0.5:
            current = child
    return TwigQuery(root)


class TestFuzzing:
    def test_random_queries_never_crash(self):
        """Estimates on arbitrary twigs are finite and non-negative, and
        zero whenever exact evaluation is zero-bounded from above.

        Random documents produce dense cyclic synopses — the adversarial
        case for ``//`` expansion — so the estimator runs with tight
        depth/embedding caps, as an optimizer integration would.
        """
        rng = random.Random(1234)
        for trial in range(15):
            tree = random_document(rng)
            sketch = TwigXSketch.coarsest(tree)
            estimator = TwigEstimator(sketch, max_depth=6, max_embeddings=256)
            for _ in range(5):
                query = random_query(rng)
                estimate = estimator.estimate(query)
                assert estimate >= 0.0
                assert estimate == estimate  # not NaN
                truth = count_bindings(query, tree)
                if estimate == 0.0:
                    # structural zero-estimates must be sound: only
                    # value predicates may hide real matches
                    if truth > 0:
                        assert query.has_value_predicates()

    def test_random_documents_validate(self):
        rng = random.Random(99)
        for _ in range(10):
            tree = random_document(rng)
            tree.validate()
            sketch = TwigXSketch.coarsest(tree)
            sketch.validate()


class TestEndToEnd:
    def test_xbuild_fixes_figure4_style_correlation(self):
        """A document with anti-correlated b/c counts: the coarsest
        synopsis misestimates the pairing twig; a small XBUILD budget must
        cut that error substantially."""
        rng = random.Random(5)
        root = DocumentNode("r")
        for _ in range(150):
            a = root.new_child("a")
            if rng.random() < 0.5:
                counts = (rng.randint(8, 12), rng.randint(0, 1))
            else:
                counts = (rng.randint(0, 1), rng.randint(8, 12))
            for _ in range(counts[0]):
                a.new_child("b")
            for _ in range(counts[1]):
                a.new_child("c")
        tree = DocumentTree(root)
        query = parse_for_clause("for t0 in a, t1 in t0/b, t2 in t0/c")
        truth = count_bindings(query, tree)

        coarsest = TwigXSketch.coarsest(tree)
        coarse_error = abs(TwigEstimator(coarsest).estimate(query) - truth)
        built = xbuild(tree, coarsest.size_bytes() + 600, seed=3)
        built_error = abs(TwigEstimator(built).estimate(query) - truth)
        assert built_error < coarse_error * 0.5

    def test_cst_exact_on_unpruned_paths(self):
        """An unpruned CST reproduces exact chain-query counts."""
        rng = random.Random(7)
        tree = random_document(rng, elements=200)
        summary = CorrelatedSuffixTree.build(tree, budget_bytes=10**6)
        estimator = CSTEstimator(summary)
        for tags in [("a",), ("a", "b"), ("b", "c", "d")]:
            query = twig(Path.of(*tags))
            assert estimator.estimate(query) == pytest.approx(
                count_bindings(query, tree)
            )
