"""The paper's worked examples, end to end (DESIGN.md T1–T4).

This module is the index of exact paper-artefact checks; deeper variants
of several of these live next to the modules they exercise
(test_query_evaluator.py, test_synopsis_tsn.py, test_estimation_estimator.py).
"""

import pytest

from repro.datasets import figure1_document, figure4_documents
from repro.estimation import TwigEstimator
from repro.query import count_bindings, parse_for_clause
from repro.synopsis import (
    EdgeRef,
    TwigXSketch,
    XSketchConfig,
    exact_edge_distribution,
    label_split_synopsis,
)


def nid(graph, tag):
    return graph.nodes_with_tag(tag)[0].node_id


class TestT1_Example21:
    """T1 — Example 2.1: the five-variable twig over Figure 1 generates
    exactly three binding tuples."""

    QUERY = """
        for t0 in author,
            t1 in t0/name,
            t2 in t0/paper[year > 2000],
            t3 in t2/title,
            t4 in t2/keyword
    """

    def test_three_binding_tuples(self):
        tree = figure1_document()
        assert count_bindings(parse_for_clause(self.QUERY), tree) == 3


class TestT2_Figure4:
    """T2 — Figure 4: two documents with the same zero-error single-path
    XSKETCH but twig selectivities 2000 vs 10100."""

    QUERY = "for t0 in a, t1 in t0/b, t2 in t0/c"

    def test_selectivity_gap(self):
        doc_a, doc_b = figure4_documents()
        query = parse_for_clause(self.QUERY)
        assert count_bindings(query, doc_a) == 2000
        assert count_bindings(query, doc_b) == 10100

    def test_same_synopsis_shape(self):
        doc_a, doc_b = figure4_documents()
        for doc in (doc_a, doc_b):
            synopsis = label_split_synopsis(doc)
            assert all(
                edge.backward_stable and edge.forward_stable
                for edge in synopsis.edges.values()
            )
        assert (
            label_split_synopsis(doc_a).node_count
            == label_split_synopsis(doc_b).node_count
        )


class TestT3_Example31:
    """T3 — Example 3.1: the edge distribution f_P(C_K, C_Y, C_P, C_N)
    over Figure 1 (p4/p5 roles swapped; see repro.datasets.paperfig)."""

    def test_distribution_fractions(self):
        tree = figure1_document()
        synopsis = label_split_synopsis(tree)
        paper = nid(synopsis, "paper")
        author = nid(synopsis, "author")
        scope = [
            EdgeRef(paper, nid(synopsis, "keyword")),
            EdgeRef(paper, nid(synopsis, "year")),
            EdgeRef(author, paper),
            EdgeRef(author, nid(synopsis, "name")),
        ]
        dist = exact_edge_distribution(synopsis, paper, scope)
        assert dist.fraction((2, 1, 2, 1)) == pytest.approx(0.25)
        assert dist.fraction((1, 1, 2, 1)) == pytest.approx(0.25)
        assert dist.fraction((1, 1, 1, 1)) == pytest.approx(0.50)


class TestT4_WorkedExample:
    """T4 — Section 4's estimation walkthrough: with H_A(p, n) and
    H_P(k, y, p) the twig A{B, N, P{K, Y}} is estimated at 10/3."""

    def test_ten_thirds(self):
        tree = figure1_document()
        sketch = TwigXSketch.coarsest(tree, XSketchConfig(engine="exact"))
        author = nid(sketch.graph, "author")
        paper = nid(sketch.graph, "paper")
        sketch.edge_stats[author] = [
            sketch.make_edge_histogram(
                author,
                (EdgeRef(author, paper), EdgeRef(author, nid(sketch.graph, "name"))),
                buckets=8,
            )
        ]
        sketch.edge_stats[paper] = [
            sketch.make_edge_histogram(
                paper,
                (
                    EdgeRef(paper, nid(sketch.graph, "keyword")),
                    EdgeRef(paper, nid(sketch.graph, "year")),
                    EdgeRef(author, paper),
                ),
                buckets=8,
            )
        ]
        query = parse_for_clause(
            """
            for t0 in author, t1 in t0/book, t2 in t0/name,
                t3 in t0/paper, t4 in t3/keyword, t5 in t3/year
            """
        )
        estimate = TwigEstimator(sketch).estimate(query)
        assert estimate == pytest.approx(10.0 / 3.0)
        assert count_bindings(query, tree) == 6  # truth differs: B is
        # combined under Forward Uniformity + independence, as in the paper
