"""Tests for the refinement operations (repro.build.refinements)."""

import pytest

from repro.build import (
    BStabilize,
    EdgeExpand,
    EdgeRefine,
    FStabilize,
    ValueRefine,
)
from repro.datasets import figure1_document, generate_imdb
from repro.errors import BuildError
from repro.synopsis import EdgeRef, TwigXSketch, XSketchConfig


@pytest.fixture()
def sketch():
    return TwigXSketch.coarsest(figure1_document())


def nid(sketch, tag):
    return sketch.graph.nodes_with_tag(tag)[0].node_id


class TestBStabilize:
    def test_creates_backward_stable_edge(self):
        tree = generate_imdb(3000, seed=2)
        sketch = TwigXSketch.coarsest(tree)
        movie = nid(sketch, "movie")
        # movies appear under imdb and under episode: pick the imdb edge
        edge = next(
            e for e in sketch.graph.parents_of(movie) if not e.backward_stable
        )
        refined = BStabilize(edge.source, edge.target).apply(sketch)
        refined.validate()
        movies = refined.graph.nodes_with_tag("movie")
        assert len(movies) == 2
        stabilized = refined.graph.edge(
            edge.source,
            next(
                m.node_id
                for m in movies
                if refined.graph.edge(edge.source, m.node_id) is not None
                and refined.graph.edge(edge.source, m.node_id).backward_stable
            ),
        )
        assert stabilized.backward_stable

    def test_rejects_stable_edge(self, sketch):
        author = nid(sketch, "author")
        paper = nid(sketch, "paper")
        with pytest.raises(BuildError):
            BStabilize(author, paper).apply(sketch)  # already B-stable

    def test_does_not_mutate_input(self):
        tree = generate_imdb(3000, seed=2)
        sketch = TwigXSketch.coarsest(tree)
        movie = nid(sketch, "movie")
        edge = next(
            e for e in sketch.graph.parents_of(movie) if not e.backward_stable
        )
        before = sketch.graph.node_count
        BStabilize(edge.source, edge.target).apply(sketch)
        assert sketch.graph.node_count == before
        sketch.validate()


class TestFStabilize:
    def test_splits_source_by_child_presence(self, sketch):
        author = nid(sketch, "author")
        book = nid(sketch, "book")
        refined = FStabilize(author, book).apply(sketch)
        refined.validate()
        authors = refined.graph.nodes_with_tag("author")
        assert len(authors) == 2
        sizes = sorted(node.count for node in authors)
        assert sizes == [1, 2]  # one author owns books, two do not
        with_books = next(
            n
            for n in authors
            if refined.graph.edge(n.node_id, book) is not None
        )
        assert refined.graph.edge(with_books.node_id, book).forward_stable

    def test_rejects_stable_edge(self, sketch):
        author = nid(sketch, "author")
        paper = nid(sketch, "paper")
        with pytest.raises(BuildError):
            FStabilize(author, paper).apply(sketch)

    def test_region(self, sketch):
        op = FStabilize(1, 2)
        assert op.region() == {1, 2}


class TestEdgeRefine:
    def test_doubles_budget(self):
        tree = generate_imdb(3000, seed=2)
        sketch = TwigXSketch.coarsest(tree)
        # find any node with a compressed (refinable) histogram
        node_id, index = next(
            (node_id, i)
            for node_id, histograms in sketch.edge_stats.items()
            for i, h in enumerate(histograms)
            if h.bucket_count() >= h.budget
        )
        old_budget = sketch.histograms_at(node_id)[index].budget
        refined = EdgeRefine(node_id, index).apply(sketch)
        assert refined.histograms_at(node_id)[index].budget == old_budget * 2
        assert refined.size_bytes() > sketch.size_bytes()

    def test_rejects_exact_histogram(self, sketch):
        author = nid(sketch, "author")
        # author's paper-count histogram has 2 distinct points; budget 2
        # already stores it exactly after one refine
        refined = sketch
        with pytest.raises(BuildError):
            for _ in range(5):
                refined = EdgeRefine(author, 0).apply(refined)

    def test_rejects_missing_histogram(self, sketch):
        with pytest.raises(BuildError):
            EdgeRefine(nid(sketch, "keyword"), 3).apply(sketch)


class TestEdgeExpand:
    def test_absorbs_sibling_and_joins_scope(self):
        tree = generate_imdb(3000, seed=2)
        sketch = TwigXSketch.coarsest(tree)
        movie = nid(sketch, "movie")
        histograms = sketch.histograms_at(movie)
        assert len(histograms) >= 2
        other_ref = histograms[1].scope[0]
        before_count = len(histograms)
        refined = EdgeExpand(movie, 0, other_ref).apply(sketch)
        after = refined.histograms_at(movie)
        assert len(after) == before_count - 1
        assert other_ref in after[0].scope
        assert len(after[0].scope) == 2

    def test_rejects_duplicate_ref(self, sketch):
        author = nid(sketch, "author")
        ref = sketch.histograms_at(author)[0].scope[0]
        with pytest.raises(BuildError):
            EdgeExpand(author, 0, ref).apply(sketch)

    def test_rejects_over_cap(self):
        config = XSketchConfig(max_histogram_dims=1)
        sketch = TwigXSketch.coarsest(figure1_document(), config)
        author = nid(sketch, "author")
        name = nid(sketch, "name")
        with pytest.raises(BuildError):
            EdgeExpand(author, 0, EdgeRef(author, name)).apply(sketch)

    def test_joint_captures_correlation(self):
        """After expanding to a joint (actor, producer) histogram with a
        generous budget, the figure-4-style estimate becomes exact."""
        from repro.datasets import figure4_documents
        from repro.estimation import TwigEstimator
        from repro.query import count_bindings, parse_for_clause

        doc_a, _ = figure4_documents()
        sketch = TwigXSketch.coarsest(doc_a, XSketchConfig(initial_edge_buckets=4))
        a = nid(sketch, "a")
        b_ref = sketch.histograms_at(a)[0].scope[0]
        c_ref = sketch.histograms_at(a)[1].scope[0]
        joined = EdgeExpand(a, 0, c_ref).apply(sketch)
        query = parse_for_clause("for t0 in a, t1 in t0/b, t2 in t0/c")
        estimate = TwigEstimator(joined).estimate(query)
        assert estimate == pytest.approx(count_bindings(query, doc_a))


class TestValueRefine:
    def test_doubles_value_budget(self):
        tree = generate_imdb(3000, seed=2)
        sketch = TwigXSketch.coarsest(tree)
        year = nid(sketch, "year")
        old_budget = sketch.value_summary(year).budget
        refined = ValueRefine(year).apply(sketch)
        assert refined.value_summary(year).budget == old_budget * 2

    def test_rejects_valueless_node(self, sketch):
        with pytest.raises(BuildError):
            ValueRefine(nid(sketch, "bib")).apply(sketch)
