"""Tests for workload generation and the evaluation metric."""

import pytest

from repro.datasets import generate_imdb
from repro.errors import WorkloadError
from repro.query import count_bindings
from repro.workload import (
    WorkloadGenerator,
    WorkloadSpec,
    average_relative_error,
    relative_error,
    sanity_bound,
)


@pytest.fixture(scope="module")
def imdb():
    return generate_imdb(6000, seed=2)


@pytest.fixture(scope="module")
def generator(imdb):
    return WorkloadGenerator(imdb, WorkloadSpec(seed=5))


@pytest.fixture(scope="module")
def workload(generator):
    return generator.positive_workload(40)


class TestPositiveWorkload:
    def test_count(self, workload):
        assert len(workload.queries) == 40

    def test_all_positive(self, workload):
        assert all(q.true_count > 0 for q in workload.queries)

    def test_true_counts_exact(self, workload, imdb):
        for entry in workload.queries[:10]:
            assert count_bindings(entry.query, imdb) == entry.true_count

    def test_node_count_in_range(self, workload):
        for entry in workload.queries:
            assert 4 <= entry.query.structural_node_count() <= 8

    def test_fanout_near_paper(self, workload):
        assert 1.3 <= workload.average_fanout() <= 2.3

    def test_deterministic(self, imdb):
        first = WorkloadGenerator(imdb, WorkloadSpec(seed=9)).positive_workload(10)
        second = WorkloadGenerator(imdb, WorkloadSpec(seed=9)).positive_workload(10)
        assert [q.query.text() for q in first.queries] == [
            q.query.text() for q in second.queries
        ]

    def test_p_workload_has_no_value_predicates(self, workload):
        assert not any(
            entry.query.has_value_predicates() for entry in workload.queries
        )


class TestPVWorkload:
    def test_half_have_value_predicates(self, imdb):
        spec = WorkloadSpec(seed=6, value_predicates=True)
        workload = WorkloadGenerator(imdb, spec).positive_workload(60)
        with_values = sum(
            1 for e in workload.queries if e.query.has_value_predicates()
        )
        assert 12 <= with_values <= 48  # ~half, with sampling slack

    def test_still_positive(self, imdb):
        spec = WorkloadSpec(seed=6, value_predicates=True)
        workload = WorkloadGenerator(imdb, spec).positive_workload(30)
        assert all(q.true_count > 0 for q in workload.queries)


class TestNegativeWorkload:
    def test_all_zero(self, generator, imdb):
        negative = generator.negative_workload(15)
        assert len(negative.queries) == 15
        for entry in negative.queries:
            assert entry.true_count == 0
            assert count_bindings(entry.query, imdb) == 0


class TestMetrics:
    def test_sanity_bound_percentile(self):
        counts = list(range(1, 101))
        assert sanity_bound(counts) == 10

    def test_sanity_bound_ignores_zeros(self):
        assert sanity_bound([0, 0, 5, 50, 500]) == 5

    def test_sanity_bound_all_zero(self):
        assert sanity_bound([0, 0]) == 1.0

    def test_relative_error(self):
        assert relative_error(150, 100, 10) == pytest.approx(0.5)
        assert relative_error(5, 0, 10) == pytest.approx(0.5)
        assert relative_error(100, 100, 10) == 0.0

    def test_relative_error_uses_bound_for_small_counts(self):
        # truth 1, bound 10: error divides by 10, not 1
        assert relative_error(11, 1, 10) == pytest.approx(1.0)

    def test_average(self):
        estimates = [110, 90, 200]
        truths = [100, 100, 100]
        error = average_relative_error(estimates, truths)
        # bound = 100 -> errors 0.1, 0.1, 1.0
        assert error == pytest.approx(0.4)

    def test_exclude_outliers(self):
        estimates = [100, 100_000]
        truths = [100, 100]
        full = average_relative_error(estimates, truths)
        trimmed = average_relative_error(estimates, truths, exclude_above=10.0)
        assert full > 100
        assert trimmed == pytest.approx(0.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(WorkloadError):
            average_relative_error([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            average_relative_error([], [])

    def test_zero_bound_rejected(self):
        with pytest.raises(WorkloadError):
            relative_error(1, 1, 0)


class TestWorkloadStats:
    def test_average_result(self, workload):
        expected = sum(q.true_count for q in workload.queries) / len(
            workload.queries
        )
        assert workload.average_result() == pytest.approx(expected)

    def test_true_counts_order(self, workload):
        assert workload.true_counts() == [q.true_count for q in workload.queries]

    def test_empty_workload_stats(self):
        from repro.workload import Workload

        empty = Workload("empty")
        assert empty.average_result() == 0.0
        assert empty.average_fanout() == 0.0
