"""Unit tests for the document tree model (repro.doc.node / tree)."""

import pytest

from repro.doc import DocumentNode, DocumentTree, build_tree, subtree_size
from repro.errors import DocumentError


def small_tree() -> DocumentTree:
    return build_tree(
        ("bib", [("author", [("name", "Ann", []), ("paper", ["title"])]), "author"]),
        name="small",
    )


class TestDocumentNode:
    def test_add_child_sets_parent(self):
        parent = DocumentNode("a")
        child = parent.new_child("b")
        assert child.parent is parent
        assert parent.children == [child]

    def test_reparenting_rejected(self):
        parent = DocumentNode("a")
        child = parent.new_child("b")
        with pytest.raises(ValueError):
            DocumentNode("c").add_child(child)

    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            DocumentNode("")

    def test_is_leaf_and_attribute(self):
        node = DocumentNode("a")
        attr = node.new_child("@id", 7)
        assert not node.is_leaf
        assert attr.is_leaf
        assert attr.is_attribute
        assert not node.is_attribute

    def test_depth(self):
        root = DocumentNode("a")
        mid = root.new_child("b")
        leaf = mid.new_child("c")
        assert root.depth == 0
        assert mid.depth == 1
        assert leaf.depth == 2

    def test_iter_subtree_preorder(self):
        root = DocumentNode("a")
        b = root.new_child("b")
        b.new_child("d")
        root.new_child("c")
        assert [n.tag for n in root.iter_subtree()] == ["a", "b", "d", "c"]

    def test_iter_descendants_excludes_self(self):
        root = DocumentNode("a")
        root.new_child("b")
        assert [n.tag for n in root.iter_descendants()] == ["b"]

    def test_iter_ancestors(self):
        root = DocumentNode("a")
        leaf = root.new_child("b").new_child("c")
        assert [n.tag for n in leaf.iter_ancestors()] == ["b", "a"]

    def test_children_with_tag_and_count(self):
        root = DocumentNode("a")
        root.new_child("b")
        root.new_child("c")
        root.new_child("b")
        assert len(root.children_with_tag("b")) == 2
        assert root.child_count("b") == 2
        assert root.child_count("z") == 0

    def test_label_path(self):
        root = DocumentNode("a")
        leaf = root.new_child("b").new_child("c")
        assert leaf.label_path() == ("a", "b", "c")


class TestDocumentTree:
    def test_freeze_assigns_preorder_ids(self):
        tree = small_tree()
        tags = [n.tag for n in tree.nodes()]
        assert tags == ["bib", "author", "name", "paper", "title", "author"]
        assert [n.node_id for n in tree.nodes()] == list(range(6))

    def test_element_count_and_tags(self):
        tree = small_tree()
        assert tree.element_count == 6
        assert set(tree.tags) == {"bib", "author", "name", "paper", "title"}

    def test_extent(self):
        tree = small_tree()
        assert len(tree.extent("author")) == 2
        assert tree.extent("missing") == []

    def test_tag_counts(self):
        counts = small_tree().tag_counts()
        assert counts["author"] == 2
        assert counts["bib"] == 1

    def test_node_by_id(self):
        tree = small_tree()
        assert tree.node_by_id(0) is tree.root
        with pytest.raises(DocumentError):
            tree.node_by_id(99)

    def test_iter_edges_count(self):
        tree = small_tree()
        assert sum(1 for _ in tree.iter_edges()) == tree.element_count - 1

    def test_max_depth(self):
        assert small_tree().max_depth() == 3

    def test_root_with_parent_rejected(self):
        parent = DocumentNode("a")
        child = parent.new_child("b")
        with pytest.raises(DocumentError):
            DocumentTree(child)

    def test_validate_passes_on_good_tree(self):
        small_tree().validate()

    def test_validate_detects_bad_parent_pointer(self):
        tree = small_tree()
        tree.root.children[0].parent = tree.root.children[1]
        with pytest.raises(DocumentError):
            tree.validate()

    def test_shared_node_detected(self):
        root = DocumentNode("a")
        shared = DocumentNode("b")
        root.children.append(shared)  # bypass add_child on purpose
        root.children.append(shared)
        shared.parent = root
        with pytest.raises(DocumentError):
            DocumentTree(root)


class TestBuildTree:
    def test_string_shorthand(self):
        tree = build_tree("solo")
        assert tree.root.tag == "solo"
        assert tree.element_count == 1

    def test_value_shorthand(self):
        tree = build_tree(("year", 2003))
        assert tree.root.value == 2003

    def test_nested(self):
        tree = build_tree(("a", [("b", 1, []), ("c", [("d", [])])]))
        assert [n.tag for n in tree.nodes()] == ["a", "b", "c", "d"]
        assert tree.extent("b")[0].value == 1

    def test_bad_spec_rejected(self):
        with pytest.raises(DocumentError):
            build_tree(("a", [42]))

    def test_subtree_size(self):
        tree = small_tree()
        assert subtree_size(tree.root) == 6
        assert subtree_size(tree.extent("paper")[0]) == 2
