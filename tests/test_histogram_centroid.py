"""Tests for the centroid (bucketized) histogram engine."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.histogram import CentroidHistogram, SparseDistribution, ops


def dist(mapping):
    return SparseDistribution(mapping)


class TestCentroidHistogram:
    def test_no_compression_when_under_budget(self):
        source = dist({(1, 1): 1, (5, 5): 1})
        hist = CentroidHistogram(source, buckets=4)
        assert hist.bucket_count() == 2
        assert sorted(hist.points()) == sorted(source.points())

    def test_compression_respects_budget(self):
        source = SparseDistribution.from_observations(
            [(i, i % 5) for i in range(50)]
        )
        hist = CentroidHistogram(source, buckets=8)
        assert hist.bucket_count() <= 8

    def test_mass_preserved(self):
        source = SparseDistribution.from_observations(
            [(i % 7, i % 3) for i in range(60)]
        )
        hist = CentroidHistogram(source, buckets=3)
        assert ops.total_mass(hist.points()) == pytest.approx(1.0)

    def test_means_preserved(self):
        source = SparseDistribution.from_observations(
            [(random.Random(7).randint(0, 20), 3) for _ in range(40)]
        )
        hist = CentroidHistogram(source, buckets=2)
        assert hist.mean(0) == pytest.approx(source.mean(0))
        assert hist.mean(1) == pytest.approx(source.mean(1))

    def test_single_bucket_collapses_to_mean(self):
        source = dist({(2, 10): 1, (4, 20): 1})
        hist = CentroidHistogram(source, buckets=1)
        points = hist.points()
        assert len(points) == 1
        vector, mass = points[0]
        assert mass == pytest.approx(1.0)
        assert vector == (pytest.approx(3.0), pytest.approx(15.0))

    def test_nearby_points_merge_first(self):
        source = dist({(1,): 10, (2,): 10, (100,): 1})
        hist = CentroidHistogram(source, buckets=2)
        vectors = sorted(v for (v,), _ in hist.points())
        # the outlier at 100 must survive; 1 and 2 merge
        assert vectors[-1] == pytest.approx(100.0)
        assert vectors[0] == pytest.approx(1.5)

    def test_bad_budget_rejected(self):
        with pytest.raises(SynopsisError):
            CentroidHistogram(dist({(1,): 1}), buckets=0)

    def test_large_input_prequantized(self):
        rng = random.Random(3)
        source = SparseDistribution.from_observations(
            [(rng.randint(0, 2000), rng.randint(0, 2000)) for _ in range(3000)]
        )
        hist = CentroidHistogram(source, buckets=16)
        assert hist.bucket_count() <= 16
        assert ops.total_mass(hist.points()) == pytest.approx(1.0)
        # means survive quantization + merging
        assert hist.mean(0) == pytest.approx(source.mean(0), rel=1e-6)


@st.composite
def observations(draw):
    width = draw(st.integers(min_value=1, max_value=3))
    count = draw(st.integers(min_value=1, max_value=60))
    vector = st.tuples(*[st.integers(min_value=0, max_value=50)] * width)
    return draw(st.lists(vector, min_size=count, max_size=count))


class TestCentroidProperties:
    @settings(max_examples=40, deadline=None)
    @given(observations(), st.integers(min_value=1, max_value=10))
    def test_mass_and_mean_invariants(self, obs, budget):
        source = SparseDistribution.from_observations(obs)
        hist = CentroidHistogram(source, budget)
        assert hist.bucket_count() <= max(budget, 1)
        assert math.isclose(ops.total_mass(hist.points()), 1.0, rel_tol=1e-9)
        for dim in range(source.dimensions):
            assert math.isclose(
                hist.mean(dim), source.mean(dim), rel_tol=1e-7, abs_tol=1e-7
            )

    @settings(max_examples=40, deadline=None)
    @given(observations())
    def test_exact_at_generous_budget(self, obs):
        source = SparseDistribution.from_observations(obs)
        hist = CentroidHistogram(source, buckets=len(obs) + 1)
        if source.point_count <= 512:
            assert sorted(hist.points()) == sorted(source.points())
