"""Tests for exact sparse distributions and point-list ops."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.histogram import SparseDistribution, ops


def dist(mapping):
    return SparseDistribution(mapping)


class TestConstruction:
    def test_normalizes(self):
        d = dist({(1,): 2, (2,): 2})
        assert d.fraction((1,)) == pytest.approx(0.5)

    def test_from_observations(self):
        d = SparseDistribution.from_observations([(1, 2), (1, 2), (3, 4)])
        assert d.fraction((1, 2)) == pytest.approx(2 / 3)
        assert d.point_count == 2

    def test_empty_rejected(self):
        with pytest.raises(SynopsisError):
            dist({})
        with pytest.raises(SynopsisError):
            SparseDistribution.from_observations([])

    def test_inconsistent_widths_rejected(self):
        with pytest.raises(SynopsisError):
            dist({(1,): 1, (1, 2): 1})

    def test_negative_rejected(self):
        with pytest.raises(SynopsisError):
            dist({(1,): -1, (2,): 2})

    def test_zero_mass_rejected(self):
        with pytest.raises(SynopsisError):
            dist({(1,): 0})


class TestQueries:
    def test_points_sum_to_one(self):
        d = dist({(1, 1): 1, (2, 3): 3})
        assert ops.total_mass(d.points()) == pytest.approx(1.0)

    def test_marginal(self):
        d = dist({(1, 5): 1, (1, 7): 1, (2, 5): 2})
        marginal = d.marginal([0])
        assert marginal.fraction((1,)) == pytest.approx(0.5)
        assert marginal.fraction((2,)) == pytest.approx(0.5)

    def test_expected_product_single_dim(self):
        # the paper's example: f_A(10,100)=0.5, f_A(100,10)=0.5
        d = dist({(10, 100): 1, (100, 10): 1})
        assert d.expected_product([0]) == pytest.approx(55.0)
        assert d.expected_product([0, 1]) == pytest.approx(1000.0)

    def test_expected_product_empty_dims_is_mass(self):
        d = dist({(3,): 1, (5,): 1})
        assert d.expected_product([]) == pytest.approx(1.0)

    def test_mean(self):
        d = dist({(2,): 1, (4,): 3})
        assert d.mean(0) == pytest.approx(3.5)

    def test_fraction_absent(self):
        assert dist({(1,): 1}).fraction((9,)) == 0.0


class TestOps:
    def test_normalize_empty(self):
        assert ops.normalize([]) == []

    def test_condition_exact_match(self):
        points = [((1.0, 2.0), 0.25), ((1.0, 3.0), 0.25), ((2.0, 4.0), 0.5)]
        conditioned = ops.condition(points, {0: 1.0})
        assert ops.total_mass(conditioned) == pytest.approx(1.0)
        assert sorted(v for (v,), _ in conditioned) == [2.0, 3.0]

    def test_condition_nearest_fallback(self):
        points = [((1.0, 2.0), 0.5), ((5.0, 7.0), 0.5)]
        conditioned = ops.condition(points, {0: 4.0})
        # nearest on dim 0 is the 5.0 point
        assert conditioned == [((7.0,), 1.0)]

    def test_condition_no_assignment(self):
        points = [((1.0,), 1.0)]
        assert ops.condition(points, {}) == points

    def test_mass_where_positive(self):
        points = [((0.0,), 0.25), ((2.0,), 0.75)]
        assert ops.mass_where_positive(points, 0) == pytest.approx(0.75)

    def test_marginalize_merges(self):
        points = [((1.0, 9.0), 0.5), ((1.0, 7.0), 0.5)]
        merged = ops.marginalize(points, [0])
        assert merged == [((1.0,), 1.0)]


@st.composite
def observations(draw):
    width = draw(st.integers(min_value=1, max_value=3))
    count = draw(st.integers(min_value=1, max_value=40))
    vector = st.tuples(*[st.integers(min_value=0, max_value=30)] * width)
    return draw(st.lists(vector, min_size=count, max_size=count))


class TestProperties:
    @given(observations())
    def test_unit_mass(self, obs):
        d = SparseDistribution.from_observations(obs)
        assert math.isclose(ops.total_mass(d.points()), 1.0, rel_tol=1e-9)

    @given(observations())
    def test_marginal_preserves_mass_and_mean(self, obs):
        d = SparseDistribution.from_observations(obs)
        marginal = d.marginal([0])
        assert math.isclose(ops.total_mass(marginal.points()), 1.0, rel_tol=1e-9)
        assert math.isclose(marginal.mean(0), d.mean(0), rel_tol=1e-9, abs_tol=1e-9)

    @given(observations())
    def test_expected_product_matches_direct_average(self, obs):
        d = SparseDistribution.from_observations(obs)
        dims = list(range(len(obs[0])))
        direct = sum(math.prod(vector) for vector in obs) / len(obs)
        assert math.isclose(d.expected_product(dims), direct, rel_tol=1e-9, abs_tol=1e-9)
