"""Tests for path / for-clause parsing (repro.query.parser, forclause)."""

import pytest

from repro.errors import ParseError, QueryError
from repro.query import (
    CHILD,
    DESCENDANT,
    Path,
    Step,
    ValuePredicate,
    parse_for_clause,
    parse_path,
)


class TestParsePath:
    def test_simple_chain(self):
        path = parse_path("author/paper/title")
        assert path.tags() == ("author", "paper", "title")
        assert all(step.axis == CHILD for step in path.steps)

    def test_leading_slash_is_child(self):
        path = parse_path("/author/name")
        assert path.tags() == ("author", "name")
        assert path.steps[0].axis == CHILD

    def test_descendant_axis(self):
        path = parse_path("//keyword")
        assert path.steps[0].axis == DESCENDANT

    def test_mixed_axes(self):
        path = parse_path("site//item/name")
        assert [s.axis for s in path.steps] == [CHILD, DESCENDANT, CHILD]

    def test_value_predicate_gt(self):
        path = parse_path("year{>2000}")
        pred = path.steps[0].value_pred
        assert pred == ValuePredicate(">", 2000)

    def test_value_predicate_equality_default(self):
        path = parse_path("type{Action}")
        assert path.steps[0].value_pred == ValuePredicate("=", "Action")

    def test_value_predicate_quoted(self):
        path = parse_path('type{="Action Movie"}')
        assert path.steps[0].value_pred == ValuePredicate("=", "Action Movie")

    def test_range_predicate(self):
        path = parse_path("year{1990..1999}")
        assert path.steps[0].value_pred == ValuePredicate("range", 1990, 1999)

    def test_branch_predicate(self):
        path = parse_path("paper[year{>2000}]/title")
        paper = path.steps[0]
        assert len(paper.branches) == 1
        branch = paper.branches[0]
        assert branch.tags() == ("year",)
        assert branch.steps[0].value_pred == ValuePredicate(">", 2000)

    def test_xpath_sugar_comparison_in_branch(self):
        path = parse_path("paper[year > 2000]")
        branch = path.steps[0].branches[0]
        assert branch.steps[0].value_pred == ValuePredicate(">", 2000)

    def test_xpath_sugar_with_leading_slash(self):
        path = parse_path('movie[/type = "Action"]')
        branch = path.steps[0].branches[0]
        assert branch.tags() == ("type",)
        assert branch.steps[0].value_pred == ValuePredicate("=", "Action")

    def test_multi_step_branch(self):
        path = parse_path("author[paper/keyword]")
        branch = path.steps[0].branches[0]
        assert branch.tags() == ("paper", "keyword")

    def test_nested_branch(self):
        path = parse_path("author[paper[year{>2000}]]")
        outer = path.steps[0].branches[0]
        inner = outer.steps[0].branches[0]
        assert inner.tags() == ("year",)

    def test_multiple_branches(self):
        path = parse_path("paper[title][keyword]")
        assert len(path.steps[0].branches) == 2

    def test_descendant_branch(self):
        path = parse_path("site[//keyword]")
        branch = path.steps[0].branches[0]
        assert branch.steps[0].axis == DESCENDANT

    def test_attribute_and_text_names(self):
        path = parse_path("item/@id")
        assert path.tags() == ("item", "@id")

    @pytest.mark.parametrize(
        "bad",
        ["", "/", "a//", "a[", "a{", "a{>}", "a]b", "a{1..}", "a b c"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_path(bad)

    def test_round_trip_text(self):
        for text in [
            "author/paper/title",
            "//keyword",
            "paper[year{>2000}]/title",
            "year{1990..1999}",
            "a[b/c][d]",
        ]:
            path = parse_path(text)
            assert parse_path(path.text()).text() == path.text()


class TestValuePredicate:
    def test_matching_numeric(self):
        assert ValuePredicate(">", 2000).matches(2001)
        assert not ValuePredicate(">", 2000).matches(2000)
        assert ValuePredicate("range", 10, 20).matches(10)
        assert ValuePredicate("range", 10, 20).matches(20)
        assert not ValuePredicate("range", 10, 20).matches(21)

    def test_matching_string(self):
        assert ValuePredicate("=", "Action").matches("Action")
        assert ValuePredicate("!=", "Action").matches("Drama")

    def test_type_mismatch_is_nonmatch(self):
        assert not ValuePredicate(">", 2000).matches("late")
        assert not ValuePredicate("=", "Action").matches(3)

    def test_none_never_matches(self):
        assert not ValuePredicate("=", 1).matches(None)

    def test_bad_operator_rejected(self):
        with pytest.raises(QueryError):
            ValuePredicate("~", 1)

    def test_range_requires_high(self):
        with pytest.raises(QueryError):
            ValuePredicate("range", 1)

    def test_single_bound_rejects_high(self):
        with pytest.raises(QueryError):
            ValuePredicate("=", 1, 2)


class TestForClause:
    def test_paper_intro_query(self):
        query = parse_for_clause(
            """
            for t0 in //movie[/type = "Action"],
                t1 in t0/actor,
                t2 in t0/producer
            return t1, t2
            """
        )
        nodes = query.nodes()
        assert [n.var for n in nodes] == ["t0", "t1", "t2"]
        assert nodes[0].path.steps[0].axis == DESCENDANT
        assert len(query.root.children) == 2

    def test_nested_variables(self):
        query = parse_for_clause(
            "for a in author, p in a/paper, k in p/keyword"
        )
        assert query.root.var == "a"
        assert query.root.children[0].var == "p"
        assert query.root.children[0].children[0].var == "k"

    def test_descendant_from_variable(self):
        query = parse_for_clause("for a in author, k in a//keyword")
        k = query.root.children[0]
        assert k.path.steps[0].axis == DESCENDANT

    def test_dollar_variables(self):
        query = parse_for_clause("for $a in author, $n in $a/name")
        assert query.root.var == "a"
        assert query.root.children[0].var == "n"

    def test_unknown_parent_rejected(self):
        with pytest.raises(ParseError):
            parse_for_clause("for a in author, n in b/name")

    def test_duplicate_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_for_clause("for a in author, a in a/name")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_for_clause("for ")


class TestTwigQueryModel:
    def test_structural_node_count_counts_steps(self):
        query = parse_for_clause("for a in author, k in a/paper/keyword")
        assert query.size == 2
        assert query.structural_node_count() == 3

    def test_has_value_predicates(self):
        plain = parse_for_clause("for a in author, p in a/paper")
        valued = parse_for_clause("for a in author, p in a/paper[year > 2000]")
        assert not plain.has_value_predicates()
        assert valued.has_value_predicates()

    def test_internal_fanouts(self):
        query = parse_for_clause(
            "for a in author, n in a/name, p in a/paper, k in p/keyword"
        )
        assert sorted(query.internal_fanouts()) == [1, 2]

    def test_text_rendering_parses_back(self):
        query = parse_for_clause("for a in author, p in a/paper, n in a/name")
        text = query.text()
        assert "a in author" in text
        assert "p in paper" in text
