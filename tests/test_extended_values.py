"""Tests for extended value histograms H^v(V, C1..Ck) and value-expand.

The paper's Section 3.2 extension: joint value/count distributions that
capture value↔structure correlation (e.g. Action movies carrying large
casts), consumed by the estimator through the ExtendedUse plan entries.
"""

import pytest

from repro.build import ValueExpand
from repro.datasets import generate_imdb, movie_document
from repro.errors import BuildError, SynopsisError
from repro.estimation import TwigEstimator, enumerate_embeddings, tree_parse
from repro.histogram import ValueCountHistogram
from repro.query import ValuePredicate, count_bindings, parse_for_clause
from repro.synopsis import EdgeRef, TwigXSketch, XSketchConfig


def nid(sketch, tag):
    return sketch.graph.nodes_with_tag(tag)[0].node_id


class TestValueCountHistogram:
    def test_numeric_joint(self):
        observations = [(1990, (2,)), (1991, (3,)), (2001, (10,)), (2002, (12,))]
        hist = ValueCountHistogram(observations, value_buckets=2, count_buckets=4)
        assert hist.match_mass(ValuePredicate(">", 2000)) == pytest.approx(0.5)
        points = hist.conditional_points(ValuePredicate(">", 2000))
        mean = sum(v[0] * m for v, m in points)
        assert mean == pytest.approx(11.0)

    def test_string_joint(self):
        observations = [("Action", (20,))] * 3 + [("Doc", (1,))] * 7
        hist = ValueCountHistogram(observations, value_buckets=4, count_buckets=4)
        assert hist.match_mass(ValuePredicate("=", "Action")) == pytest.approx(0.3)
        points = hist.conditional_points(ValuePredicate("=", "Action"))
        assert points == [((20.0,), 1.0)]

    def test_remainder_pool(self):
        observations = [("a", (1,))] * 8 + [("b", (5,)), ("c", (9,))]
        hist = ValueCountHistogram(observations, value_buckets=1, count_buckets=4)
        # 'b' falls in the pool of 2 distinct values with mass 0.2
        assert hist.match_mass(ValuePredicate("=", "b")) == pytest.approx(0.1)
        pool_points = hist.conditional_points(ValuePredicate("=", "b"))
        mean = sum(v[0] * m for v, m in pool_points)
        assert mean == pytest.approx(7.0)  # pool average of 5 and 9

    def test_missing_values_tracked(self):
        observations = [(None, (4,))] * 2 + [("x", (1,))] * 2
        hist = ValueCountHistogram(observations, value_buckets=2, count_buckets=2)
        assert hist.missing_mass == pytest.approx(0.5)
        assert hist.match_mass(ValuePredicate("=", "x")) == pytest.approx(0.5)
        unconditioned = hist.conditional_points(None)
        mean = sum(v[0] * m for v, m in unconditioned)
        assert mean == pytest.approx(2.5)

    def test_no_match_is_empty(self):
        hist = ValueCountHistogram([("x", (1,))], 2, 2)
        assert hist.match_mass(ValuePredicate("=", "zzz")) == 0.0
        assert hist.conditional_points(ValuePredicate("=", "zzz")) == []

    def test_invalid_inputs(self):
        with pytest.raises(SynopsisError):
            ValueCountHistogram([], 2, 2)
        with pytest.raises(SynopsisError):
            ValueCountHistogram([("x", (1,)), ("y", (1, 2))], 2, 2)
        with pytest.raises(SynopsisError):
            ValueCountHistogram([("x", (1,))], 0, 2)

    def test_range_bucket_partial_overlap(self):
        observations = [(year, (1,)) for year in range(1990, 2010)]
        hist = ValueCountHistogram(observations, value_buckets=2, count_buckets=2)
        mass = hist.match_mass(ValuePredicate.between(1995, 2004))
        assert mass == pytest.approx(0.5, abs=0.08)


class TestExtendedSummary:
    @pytest.fixture()
    def sketch(self):
        sketch = TwigXSketch.coarsest(movie_document(), XSketchConfig(engine="exact"))
        movie = nid(sketch, "movie")
        sketch.extended_stats[movie] = [
            sketch.make_extended_summary(
                movie,
                "type",
                (
                    EdgeRef(movie, nid(sketch, "actor")),
                    EdgeRef(movie, nid(sketch, "producer")),
                ),
                value_buckets=6,
                count_buckets=8,
            )
        ]
        return sketch

    def test_branch_value_predicate_estimated_exactly(self, sketch):
        tree = sketch.graph.tree
        for genre in ["Action", "Documentary", "Drama"]:
            query = parse_for_clause(
                f'for m in movie[/type = "{genre}"], a in m/actor, p in m/producer'
            )
            truth = count_bindings(query, tree)
            estimate = TwigEstimator(sketch).estimate(query)
            assert estimate == pytest.approx(truth, rel=0.01)

    def test_plan_contains_extended_use(self, sketch):
        query = parse_for_clause(
            'for m in movie[/type = "Action"], a in m/actor, p in m/producer'
        )
        (embedding,) = enumerate_embeddings(query, sketch.graph)
        plans = tree_parse(embedding, sketch)
        plan = plans[id(embedding.root)]
        assert len(plan.extended_uses) == 1
        use = plan.extended_uses[0]
        assert use.absorbed_branch == 0
        assert len(use.expansion) == 2
        assert plan.absorbed_branches == {0}

    def test_without_predicate_extended_unused(self, sketch):
        query = parse_for_clause("for m in movie, a in m/actor")
        (embedding,) = enumerate_embeddings(query, sketch.graph)
        plans = tree_parse(embedding, sketch)
        assert not plans[id(embedding.root)].extended_uses

    def test_size_accounting(self, sketch):
        movie = nid(sketch, "movie")
        summary = sketch.extended_at(movie)[0]
        assert summary.size_bytes() > 0
        bare = TwigXSketch.coarsest(movie_document(), XSketchConfig(engine="exact"))
        assert sketch.size_bytes() == bare.size_bytes() + summary.size_bytes()

    def test_survives_node_split(self, sketch):
        movie = nid(sketch, "movie")
        part = {sketch.graph.node(movie).extent[0].node_id}
        first, second = sketch.split_node(movie, part)
        sketch.validate()
        assert sketch.extended_at(first) or sketch.extended_at(second)
        for part_id in (first, second):
            for summary in sketch.extended_at(part_id):
                assert summary.value_tag == "type"


class TestOwnValueExtended:
    def test_own_value_predicate(self):
        """H^v on the node's own values absorbs the node's value pred."""
        tree = generate_imdb(3000, seed=2)
        sketch = TwigXSketch.coarsest(tree, XSketchConfig(engine="exact"))
        year = nid(sketch, "year")
        # year nodes have no children; give the extended summary a count
        # scope anyway via... years are leaves, so extended summaries with
        # own values apply to nodes with children; use movie+year instead
        movie = nid(sketch, "movie")
        summary = sketch.make_extended_summary(
            movie,
            "year",
            (EdgeRef(movie, nid(sketch, "actor")),),
            value_buckets=4,
            count_buckets=6,
        )
        sketch.extended_stats[movie] = [summary]
        query = parse_for_clause(
            "for m in movie[year < 1990], a in m/actor"
        )
        truth = count_bindings(query, tree)
        estimate = TwigEstimator(sketch).estimate(query)
        assert truth > 0
        assert estimate == pytest.approx(truth, rel=0.6)
        # the independence estimate (no extended stats) is further off
        sketch.extended_stats = {}
        independent = TwigEstimator(sketch).estimate(query)
        assert abs(estimate - truth) <= abs(independent - truth)


class TestValueExpandRefinement:
    def test_apply_installs_summary(self):
        tree = generate_imdb(3000, seed=2)
        sketch = TwigXSketch.coarsest(tree)
        movie = nid(sketch, "movie")
        scope = (EdgeRef(movie, nid(sketch, "actor")),)
        refined = ValueExpand(movie, "type", scope).apply(sketch)
        assert len(refined.extended_at(movie)) == 1
        assert refined.size_bytes() > sketch.size_bytes()
        assert not sketch.extended_at(movie)  # input untouched

    def test_duplicate_source_rejected(self):
        tree = generate_imdb(3000, seed=2)
        sketch = TwigXSketch.coarsest(tree)
        movie = nid(sketch, "movie")
        scope = (EdgeRef(movie, nid(sketch, "actor")),)
        refined = ValueExpand(movie, "type", scope).apply(sketch)
        with pytest.raises(BuildError):
            ValueExpand(movie, "type", scope).apply(refined)

    def test_proposals_skip_nondiscriminative_sources(self):
        from repro.build.sampling import _value_expand_proposals

        tree = generate_imdb(3000, seed=2)
        sketch = TwigXSketch.coarsest(tree)
        movie = nid(sketch, "movie")
        proposals = _value_expand_proposals(sketch, movie)
        tags = {p.value_tag for p in proposals}
        assert "title" not in tags  # titles are near-unique strings
        assert tags & {"type", "year"}
