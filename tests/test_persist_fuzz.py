"""Corruption-fuzz tests for synopsis persistence.

Property: for ANY corruption of a serialized sketch — bit flips in the
raw bytes, truncation, or structured mutations of the JSON payload —
``sketch_from_dict``/``load_sketch`` must either produce a sketch
equivalent to the original or raise ``SynopsisIntegrityError`` (a
``SynopsisError``).  Never a silent wrong estimate, never a bare
``KeyError``/``TypeError``/``ValueError``.

CI runs these under the ``fuzz`` hypothesis profile (larger example
budget) by exporting ``HYPOTHESIS_PROFILE=fuzz``.
"""

import copy
import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import movie_document
from repro.errors import SynopsisError, SynopsisIntegrityError
from repro.synopsis import (
    TwigXSketch,
    XSketchConfig,
    payload_digest,
    sketch_from_dict,
    sketch_to_dict,
    validate_sketch,
)

settings.register_profile(
    "default",
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
settings.register_profile(
    "fuzz",
    max_examples=400,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def _base_sketch():
    return TwigXSketch.coarsest(
        movie_document(), XSketchConfig(initial_value_buckets=4)
    )


BASE_SKETCH = _base_sketch()
BASE_PAYLOAD = json.loads(json.dumps(sketch_to_dict(BASE_SKETCH)))
BASE_TEXT = json.dumps(BASE_PAYLOAD)
BASE_BYTES = BASE_TEXT.encode("utf8")
BASE_DIGEST = BASE_PAYLOAD["digest"]


def _loads_equal_or_integrity_error(payload):
    """Byte-level corruption property: the digest is NOT re-forged, so
    any change to the payload must be detected — an accepted load can
    only be the original synopsis."""
    try:
        loaded = sketch_from_dict(payload)
    except SynopsisIntegrityError:
        return
    except SynopsisError:
        # version negotiation rejects unsupported versions with the
        # parent type; that is still a typed, documented outcome.
        return
    # Accepted: the payload must describe the same synopsis.
    assert validate_sketch(loaded) == []
    assert loaded.graph.node_count == BASE_SKETCH.graph.node_count
    assert loaded.graph.edge_count == BASE_SKETCH.graph.edge_count
    assert sketch_to_dict(loaded)["digest"] == BASE_DIGEST


def _typed_outcome_or_valid(payload):
    """Forged-digest property: a mutated payload whose digest was
    recomputed is indistinguishable from a freshly written file, so it
    cannot be required to equal the base.  The guarantee is weaker but
    still absolute: a strict load either raises the typed error or
    yields a synopsis satisfying every invariant — never a sketch that
    silently serves wrong or non-finite estimates, never a stray
    ``KeyError``/``TypeError``."""
    try:
        loaded = sketch_from_dict(payload, strict=True)
    except SynopsisIntegrityError:
        return
    except SynopsisError:
        return
    assert validate_sketch(loaded) == []


class TestBitFlips:
    @given(
        offset=st.integers(min_value=0, max_value=len(BASE_BYTES) - 1),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_single_bit_flip(self, offset, bit):
        corrupted = bytearray(BASE_BYTES)
        corrupted[offset] ^= 1 << bit
        try:
            payload = json.loads(bytes(corrupted).decode("utf8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            # load_sketch maps decode failures to SynopsisIntegrityError;
            # nothing further to check at the dict layer.
            return
        if not isinstance(payload, dict):
            with pytest.raises(SynopsisIntegrityError):
                sketch_from_dict(payload)
            return
        _loads_equal_or_integrity_error(payload)

    @given(
        offsets=st.lists(
            st.integers(min_value=0, max_value=len(BASE_BYTES) - 1),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    def test_multi_byte_corruption(self, offsets):
        corrupted = bytearray(BASE_BYTES)
        for offset in offsets:
            corrupted[offset] ^= 0xFF
        try:
            payload = json.loads(bytes(corrupted).decode("utf8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict):
            with pytest.raises(SynopsisIntegrityError):
                sketch_from_dict(payload)
            return
        _loads_equal_or_integrity_error(payload)


class TestTruncation:
    @given(length=st.integers(min_value=0, max_value=len(BASE_TEXT)))
    def test_truncated_text(self, length):
        text = BASE_TEXT[:length]
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return
        if not isinstance(payload, dict):
            with pytest.raises(SynopsisIntegrityError):
                sketch_from_dict(payload)
            return
        _loads_equal_or_integrity_error(payload)


def _all_paths(payload, prefix=()):
    """Every (path, container, key) triple addressing a payload slot."""
    slots = []
    if isinstance(payload, dict):
        items = payload.items()
    elif isinstance(payload, list):
        items = enumerate(payload)
    else:
        return slots
    for key, value in items:
        slots.append((prefix + (key,), payload, key))
        slots.extend(_all_paths(value, prefix + (key,)))
    return slots


_SLOT_COUNT = len(_all_paths(BASE_PAYLOAD))

_JUNK = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=True, allow_infinity=True, width=32),
    st.text(max_size=8),
    st.lists(st.integers(), max_size=3),
)


class TestStructuredMutation:
    """Mutate one slot of the decoded payload, re-forge the digest so the
    checksum cannot mask the damage, and require a typed outcome."""

    @given(
        slot=st.integers(min_value=0, max_value=_SLOT_COUNT - 1),
        junk=_JUNK,
    )
    def test_replace_any_slot(self, slot, junk):
        payload = copy.deepcopy(BASE_PAYLOAD)
        _, container, key = _all_paths(payload)[slot]
        container[key] = junk
        try:
            payload["digest"] = payload_digest(payload)
        except (TypeError, ValueError):
            # the junk is not canonically serializable; the stored file
            # could never contain it
            return
        _typed_outcome_or_valid(payload)

    @given(slot=st.integers(min_value=0, max_value=_SLOT_COUNT - 1))
    def test_delete_any_dict_key(self, slot):
        payload = copy.deepcopy(BASE_PAYLOAD)
        _, container, key = _all_paths(payload)[slot]
        if not isinstance(container, dict):
            return
        del container[key]
        if isinstance(payload, dict) and "digest" in payload:
            payload["digest"] = payload_digest(payload)
        _typed_outcome_or_valid(payload)
