"""Tests for the ValueSplit refinement (DESIGN.md E10)."""

import random

import pytest

from repro.build import ValueSplit, generate_candidates
from repro.build.sampling import _value_split_proposals
from repro.datasets import generate_imdb, movie_document
from repro.errors import BuildError
from repro.estimation import TwigEstimator
from repro.query import ValuePredicate, count_bindings, parse_for_clause
from repro.synopsis import TwigXSketch, XSketchConfig


@pytest.fixture()
def movie_sketch():
    return TwigXSketch.coarsest(movie_document(), XSketchConfig(engine="exact"))


def nid(sketch, tag):
    return sketch.graph.nodes_with_tag(tag)[0].node_id


class TestApply:
    def test_split_by_child_value(self, movie_sketch):
        movie = nid(movie_sketch, "movie")
        refined = ValueSplit(
            movie, ValuePredicate("=", "Action"), "type"
        ).apply(movie_sketch)
        refined.validate()
        parts = refined.graph.nodes_with_tag("movie")
        assert sorted(node.count for node in parts) == [2, 3]

    def test_split_by_own_value(self, movie_sketch):
        type_node = nid(movie_sketch, "type")
        refined = ValueSplit(
            type_node, ValuePredicate("=", "Action")
        ).apply(movie_sketch)
        refined.validate()
        parts = refined.graph.nodes_with_tag("type")
        assert sorted(node.count for node in parts) == [2, 3]

    def test_non_splitting_predicate_rejected(self, movie_sketch):
        movie = nid(movie_sketch, "movie")
        with pytest.raises(BuildError):
            ValueSplit(movie, ValuePredicate("=", "Western"), "type").apply(
                movie_sketch
            )

    def test_all_matching_predicate_rejected(self, movie_sketch):
        title = nid(movie_sketch, "title")
        with pytest.raises(BuildError):
            # every movie has a title child: the part is not proper
            ValueSplit(nid(movie_sketch, "movie"), ValuePredicate("!=", "x"),
                       "title").apply(movie_sketch)

    def test_dead_node_rejected(self, movie_sketch):
        with pytest.raises(BuildError):
            ValueSplit(999, ValuePredicate("=", "Action"), "type").apply(
                movie_sketch
            )

    def test_input_not_mutated(self, movie_sketch):
        before = movie_sketch.graph.node_count
        ValueSplit(
            nid(movie_sketch, "movie"), ValuePredicate("=", "Action"), "type"
        ).apply(movie_sketch)
        assert movie_sketch.graph.node_count == before


class TestEstimationEffect:
    def test_split_improves_genre_estimates(self, movie_sketch):
        """After the movie node splits by type, the genre-conditioned twig
        estimate becomes (nearly) exact: each part's statistics describe
        its own value population."""
        tree = movie_sketch.graph.tree
        query = parse_for_clause(
            'for m in movie[/type = "Action"], a in m/actor, p in m/producer'
        )
        truth = count_bindings(query, tree)
        coarse_estimate = TwigEstimator(movie_sketch).estimate(query)
        refined = ValueSplit(
            nid(movie_sketch, "movie"), ValuePredicate("=", "Action"), "type"
        ).apply(movie_sketch)
        refined_estimate = TwigEstimator(refined).estimate(query)
        assert abs(refined_estimate - truth) < abs(coarse_estimate - truth)
        assert refined_estimate == pytest.approx(truth, rel=0.05)


class TestCandidateGeneration:
    def test_proposals_from_string_child(self, movie_sketch):
        movie = nid(movie_sketch, "movie")
        proposals = _value_split_proposals(movie_sketch, movie)
        splits = [p for p in proposals if isinstance(p, ValueSplit)]
        assert splits
        assert any(p.child_tag == "type" for p in splits)

    def test_proposals_from_numeric_child(self):
        tree = generate_imdb(3000, seed=2)
        sketch = TwigXSketch.coarsest(tree)
        movie = sketch.graph.nodes_with_tag("movie")[0].node_id
        proposals = _value_split_proposals(sketch, movie)
        numeric = [
            p
            for p in proposals
            if isinstance(p, ValueSplit) and p.child_tag == "year"
        ]
        assert numeric
        assert numeric[0].predicate.op == "<"

    def test_candidates_include_value_splits(self):
        tree = generate_imdb(3000, seed=2)
        sketch = TwigXSketch.coarsest(tree)
        rng = random.Random(1)
        found = False
        for _ in range(10):
            for candidate in generate_candidates(sketch, rng):
                if isinstance(candidate, ValueSplit):
                    found = True
        assert found
