"""Tests for 1-D value histograms (numeric equi-depth + string top-k)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.histogram import (
    NumericValueHistogram,
    StringValueHistogram,
    build_value_histogram,
)
from repro.query import ValuePredicate


class TestNumericHistogram:
    def test_exact_with_many_buckets(self):
        values = [1990, 1995, 1995, 2000, 2005]
        hist = NumericValueHistogram(values, buckets=10)
        assert hist.selectivity(ValuePredicate(">", 2000)) == pytest.approx(1 / 5)
        assert hist.selectivity(ValuePredicate(">=", 2000)) == pytest.approx(2 / 5)
        assert hist.selectivity(ValuePredicate("<", 1995)) == pytest.approx(1 / 5)

    def test_range_predicate(self):
        values = list(range(100))
        hist = NumericValueHistogram(values, buckets=10)
        sel = hist.selectivity(ValuePredicate.between(10, 19))
        assert sel == pytest.approx(0.1, abs=0.03)

    def test_equality_uses_distinct_counts(self):
        values = [5] * 10 + [6] * 10
        hist = NumericValueHistogram(values, buckets=1)
        assert hist.selectivity(ValuePredicate("=", 5)) == pytest.approx(0.5)

    def test_inequality(self):
        values = [1, 2, 3, 4]
        hist = NumericValueHistogram(values, buckets=4)
        assert hist.selectivity(ValuePredicate("!=", 1)) == pytest.approx(0.75)

    def test_out_of_domain(self):
        hist = NumericValueHistogram([10, 20], buckets=2)
        assert hist.selectivity(ValuePredicate(">", 100)) == 0.0
        assert hist.selectivity(ValuePredicate("<", 0)) == 0.0

    def test_string_predicate_on_numeric_is_zero(self):
        hist = NumericValueHistogram([1, 2], buckets=2)
        assert hist.selectivity(ValuePredicate("=", "x")) == 0.0

    def test_bucket_budget(self):
        hist = NumericValueHistogram(list(range(100)), buckets=7)
        assert hist.bucket_count() == 7

    def test_empty_rejected(self):
        with pytest.raises(SynopsisError):
            NumericValueHistogram([], buckets=2)
        with pytest.raises(SynopsisError):
            NumericValueHistogram([1], buckets=0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=1000),
    )
    def test_range_selectivity_bounded_and_monotone(self, values, buckets, split):
        hist = NumericValueHistogram(values, buckets)
        below = hist.selectivity(ValuePredicate("<=", split))
        above = hist.selectivity(ValuePredicate(">", split))
        assert 0.0 <= below <= 1.0
        assert 0.0 <= above <= 1.0
        # ≤ and > partition the domain; allow bucket-interpolation slack
        assert below + above == pytest.approx(1.0, abs=0.5)


class TestStringHistogram:
    def test_top_values_exact(self):
        values = ["Action"] * 6 + ["Drama"] * 3 + ["Noir"]
        hist = StringValueHistogram(values, buckets=2)
        assert hist.selectivity(ValuePredicate("=", "Action")) == pytest.approx(0.6)
        assert hist.selectivity(ValuePredicate("=", "Drama")) == pytest.approx(0.3)

    def test_rest_pool_uniform(self):
        values = ["a"] * 8 + ["b", "c"]
        hist = StringValueHistogram(values, buckets=1)
        assert hist.selectivity(ValuePredicate("=", "b")) == pytest.approx(0.1)
        assert hist.selectivity(ValuePredicate("=", "zzz")) == pytest.approx(0.1)

    def test_missing_value_with_no_pool(self):
        hist = StringValueHistogram(["a", "a"], buckets=5)
        assert hist.selectivity(ValuePredicate("=", "b")) == 0.0

    def test_not_equal(self):
        hist = StringValueHistogram(["a"] * 3 + ["b"], buckets=2)
        assert hist.selectivity(ValuePredicate("!=", "a")) == pytest.approx(0.25)

    def test_numeric_predicate_on_strings_is_zero(self):
        hist = StringValueHistogram(["a"], buckets=1)
        assert hist.selectivity(ValuePredicate("=", 3)) == 0.0


class TestBuildDispatch:
    def test_numeric_dispatch(self):
        hist = build_value_histogram([1, 2, 3], buckets=2)
        assert hist.kind == "numeric"

    def test_string_dispatch(self):
        hist = build_value_histogram(["x", "y"], buckets=2)
        assert hist.kind == "string"

    def test_mixed_dispatch_to_string(self):
        hist = build_value_histogram([1, "x"], buckets=2)
        assert hist.kind == "string"

    def test_empty_rejected(self):
        with pytest.raises(SynopsisError):
            build_value_histogram([], buckets=2)
