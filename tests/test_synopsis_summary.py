"""Tests for the TwigXSketch summary object (repro.synopsis.summary)."""

import pytest

from repro.datasets.paperfig import figure1_document, figure4_documents
from repro.errors import SynopsisError
from repro.synopsis import EdgeRef, TwigXSketch, XSketchConfig


@pytest.fixture()
def sketch():
    return TwigXSketch.coarsest(figure1_document())


def nid(sketch, tag):
    return sketch.graph.nodes_with_tag(tag)[0].node_id


class TestConfig:
    def test_default_is_prototype(self):
        assert not XSketchConfig.prototype().include_backward
        assert XSketchConfig.full().include_backward

    def test_unknown_engine_rejected(self):
        with pytest.raises(SynopsisError):
            XSketchConfig(engine="psychic")


class TestCoarsest:
    def test_one_node_per_tag(self, sketch):
        assert sketch.graph.node_count == len(sketch.graph.tree.tags)

    def test_initial_histograms_cover_fstable_children_only(self, sketch):
        for node in sketch.graph.iter_nodes():
            for histogram in sketch.histograms_at(node.node_id):
                assert histogram.dimensions == 1
                (ref,) = histogram.scope
                assert ref.source == node.node_id
                edge = sketch.graph.edge(ref.source, ref.target)
                assert edge.forward_stable

    def test_author_histograms(self, sketch):
        author = nid(sketch, "author")
        targets = {
            sketch.graph.node(h.scope[0].target).tag
            for h in sketch.histograms_at(author)
        }
        # F-stable children of author: name, paper (book is not F-stable)
        assert targets == {"name", "paper"}

    def test_value_histograms_on_valued_nodes(self, sketch):
        assert sketch.value_summary(nid(sketch, "year")) is not None
        assert sketch.value_summary(nid(sketch, "name")) is not None
        assert sketch.value_summary(nid(sketch, "bib")) is None

    def test_validate(self, sketch):
        sketch.validate()

    def test_size_positive_and_decomposable(self, sketch):
        assert sketch.size_bytes() > 0
        assert sketch.size_kb() == pytest.approx(sketch.size_bytes() / 1024)


class TestHistogramBuilding:
    def test_make_edge_histogram_exact_under_budget(self, sketch):
        author = nid(sketch, "author")
        histogram = sketch.make_edge_histogram(
            author,
            (EdgeRef(author, nid(sketch, "paper")),),
            buckets=8,
        )
        points = dict(histogram.points())
        assert points[(2.0,)] == pytest.approx(1 / 3)
        assert points[(1.0,)] == pytest.approx(2 / 3)

    def test_dimension_cap_enforced(self, sketch):
        author = nid(sketch, "author")
        refs = tuple(
            EdgeRef(author, nid(sketch, tag)) for tag in ["paper", "name", "book"]
        )
        sketch.make_edge_histogram(author, refs, buckets=4)  # 3 dims: ok
        config = XSketchConfig(max_histogram_dims=2)
        small = TwigXSketch.coarsest(figure1_document(), config)
        author2 = nid(small, "author")
        refs2 = tuple(
            EdgeRef(author2, nid(small, tag)) for tag in ["paper", "name", "book"]
        )
        with pytest.raises(SynopsisError):
            small.make_edge_histogram(author2, refs2, buckets=4)

    def test_engines_interchangeable(self):
        for engine in ["centroid", "wavelet", "exact"]:
            sketch = TwigXSketch.coarsest(
                figure1_document(), XSketchConfig(engine=engine)
            )
            for histograms in sketch.edge_stats.values():
                for histogram in histograms:
                    total = sum(mass for _, mass in histogram.points())
                    assert total == pytest.approx(1.0)

    def test_index_of(self, sketch):
        author = nid(sketch, "author")
        ref = EdgeRef(author, nid(sketch, "paper"))
        histogram = sketch.make_edge_histogram(author, (ref,), buckets=2)
        assert histogram.index_of(ref) == 0
        assert histogram.index_of(EdgeRef(0, 999)) is None


class TestEdgeChildCount:
    def test_stored_counts(self, sketch):
        author = nid(sketch, "author")
        book = nid(sketch, "book")
        assert sketch.edge_child_count(author, book) == 2.0

    def test_missing_edge(self, sketch):
        assert sketch.edge_child_count(nid(sketch, "book"), nid(sketch, "year")) == 0.0

    def test_stability_fallback_bstable(self):
        config = XSketchConfig(store_edge_counts=False)
        sketch = TwigXSketch.coarsest(figure1_document(), config)
        author = nid(sketch, "author")
        book = nid(sketch, "book")
        # A→B is B-stable: fallback returns |B| exactly.
        assert sketch.edge_child_count(author, book) == 2.0

    def test_stability_fallback_unstable_apportions(self):
        config = XSketchConfig(store_edge_counts=False)
        sketch = TwigXSketch.coarsest(figure1_document(), config)
        paper = nid(sketch, "paper")
        book = nid(sketch, "book")
        title = nid(sketch, "title")
        estimate_paper = sketch.edge_child_count(paper, title)
        estimate_book = sketch.edge_child_count(book, title)
        assert estimate_paper + estimate_book == pytest.approx(6.0)
        # papers (4) outnumber books (2), so they get more of the titles
        assert estimate_paper > estimate_book

    def test_fallback_changes_size(self):
        stored = TwigXSketch.coarsest(figure1_document())
        bare = TwigXSketch.coarsest(
            figure1_document(), XSketchConfig(store_edge_counts=False)
        )
        assert stored.size_bytes() > bare.size_bytes()


class TestSplitMigration:
    def test_split_installs_default_stats(self, sketch):
        paper = nid(sketch, "paper")
        part = {sketch.graph.node(paper).extent[0].node_id}
        first, second = sketch.split_node(paper, part)
        sketch.validate()
        assert sketch.histograms_at(first) or sketch.histograms_at(second)
        assert paper not in sketch.edge_stats

    def test_split_remaps_foreign_scopes(self, sketch):
        author = nid(sketch, "author")
        paper = nid(sketch, "paper")
        # give author a histogram over the paper edge, then split paper
        sketch.edge_stats[author] = [
            sketch.make_edge_histogram(author, (EdgeRef(author, paper),), 4)
        ]
        part = {sketch.graph.node(paper).extent[0].node_id}
        sketch.split_node(paper, part)
        sketch.validate()
        for histogram in sketch.histograms_at(author):
            for ref in histogram.scope:
                assert sketch.graph.edge(ref.source, ref.target) is not None

    def test_copy_independent(self, sketch):
        duplicate = sketch.copy()
        paper = nid(duplicate, "paper")
        part = {duplicate.graph.node(paper).extent[0].node_id}
        duplicate.split_node(paper, part)
        duplicate.validate()
        sketch.validate()
        assert len(sketch.graph.nodes_with_tag("paper")) == 1


class TestFigure4Sketches:
    def test_identical_sizes_for_both_documents(self):
        doc_a, doc_b = figure4_documents()
        sketch_a = TwigXSketch.coarsest(doc_a)
        sketch_b = TwigXSketch.coarsest(doc_b)
        assert sketch_a.size_bytes() == sketch_b.size_bytes()
        assert sketch_a.graph.node_count == sketch_b.graph.node_count
