"""Tests for candidate sampling, oracles, and the XBUILD loop."""

import random

import pytest

from repro.build import (
    ExactOracle,
    SketchOracle,
    XBuild,
    build_reference_sketch,
    generate_candidates,
    xbuild,
)
from repro.build.sampling import RegionSampler
from repro.datasets import generate_imdb
from repro.estimation import TwigEstimator
from repro.query import count_bindings
from repro.synopsis import TwigXSketch, XSketchConfig
from repro.workload import (
    WorkloadGenerator,
    WorkloadSpec,
    average_relative_error,
)


@pytest.fixture(scope="module")
def imdb():
    return generate_imdb(5000, seed=2)


@pytest.fixture(scope="module")
def coarse(imdb):
    return TwigXSketch.coarsest(imdb)


class TestCandidates:
    def test_candidates_generated(self, coarse):
        candidates = generate_candidates(coarse, random.Random(1))
        assert candidates
        kinds = {type(c).__name__ for c in candidates}
        assert kinds & {"BStabilize", "FStabilize", "EdgeRefine", "EdgeExpand",
                        "ValueRefine"}

    def test_candidates_deduplicated(self, coarse):
        candidates = generate_candidates(coarse, random.Random(2))
        assert len(candidates) == len(set(candidates))

    def test_max_candidates_respected(self, coarse):
        candidates = generate_candidates(
            coarse, random.Random(3), max_candidates=4
        )
        assert len(candidates) <= 4

    def test_all_candidates_applicable(self, coarse):
        for candidate in generate_candidates(coarse, random.Random(4)):
            refined = candidate.apply(coarse)
            refined.validate()

    def test_backward_expansion_gated_by_config(self, imdb):
        forward_only = TwigXSketch.coarsest(imdb, XSketchConfig())
        full = TwigXSketch.coarsest(imdb, XSketchConfig.full())

        def backward_expansions(sketch):
            rng = random.Random(5)
            out = []
            for _ in range(10):
                for candidate in generate_candidates(sketch, rng):
                    if type(candidate).__name__ == "EdgeExpand":
                        if candidate.new_ref.source != candidate.node_id:
                            out.append(candidate)
            return out

        assert not backward_expansions(forward_only)
        assert backward_expansions(full)


class TestRegionSampler:
    def test_samples_touch_region(self, imdb, coarse):
        sampler = RegionSampler(imdb, random.Random(6))
        movie = coarse.graph.nodes_with_tag("movie")[0].node_id
        queries = sampler.sample_for_regions(coarse, {movie}, queries=8)
        assert queries
        for query in queries:
            assert count_bindings(query, imdb) > 0

    def test_empty_region_is_empty(self, imdb, coarse):
        sampler = RegionSampler(imdb, random.Random(7))
        assert sampler.sample_for_regions(coarse, {99_999}, queries=4) == []


class TestOracles:
    def test_exact_oracle_counts(self, imdb):
        oracle = ExactOracle(imdb)
        generator = WorkloadGenerator(imdb, WorkloadSpec(seed=8))
        workload = generator.positive_workload(5)
        for entry in workload.queries:
            assert oracle.true_count(entry.query) == entry.true_count

    def test_exact_oracle_caches(self, imdb):
        oracle = ExactOracle(imdb)
        generator = WorkloadGenerator(imdb, WorkloadSpec(seed=9))
        (entry,) = generator.positive_workload(1).queries
        first = oracle.true_count(entry.query)
        assert oracle.true_count(entry.query) == first
        assert len(oracle._cache) == 1

    def test_sketch_oracle_better_than_coarsest(self, imdb, coarse):
        """The reference summary approximates truths with much lower error
        than the coarsest synopsis (branch-correlated twigs remain its
        weak spot; XBUILD's default oracle is ExactOracle)."""
        oracle = SketchOracle(imdb)
        generator = WorkloadGenerator(imdb, WorkloadSpec(seed=10))
        workload = generator.positive_workload(25)
        truths = workload.true_counts()
        reference_estimates = [oracle.true_count(e.query) for e in workload.queries]
        coarse_estimator = TwigEstimator(coarse)
        coarse_estimates = [
            coarse_estimator.estimate(e.query) for e in workload.queries
        ]
        reference_error = average_relative_error(reference_estimates, truths)
        coarse_error = average_relative_error(coarse_estimates, truths)
        assert reference_error < coarse_error

    def test_reference_sketch_has_joint_histograms(self, imdb):
        reference = build_reference_sketch(imdb)
        widths = [
            histogram.dimensions
            for histograms in reference.edge_stats.values()
            for histogram in histograms
        ]
        assert max(widths) >= 2


class TestXBuildLoop:
    def test_reaches_budget(self, imdb, coarse):
        budget = coarse.size_bytes() + 2000
        result = XBuild(imdb, budget, seed=11, sample_queries=6).run()
        assert result.sketch.size_bytes() >= budget * 0.8
        assert result.steps
        result.sketch.validate()

    def test_sizes_monotonically_increase(self, imdb, coarse):
        result = XBuild(
            imdb, coarse.size_bytes() + 1500, seed=12, sample_queries=6
        ).run()
        sizes = [step.size_bytes for step in result.steps]
        assert sizes == sorted(sizes)

    def test_error_improves_on_correlated_data(self, imdb, coarse):
        workload = WorkloadGenerator(imdb, WorkloadSpec(seed=13)).positive_workload(
            40
        )
        truths = workload.true_counts()

        def error_of(sketch):
            estimator = TwigEstimator(sketch)
            return average_relative_error(
                [estimator.estimate(e.query) for e in workload.queries], truths
            )

        built = xbuild(
            imdb, coarse.size_bytes() + 3000, seed=14, sample_queries=8
        )
        assert error_of(built) < error_of(coarse)

    def test_on_step_callback(self, imdb, coarse):
        seen = []
        XBuild(
            imdb,
            coarse.size_bytes() + 800,
            seed=15,
            sample_queries=5,
            on_step=lambda sketch: seen.append(sketch.size_bytes()),
        ).run()
        assert seen
        assert seen == sorted(seen)
