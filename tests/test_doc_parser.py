"""Tests for XML parsing / serialization round-trips (repro.doc.parser)."""

import pytest

from repro.doc import (
    coerce_value,
    document_stats,
    parse_file,
    parse_string,
    serialize,
    text_size_bytes,
    write_file,
)
from repro.errors import ParseError


SAMPLE = """
<bib>
  <author id="a1">
    <name>Ann</name>
    <paper><title>Twigs</title><year>2002</year><keyword>xml</keyword></paper>
  </author>
</bib>
"""


class TestParseString:
    def test_basic_structure(self):
        tree = parse_string(SAMPLE, name="sample")
        assert tree.root.tag == "bib"
        assert len(tree.extent("author")) == 1
        assert len(tree.extent("paper")) == 1

    def test_attribute_becomes_at_child(self):
        tree = parse_string(SAMPLE)
        author = tree.extent("author")[0]
        attrs = [c for c in author.children if c.is_attribute]
        assert len(attrs) == 1
        assert attrs[0].tag == "@id"
        assert attrs[0].value == "a1"

    def test_leaf_text_becomes_value(self):
        tree = parse_string(SAMPLE)
        year = tree.extent("year")[0]
        assert year.value == 2002  # coerced to int

    def test_string_value_kept(self):
        tree = parse_string(SAMPLE)
        assert tree.extent("name")[0].value == "Ann"

    def test_mixed_content_gets_text_child(self):
        tree = parse_string("<p>hello <b>bold</b> tail</p>")
        tags = [c.tag for c in tree.root.children]
        assert tags == ["#text", "b", "#text"]

    def test_malformed_raises_parse_error(self):
        with pytest.raises(ParseError):
            parse_string("<a><b></a>")

    def test_bytes_input(self):
        tree = parse_string(b"<a><b/></a>")
        assert tree.element_count == 2


class TestCoerceValue:
    @pytest.mark.parametrize(
        "text,expected",
        [("42", 42), ("-7", -7), ("3.5", 3.5), ("abc", "abc"), (" 10 ", 10)],
    )
    def test_coercion(self, text, expected):
        assert coerce_value(text) == expected


class TestRoundTrip:
    def test_serialize_then_parse_preserves_model(self):
        original = parse_string(SAMPLE)
        reparsed = parse_string(serialize(original))
        assert [n.tag for n in reparsed.nodes()] == [n.tag for n in original.nodes()]
        assert [n.value for n in reparsed.nodes()] == [
            n.value for n in original.nodes()
        ]

    def test_special_characters_escaped(self):
        tree = parse_string("<a note='x&amp;y'><b>&lt;tag&gt;</b></a>")
        reparsed = parse_string(serialize(tree))
        assert reparsed.extent("b")[0].value == "<tag>"
        assert reparsed.extent("@note")[0].value == "x&y"

    def test_compact_mode(self):
        tree = parse_string("<a><b/><c/></a>")
        assert "\n" not in serialize(tree, pretty=False)

    def test_write_and_parse_file(self, tmp_path):
        tree = parse_string(SAMPLE)
        path = tmp_path / "out.xml"
        write_file(tree, path)
        reparsed = parse_file(path)
        assert reparsed.element_count == tree.element_count

    def test_parse_missing_file(self, tmp_path):
        with pytest.raises(ParseError):
            parse_file(tmp_path / "nope.xml")


class TestStats:
    def test_document_stats_fields(self):
        tree = parse_string(SAMPLE, name="sample")
        stats = document_stats(tree)
        assert stats.name == "sample"
        assert stats.element_count == tree.element_count
        assert stats.distinct_tags == len(tree.tags)
        assert stats.max_depth == 3
        assert stats.text_size_mb > 0
        assert stats.avg_fanout > 1

    def test_text_size_matches_serialization(self):
        tree = parse_string(SAMPLE)
        assert text_size_bytes(tree) == len(serialize(tree).encode("utf8"))
