"""Tests for XML parsing / serialization round-trips (repro.doc.parser)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.doc import (
    coerce_value,
    document_stats,
    parse_file,
    parse_string,
    serialize,
    text_size_bytes,
    write_file,
)
from repro.doc.tree import DocumentTree
from repro.errors import ParseError


SAMPLE = """
<bib>
  <author id="a1">
    <name>Ann</name>
    <paper><title>Twigs</title><year>2002</year><keyword>xml</keyword></paper>
  </author>
</bib>
"""


class TestParseString:
    def test_basic_structure(self):
        tree = parse_string(SAMPLE, name="sample")
        assert tree.root.tag == "bib"
        assert len(tree.extent("author")) == 1
        assert len(tree.extent("paper")) == 1

    def test_attribute_becomes_at_child(self):
        tree = parse_string(SAMPLE)
        author = tree.extent("author")[0]
        attrs = [c for c in author.children if c.is_attribute]
        assert len(attrs) == 1
        assert attrs[0].tag == "@id"
        assert attrs[0].value == "a1"

    def test_leaf_text_becomes_value(self):
        tree = parse_string(SAMPLE)
        year = tree.extent("year")[0]
        assert year.value == 2002  # coerced to int

    def test_string_value_kept(self):
        tree = parse_string(SAMPLE)
        assert tree.extent("name")[0].value == "Ann"

    def test_mixed_content_gets_text_child(self):
        tree = parse_string("<p>hello <b>bold</b> tail</p>")
        tags = [c.tag for c in tree.root.children]
        assert tags == ["#text", "b", "#text"]

    def test_malformed_raises_parse_error(self):
        with pytest.raises(ParseError):
            parse_string("<a><b></a>")

    def test_bytes_input(self):
        tree = parse_string(b"<a><b/></a>")
        assert tree.element_count == 2


class TestCoerceValue:
    @pytest.mark.parametrize(
        "text,expected",
        [("42", 42), ("-7", -7), ("3.5", 3.5), ("abc", "abc"), (" 10 ", 10)],
    )
    def test_coercion(self, text, expected):
        assert coerce_value(text) == expected


class TestRoundTrip:
    def test_serialize_then_parse_preserves_model(self):
        original = parse_string(SAMPLE)
        reparsed = parse_string(serialize(original))
        assert [n.tag for n in reparsed.nodes()] == [n.tag for n in original.nodes()]
        assert [n.value for n in reparsed.nodes()] == [
            n.value for n in original.nodes()
        ]

    def test_special_characters_escaped(self):
        tree = parse_string("<a note='x&amp;y'><b>&lt;tag&gt;</b></a>")
        reparsed = parse_string(serialize(tree))
        assert reparsed.extent("b")[0].value == "<tag>"
        assert reparsed.extent("@note")[0].value == "x&y"

    def test_compact_mode(self):
        tree = parse_string("<a><b/><c/></a>")
        assert "\n" not in serialize(tree, pretty=False)

    def test_write_and_parse_file(self, tmp_path):
        tree = parse_string(SAMPLE)
        path = tmp_path / "out.xml"
        write_file(tree, path)
        reparsed = parse_file(path)
        assert reparsed.element_count == tree.element_count

    def test_parse_missing_file(self, tmp_path):
        with pytest.raises(ParseError):
            parse_file(tmp_path / "nope.xml")


class TestHardenedParsing:
    """Strict/lenient modes, limits, and the ParseError-only guarantee."""

    def test_deep_document_parses_iteratively(self):
        depth = 3000  # far past the default Python recursion limit
        tree = parse_string("<a>" * depth + "</a>" * depth)
        assert tree.element_count == depth

    def test_strict_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_string("<a><b></a>")
        assert excinfo.value.position == 8
        assert excinfo.value.text.startswith("<a>")

    def test_lenient_recovers_partial_tree(self):
        tree = parse_string("<bib><author><name>Ann", mode="lenient")
        assert tree.root.tag == "bib"
        assert tree.extent("name")[0].value == "Ann"

    def test_lenient_ignores_trailing_garbage(self):
        tree = parse_string("<a><b/></a> junk & more junk", mode="lenient")
        assert tree.element_count == 2

    def test_lenient_without_root_still_raises(self):
        with pytest.raises(ParseError):
            parse_string("complete garbage", mode="lenient")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ParseError, match="parse mode"):
            parse_string("<a/>", mode="tolerant")

    def test_depth_limit_strict(self):
        with pytest.raises(ParseError, match="depth limit"):
            parse_string("<a><b><c/></b></a>", max_depth=2)

    def test_depth_limit_lenient_skips_deep_subtrees(self):
        tree = parse_string(
            "<a><b><c><d/></c></b><e/></a>", mode="lenient", max_depth=2
        )
        assert sorted(tree.tags) == ["a", "b", "e"]

    def test_size_limit_strict(self):
        text = "<a>" + "x" * 100 + "</a>"
        with pytest.raises(ParseError) as excinfo:
            parse_string(text, max_bytes=50)
        assert excinfo.value.position == 50

    def test_size_limit_lenient_truncates(self):
        tree = parse_string(
            "<a><b>1</b><c>2</c></a>", mode="lenient", max_bytes=12
        )
        assert sorted(tree.tags) == ["a", "b"]

    def test_file_errors_carry_path_and_position(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<a><b></a>")
        with pytest.raises(ParseError) as excinfo:
            parse_file(path)
        assert str(path) in str(excinfo.value)
        assert excinfo.value.position == 8

    def test_lenient_file_parse(self, tmp_path):
        path = tmp_path / "partial.xml"
        path.write_text("<bib><paper><title>Twigs")
        tree = parse_file(path, mode="lenient")
        assert tree.extent("title")[0].value == "Twigs"

    @settings(max_examples=60, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=len(SAMPLE)))
    def test_truncated_document_never_leaks_raw_errors(self, cut):
        """Any prefix of a valid document parses or raises ParseError with
        a position inside the input — never RecursionError & co."""
        prefix = SAMPLE[:cut]
        for mode in ("strict", "lenient"):
            try:
                tree = parse_string(prefix, mode=mode)
            except ParseError as error:
                assert error.position is None or (
                    0 <= error.position <= len(prefix.encode("utf8"))
                )
                assert isinstance(error.text, str)
            else:
                assert isinstance(tree, DocumentTree)

    @settings(max_examples=60, deadline=None)
    @given(text=st.text(max_size=120))
    def test_garbage_input_never_leaks_raw_errors(self, text):
        for mode in ("strict", "lenient"):
            try:
                tree = parse_string(text, mode=mode)
            except ParseError as error:
                assert error.position is None or (
                    0 <= error.position <= len(text.encode("utf8"))
                )
            else:
                assert isinstance(tree, DocumentTree)

    @settings(max_examples=40, deadline=None)
    @given(data=st.binary(max_size=120))
    def test_garbage_bytes_never_leak_raw_errors(self, data):
        for mode in ("strict", "lenient"):
            try:
                tree = parse_string(data, mode=mode)
            except ParseError as error:
                assert error.position is None or (
                    0 <= error.position <= len(data)
                )
            else:
                assert isinstance(tree, DocumentTree)


class TestStats:
    def test_document_stats_fields(self):
        tree = parse_string(SAMPLE, name="sample")
        stats = document_stats(tree)
        assert stats.name == "sample"
        assert stats.element_count == tree.element_count
        assert stats.distinct_tags == len(tree.tags)
        assert stats.max_depth == 3
        assert stats.text_size_mb > 0
        assert stats.avg_fanout > 1

    def test_text_size_matches_serialization(self):
        tree = parse_string(SAMPLE)
        assert text_size_bytes(tree) == len(serialize(tree).encode("utf8"))
