"""Tests for the queued serving front-end (repro.serve.pool)."""

import asyncio
import threading

import pytest

from repro.build import xbuild
from repro.datasets import generate_imdb
from repro.errors import ServiceError
from repro.obs.metrics import MetricsRegistry
from repro.query import parse_for_clause
from repro.serve import EstimatorService, ServePool, TIER_UNIFORM
from repro.workload import WorkloadGenerator, WorkloadSpec


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class GatedService(EstimatorService):
    """A service whose single-query path blocks until released — lets
    the tests hold a pool worker busy deterministically."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()
        self.started = threading.Event()

    def estimate(self, name, query, *, deadline=None, explain=None):
        self.started.set()
        self.gate.wait(timeout=30)
        return super().estimate(name, query, deadline=deadline)


@pytest.fixture(scope="module")
def tree():
    return generate_imdb(2000, seed=2)


@pytest.fixture(scope="module")
def sketch(tree):
    return xbuild(tree, budget_bytes=3 * 1024, seed=3)


@pytest.fixture(scope="module")
def queries(tree):
    spec = WorkloadSpec(seed=7, value_predicates=True)
    load = WorkloadGenerator(tree, spec).positive_workload(12)
    return [entry.query for entry in load.queries]


@pytest.fixture()
def query():
    return parse_for_clause("for m in movie, a in m/actor")


def _service(sketch):
    service = EstimatorService(metrics=MetricsRegistry())
    service.register("imdb", sketch)
    return service


class TestSubmission:
    def test_submit_matches_direct_estimate(self, sketch, queries):
        service = _service(sketch)
        direct = [service.estimate("imdb", q) for q in queries]
        with ServePool(service, workers=2) as pool:
            futures = [pool.submit("imdb", q) for q in queries]
            pooled = [f.result(timeout=30) for f in futures]
        assert [(r.estimate, r.source) for r in pooled] == [
            (r.estimate, r.source) for r in direct
        ]

    def test_submit_batch_matches_per_query(self, sketch, queries):
        service = _service(sketch)
        direct = [service.estimate("imdb", q) for q in queries]
        with ServePool(service, workers=2) as pool:
            batch = pool.submit_batch("imdb", queries).result(timeout=30)
        assert [(r.estimate, r.source) for r in batch] == [
            (r.estimate, r.source) for r in direct
        ]

    def test_estimate_async(self, sketch, query):
        service = _service(sketch)
        expected = service.estimate("imdb", query)

        async def drive(pool):
            return await pool.estimate_async("imdb", query)

        with ServePool(service, workers=1) as pool:
            response = asyncio.run(drive(pool))
        assert response.estimate == expected.estimate
        assert response.source == expected.source

    def test_pool_metrics_recorded(self, sketch, query):
        service = _service(sketch)
        with ServePool(service, workers=1) as pool:
            pool.submit("imdb", query).result(timeout=30)
        registry = service.metrics
        assert registry.get("serve_pool_requests_total").value(
            outcome="ok"
        ) == 1
        waited = registry.get("serve_pool_wait_seconds").snapshot_series()
        assert waited is not None and waited["count"] == 1


class TestValidation:
    def test_unknown_sketch_raises(self, sketch, query):
        service = _service(sketch)
        with ServePool(service, workers=1) as pool:
            with pytest.raises(ServiceError):
                pool.submit("nope", query)

    def test_bad_deadline_raises(self, sketch, query):
        service = _service(sketch)
        with ServePool(service, workers=1) as pool:
            with pytest.raises(ServiceError):
                pool.submit("imdb", query, deadline=0)

    def test_bad_sizing_raises(self, sketch):
        service = _service(sketch)
        with pytest.raises(ServiceError):
            ServePool(service, workers=0)
        with pytest.raises(ServiceError):
            ServePool(service, max_queue=0)

    def test_closed_pool_rejects_submissions(self, sketch, query):
        service = _service(sketch)
        pool = ServePool(service, workers=1)
        pool.close()
        with pytest.raises(ServiceError):
            pool.submit("imdb", query)


class TestShedding:
    def test_queue_full_sheds_to_uniform(self, sketch, query):
        service = GatedService(metrics=MetricsRegistry())
        service.register("imdb", sketch)
        pool = ServePool(service, workers=1, max_queue=1)
        try:
            # first request occupies the single worker...
            blocked = pool.submit("imdb", query)
            assert service.started.wait(timeout=30)
            # ...second fills the queue, third is over capacity
            queued = pool.submit("imdb", query)
            shed = pool.submit("imdb", query)
            assert shed.done()  # resolved immediately, no worker involved
            response = shed.result()
            assert response.source == TIER_UNIFORM
            assert response.estimate == service.uniform_prior
            assert "shed: queue full" in response.warnings
        finally:
            service.gate.set()
            pool.close()
        # the held and queued requests still completed normally
        assert blocked.result().source != TIER_UNIFORM
        assert queued.result().source != TIER_UNIFORM
        registry = service.metrics
        assert registry.get("serve_pool_shed_total").value(
            reason="queue_full"
        ) == 1
        assert registry.get("serve_pool_requests_total").value(
            outcome="shed"
        ) == 1

    def test_deadline_expired_in_queue_sheds(self, sketch, query):
        clock = FakeClock()
        service = GatedService(metrics=MetricsRegistry())
        service.register("imdb", sketch)
        pool = ServePool(service, workers=1, max_queue=4, clock=clock)
        try:
            blocked = pool.submit("imdb", query)
            assert service.started.wait(timeout=30)
            stale = pool.submit("imdb", query, deadline=0.05)
            clock.advance(1.0)  # the deadline elapses while queued
        finally:
            service.gate.set()
            pool.close()
        assert blocked.result().source != TIER_UNIFORM
        response = stale.result()
        assert response.source == TIER_UNIFORM
        assert "shed: deadline expired in queue" in response.warnings
        assert service.metrics.get("serve_pool_shed_total").value(
            reason="deadline"
        ) == 1

    def test_close_drains_queued_work(self, sketch, queries):
        service = _service(sketch)
        pool = ServePool(service, workers=1, max_queue=32)
        futures = [pool.submit("imdb", q) for q in queries]
        pool.close(wait=True)
        assert all(f.done() for f in futures)
        assert all(
            f.result().source != TIER_UNIFORM for f in futures
        )
