"""Tests for the ``repro.analysis`` static analyzer.

The broken fixture package under ``tests/fixtures/broken_pkg`` carries
exactly one violation of each contract/rule family; the tests pin the
rule id, file, and line of every expected finding, then check the real
repository comes back clean.
"""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import RULES, Finding, analyze_paths
from repro.analysis.engine import main, suppressed

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent
FIXTURE = TESTS_DIR / "fixtures" / "broken_pkg"
SRC = REPO_ROOT / "src"

EXPECTED_FIXTURE_FINDINGS = {
    ("missing-module", "__init__.py", 4),
    ("bad-export", "__init__.py", 6),
    ("unexported-name", "__init__.py", 3),
    ("missing-name", "a.py", 3),
    ("import-cycle", "a.py", 3),
    ("mutable-default", "a.py", 6),
    ("stray-print", "a.py", 12),
    ("float-count", "a.py", 22),
}


def test_fixture_findings_pin_rule_file_and_line():
    findings = analyze_paths([str(FIXTURE)])
    observed = {
        (f.rule, Path(f.path).name, f.line) for f in findings
    }
    assert observed == EXPECTED_FIXTURE_FINDINGS


def test_fixture_messages_name_the_offender():
    findings = analyze_paths([str(FIXTURE)])
    by_rule = {f.rule: f.message for f in findings}
    assert "broken_pkg.missing" in by_rule["missing-module"]
    assert "'phantom'" in by_rule["bad-export"]
    assert "'gamma'" in by_rule["missing-name"]
    assert "broken_pkg.a -> broken_pkg.b" in by_rule["import-cycle"]


def test_suppression_comment_hides_the_ignored_rule():
    findings = analyze_paths([str(FIXTURE)])
    # line 17 prints too, but carries `# analysis: ignore[stray-print]`
    assert not any(f.line == 17 for f in findings)


def test_suppressed_matches_bare_and_bracketed_forms():
    finding = Finding("x.py", 1, "stray-print", "msg")
    assert suppressed(finding, ["print(1)  # analysis: ignore"])
    assert suppressed(finding, ["print(1)  # analysis: ignore[stray-print]"])
    assert not suppressed(
        finding, ["print(1)  # analysis: ignore[mutable-default]"]
    )
    assert not suppressed(finding, ["print(1)"])


def test_every_reported_rule_is_registered():
    findings = analyze_paths([str(FIXTURE)])
    assert {f.rule for f in findings} <= set(RULES)


def test_repository_sources_are_clean():
    assert analyze_paths([str(SRC), str(TESTS_DIR)]) == []


def test_fixture_directory_is_skipped_under_the_tests_root():
    findings = analyze_paths([str(TESTS_DIR)])
    assert not any("broken_pkg" in f.path for f in findings)


def test_json_mode_is_machine_readable():
    stream = io.StringIO()
    code = main(["--json", str(FIXTURE)], stream=stream)
    assert code == 1
    payload = json.loads(stream.getvalue())
    assert len(payload) == len(EXPECTED_FIXTURE_FINDINGS)
    assert all(
        set(entry) == {"path", "line", "rule", "message"}
        for entry in payload
    )


def test_clean_run_exits_zero_with_no_output():
    stream = io.StringIO()
    code = main([str(SRC), str(TESTS_DIR)], stream=stream)
    assert code == 0
    assert stream.getvalue() == ""


def _run_module(*paths):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *paths],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )


def test_module_entry_point_exit_codes():
    broken = _run_module("tests/fixtures/broken_pkg")
    assert broken.returncode == 1
    assert "[missing-module]" in broken.stdout
    clean = _run_module("src", "tests")
    assert clean.returncode == 0, clean.stdout + clean.stderr


def test_nonexistent_path_is_a_usage_error():
    code = _run_module("no-such-directory").returncode
    assert code == 2
    stream = io.StringIO()
    assert main([str(FIXTURE), "no-such-directory"], stream=stream) == 2
    assert stream.getvalue() == ""
