"""Tests for the twig estimator, including the paper's worked example.

The central fixture rebuilds Section 4's setting: the Figure 1 document,
histograms H_A(p, n) and H_P(k, y, p) (p backward at P), and the twig
T = A{B, N, P{K, Y}}; the paper computes s(T) = 10/3.
"""

import pytest

from repro.datasets.paperfig import figure1_document, figure4_documents
from repro.estimation import TwigEstimator, enumerate_embeddings, tree_parse
from repro.query import count_bindings, parse_for_clause, parse_path, twig
from repro.synopsis import EdgeRef, TwigXSketch, XSketchConfig


def nid(sketch, tag):
    return sketch.graph.nodes_with_tag(tag)[0].node_id


@pytest.fixture()
def fig1():
    return figure1_document()


def worked_example_sketch(fig1) -> TwigXSketch:
    """Fig. 6(b): H_A(p, n) joint at A; H_P(k, y, p) at P with p backward."""
    sketch = TwigXSketch.coarsest(fig1, XSketchConfig(engine="exact"))
    author = nid(sketch, "author")
    paper = nid(sketch, "paper")
    sketch.edge_stats[author] = [
        sketch.make_edge_histogram(
            author,
            (EdgeRef(author, paper), EdgeRef(author, nid(sketch, "name"))),
            buckets=8,
        )
    ]
    sketch.edge_stats[paper] = [
        sketch.make_edge_histogram(
            paper,
            (
                EdgeRef(paper, nid(sketch, "keyword")),
                EdgeRef(paper, nid(sketch, "year")),
                EdgeRef(author, paper),  # backward count
            ),
            buckets=8,
        )
    ]
    return sketch


def worked_example_query():
    return parse_for_clause(
        """
        for t0 in author,
            t1 in t0/book,
            t2 in t0/name,
            t3 in t0/paper,
            t4 in t3/keyword,
            t5 in t3/year
        """
    )


class TestWorkedExample:
    def test_estimate_is_ten_thirds(self, fig1):
        sketch = worked_example_sketch(fig1)
        estimator = TwigEstimator(sketch)
        estimate = estimator.estimate(worked_example_query())
        assert estimate == pytest.approx(10.0 / 3.0)

    def test_true_selectivity_is_six(self, fig1):
        # the estimate differs from the truth because B is combined under
        # the Forward Uniformity + independence assumptions
        assert count_bindings(worked_example_query(), fig1) == 6

    def test_treeparse_sets(self, fig1):
        sketch = worked_example_sketch(fig1)
        query = worked_example_query()
        (embedding,) = enumerate_embeddings(query, sketch.graph)
        plans = tree_parse(embedding, sketch)
        root_plan = plans[id(embedding.root)]
        # E_A covers (A->P) and (A->N); U_A = {B}; D_A = {}
        assert len(root_plan.uses) == 1
        assert len(root_plan.uses[0].expansion) == 2
        assert not root_plan.uses[0].conditions
        assert [n.node_id for n in root_plan.uncovered] == [
            nid(sketch, "book")
        ]
        paper_node = next(
            child
            for child in embedding.root.children
            if child.node_id == nid(sketch, "paper")
        )
        paper_plan = plans[id(paper_node)]
        # E_P covers K and Y; D_P conditions on the covered (A->P) edge
        assert len(paper_plan.uses) == 1
        assert len(paper_plan.uses[0].expansion) == 2
        assert list(paper_plan.uses[0].conditions.values()) == [
            EdgeRef(nid(sketch, "author"), nid(sketch, "paper"))
        ]


class TestExactSketchIsExact:
    """With exact joint distributions over all needed edges, estimation
    reproduces the true selectivity (the paper's zero-error claim)."""

    def test_figure4_pairing_query(self):
        for document in figure4_documents():
            sketch = TwigXSketch.coarsest(document, XSketchConfig(engine="exact"))
            a = nid(sketch, "a")
            sketch.edge_stats[a] = [
                sketch.make_edge_histogram(
                    a,
                    (EdgeRef(a, nid(sketch, "b")), EdgeRef(a, nid(sketch, "c"))),
                    buckets=16,
                )
            ]
            query = parse_for_clause("for t0 in a, t1 in t0/b, t2 in t0/c")
            estimate = TwigEstimator(sketch).estimate(query)
            assert estimate == pytest.approx(count_bindings(query, document))

    def test_figure4_coarsest_cannot_distinguish(self):
        """Independent 1-D histograms give the same (wrong) answer for both
        documents — the motivating observation of Section 3.2."""
        query = parse_for_clause("for t0 in a, t1 in t0/b, t2 in t0/c")
        estimates = []
        for document in figure4_documents():
            sketch = TwigXSketch.coarsest(document, XSketchConfig(engine="exact"))
            estimates.append(TwigEstimator(sketch).estimate(query))
        assert estimates[0] == pytest.approx(estimates[1])
        # the independence estimate: 2 elements x 55 x 55
        assert estimates[0] == pytest.approx(2 * 55 * 55)

    def test_example31_query(self, fig1):
        sketch = TwigXSketch.coarsest(fig1, XSketchConfig(engine="exact"))
        author = nid(sketch, "author")
        paper = nid(sketch, "paper")
        sketch.edge_stats[paper] = [
            sketch.make_edge_histogram(
                paper,
                (
                    EdgeRef(paper, nid(sketch, "keyword")),
                    EdgeRef(author, paper),
                    EdgeRef(author, nid(sketch, "name")),
                ),
                buckets=8,
            )
        ]
        query = parse_for_clause(
            "for t0 in author, t1 in t0/name, t2 in t0/paper/keyword"
        )
        # estimation through H_A(name) x chain correlation; with the joint
        # at P unused for this shape, check against the exact count 5
        estimate = TwigEstimator(sketch).estimate(query)
        truth = count_bindings(query, fig1)
        assert truth == 5
        assert estimate == pytest.approx(truth, rel=0.35)


class TestPredicates:
    def test_value_predicate_scales_estimate(self, fig1):
        sketch = TwigXSketch.coarsest(
            fig1, XSketchConfig(engine="exact", initial_value_buckets=8)
        )
        estimator = TwigEstimator(sketch)
        plain = estimator.estimate(twig(parse_path("year")))
        filtered = estimator.estimate(twig(parse_path("year{>2000}")))
        assert plain == pytest.approx(4.0)
        assert filtered == pytest.approx(2.0)

    def test_branch_on_fstable_edge_is_free(self, fig1):
        sketch = TwigXSketch.coarsest(fig1, XSketchConfig(engine="exact"))
        estimator = TwigEstimator(sketch)
        plain = estimator.estimate(twig(parse_path("paper")))
        branched = estimator.estimate(twig(parse_path("paper[title]")))
        assert branched == pytest.approx(plain)  # P->T is F-stable

    def test_branch_on_unstable_edge_scales(self, fig1):
        sketch = TwigXSketch.coarsest(fig1, XSketchConfig(engine="exact"))
        estimator = TwigEstimator(sketch)
        estimate = estimator.estimate(twig(parse_path("author[book]")))
        # one of three authors owns books; uniformity gives min(1, 2/3)
        assert 0.5 <= estimate / 3.0 <= 1.0

    def test_value_predicate_on_valueless_node_is_zero(self, fig1):
        sketch = TwigXSketch.coarsest(fig1, XSketchConfig(engine="exact"))
        estimator = TwigEstimator(sketch)
        assert estimator.estimate(twig(parse_path("paper{=7}"))) == 0.0

    def test_branch_with_value_predicate(self, fig1):
        sketch = TwigXSketch.coarsest(
            fig1, XSketchConfig(engine="exact", initial_value_buckets=8)
        )
        estimator = TwigEstimator(sketch)
        estimate = estimator.estimate(twig(parse_path("paper[year{>2000}]")))
        truth = count_bindings(twig(parse_path("paper[year{>2000}]")), fig1)
        assert truth == 2
        assert estimate == pytest.approx(truth, rel=0.3)


class TestReport:
    def test_report_fields(self, fig1):
        sketch = TwigXSketch.coarsest(fig1)
        estimator = TwigEstimator(sketch)
        report = estimator.report(
            parse_for_clause("for b in bib, t in b//title")
        )
        assert report.embeddings == 2
        assert not report.truncated
        assert report.selectivity > 0

    def test_unmatchable_query_is_zero(self, fig1):
        sketch = TwigXSketch.coarsest(fig1)
        estimator = TwigEstimator(sketch)
        report = estimator.report(twig(parse_path("movie")))
        assert report.selectivity == 0.0
        assert report.embeddings == 0
