"""Tests for exact twig evaluation (repro.query.evaluator).

Includes the paper's Example 2.1 (3 binding tuples over Figure 1) and the
Figure 4 selectivity gap (2000 vs 10100).
"""

import pytest

from repro.datasets.paperfig import figure1_document, figure4_documents, movie_document
from repro.query import (
    Path,
    count_bindings,
    enumerate_bindings,
    eval_path,
    parse_for_clause,
    parse_path,
    path_exists,
    twig,
)


@pytest.fixture(scope="module")
def fig1():
    return figure1_document()


class TestEvalPath:
    def test_child_step(self, fig1):
        authors = eval_path(parse_path("author"), fig1.root)
        assert len(authors) == 3

    def test_chain(self, fig1):
        titles = eval_path(parse_path("author/paper/title"), fig1.root)
        assert len(titles) == 4

    def test_descendant(self, fig1):
        keywords = eval_path(parse_path("//keyword"), fig1.root)
        assert len(keywords) == 5
        titles = eval_path(parse_path("//title"), fig1.root)
        assert len(titles) == 6  # 4 paper titles + 2 book titles

    def test_descendant_dedup(self):
        # nested sections: //section//title must not double-count
        from repro.doc import build_tree

        tree = build_tree(
            ("doc", [("section", [("section", [("title", [])]), ("title", [])])])
        )
        titles = eval_path(parse_path("//section//title"), tree.root)
        assert len(titles) == 2

    def test_value_predicate(self, fig1):
        recent = eval_path(parse_path("author/paper/year{>2000}"), fig1.root)
        assert len(recent) == 2

    def test_branch_predicate(self, fig1):
        qualifying = eval_path(parse_path("author/paper[year{>2000}]"), fig1.root)
        assert len(qualifying) == 2

    def test_branch_with_multiple_conditions(self, fig1):
        with_books = eval_path(parse_path("author[book][paper]"), fig1.root)
        assert len(with_books) == 1

    def test_document_order(self, fig1):
        papers = eval_path(parse_path("author/paper"), fig1.root)
        ids = [p.node_id for p in papers]
        assert ids == sorted(ids)

    def test_no_match(self, fig1):
        assert eval_path(parse_path("movie"), fig1.root) == []


class TestPathExists:
    def test_exists(self, fig1):
        assert path_exists(parse_path("author/book"), fig1.root)

    def test_not_exists(self, fig1):
        assert not path_exists(parse_path("author/movie"), fig1.root)

    def test_exists_with_value(self, fig1):
        assert path_exists(parse_path("//year{>2002}"), fig1.root)
        assert not path_exists(parse_path("//year{>2010}"), fig1.root)


class TestExample21:
    """The paper's Example 2.1: the twig over Figure 1 yields 3 tuples."""

    def query(self):
        return parse_for_clause(
            """
            for t0 in author,
                t1 in t0/name,
                t2 in t0/paper[year > 2000],
                t3 in t2/title,
                t4 in t2/keyword
            """
        )

    def test_selectivity_is_three(self, fig1):
        assert count_bindings(self.query(), fig1) == 3

    def test_tuples_match_paper_table(self, fig1):
        bindings = enumerate_bindings(self.query(), fig1)
        assert len(bindings) == 3
        # Tuple structure: two tuples share the same (author, paper, title)
        # and differ in keyword; the third binds the second author.
        papers = {id(b["t2"]) for b in bindings}
        assert len(papers) == 2
        authors = {id(b["t0"]) for b in bindings}
        assert len(authors) == 2

    def test_limit(self, fig1):
        assert len(enumerate_bindings(self.query(), fig1, limit=2)) == 2


class TestFigure4:
    """Same single-path XSKETCH, twig selectivities 2000 vs 10100."""

    def pairing_query(self):
        return parse_for_clause("for t0 in a, t1 in t0/b, t2 in t0/c")

    def test_selectivities(self):
        doc_a, doc_b = figure4_documents()
        assert count_bindings(self.pairing_query(), doc_a) == 2000
        assert count_bindings(self.pairing_query(), doc_b) == 10100

    def test_single_path_counts_agree(self):
        doc_a, doc_b = figure4_documents()
        for path_text in ["a", "a/b", "a/c"]:
            path = parse_path(path_text)
            assert len(eval_path(path, doc_a.root)) == len(
                eval_path(path, doc_b.root)
            )


class TestCountBindings:
    def test_single_node_twig(self, fig1):
        query = twig(Path.of("author"))
        assert count_bindings(query, fig1) == 3

    def test_multiplicative_fanout(self, fig1):
        # keywords below each author's papers: (1+2) + 1 + 1 = 5
        query = parse_for_clause("for a in author, k in a/paper/keyword")
        assert count_bindings(query, fig1) == 5

    def test_zero_when_branch_fails(self, fig1):
        query = parse_for_clause("for a in author[movie], n in a/name")
        assert count_bindings(query, fig1) == 0

    def test_nested_twig(self, fig1):
        query = parse_for_clause(
            "for a in author, p in a/paper, t in p/title, k in p/keyword"
        )
        # p4: 1*1, p5: 1*2, p8: 1, p9: 1 -> 5
        assert count_bindings(query, fig1) == 5

    def test_descendant_twig(self, fig1):
        query = parse_for_clause("for b in bib, k in b//keyword")
        assert count_bindings(query, fig1) == 5

    def test_movie_intro_query(self):
        tree = movie_document()
        action = parse_for_clause(
            'for m in movie[/type = "Action"], a in m/actor, p in m/producer'
        )
        documentary = parse_for_clause(
            'for m in movie[/type = "Documentary"], a in m/actor, p in m/producer'
        )
        assert count_bindings(action, tree) == 10 * 3 + 8 * 2
        assert count_bindings(documentary, tree) == 2 * 1 + 1 * 1

    def test_enumerate_matches_count(self, fig1):
        query = parse_for_clause(
            "for a in author, p in a/paper, k in p/keyword, n in a/name"
        )
        assert len(enumerate_bindings(query, fig1)) == count_bindings(query, fig1)
