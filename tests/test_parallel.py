"""Tests for repro.parallel: the pool, replicas, and bit-determinism.

The determinism tests are the tentpole contract of the subsystem: a
parallel XBUILD (any worker count) produces the byte-identical synopsis
and refinement trail of the serial build, and batch estimation returns
exactly the per-query numbers.
"""

import pytest

from repro.build import XBuild
from repro.datasets import figure1_document
from repro.errors import ParallelError
from repro.estimation import BatchContext, TwigEstimator
from repro.obs.metrics import MetricsRegistry
from repro.parallel import WorkerPool, parallel_estimate_many, split_chunks
from repro.synopsis import sketch_to_dict
from repro.workload import WorkloadGenerator, WorkloadSpec


@pytest.fixture(scope="module")
def paperfig():
    return figure1_document()


@pytest.fixture(scope="module")
def paperfig_sketch(paperfig):
    return XBuild(paperfig, budget_bytes=3072, seed=17).run().sketch


@pytest.fixture(scope="module")
def paperfig_queries(paperfig):
    spec = WorkloadSpec(seed=11, value_predicates=True)
    load = WorkloadGenerator(paperfig, spec).positive_workload(30)
    return [entry.query for entry in load.queries]


# ----------------------------------------------------------------------
# the pool primitive
# ----------------------------------------------------------------------
class _Doubler:
    """A trivial replica: doubles tasks, accumulates broadcast offsets."""

    def __init__(self, offset):
        self.offset = offset

    def double(self, index, task):
        return task * 2 + self.offset

    def shift(self, amount):
        self.offset += amount

    def boom(self, index, task):
        raise ValueError(f"task {index} exploded")


def _doubler_factory(payload):
    return _Doubler(payload["offset"])


def _broken_factory(payload):
    raise RuntimeError("no bootstrap for you")


class TestSplitChunks:
    def test_balanced_and_contiguous(self):
        chunks = split_chunks(10, 3)
        assert [list(c) for c in chunks] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_fewer_items_than_parts(self):
        chunks = split_chunks(2, 4)
        assert [list(c) for c in chunks] == [[0], [1], [], []]

    def test_covers_exactly_once(self):
        for count in (0, 1, 7, 23):
            for parts in (1, 2, 5):
                flat = [i for c in split_chunks(count, parts) for i in c]
                assert flat == list(range(count))

    def test_invalid_parts(self):
        with pytest.raises(ParallelError):
            split_chunks(5, 0)


class TestWorkerPool:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_run_order_stable(self, workers):
        with WorkerPool(
            _doubler_factory, {"offset": 1}, workers=workers
        ) as pool:
            assert pool.run("double", list(range(10))) == [
                2 * n + 1 for n in range(10)
            ]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_broadcast_reaches_every_worker(self, workers):
        with WorkerPool(
            _doubler_factory, {"offset": 0}, workers=workers
        ) as pool:
            pool.broadcast("shift", 5)
            assert pool.run("double", [0, 0, 0, 0]) == [5, 5, 5, 5]

    def test_run_chunks_sticky_assignment(self):
        with WorkerPool(
            _doubler_factory, {"offset": 0}, workers=2
        ) as pool:
            merged = pool.run_chunks(
                "double", [[(7, 10)], [(3, 20)]]
            )
            assert merged == {7: 20, 3: 40}

    def test_too_many_chunks_rejected(self):
        with WorkerPool(
            _doubler_factory, {"offset": 0}, workers=2
        ) as pool:
            with pytest.raises(ParallelError, match="chunks"):
                pool.run_chunks("double", [[], [], []])

    def test_task_error_propagates_with_traceback(self):
        pool = WorkerPool(_doubler_factory, {"offset": 0}, workers=2)
        with pytest.raises(ParallelError, match="exploded") as excinfo:
            pool.run("boom", [1, 2, 3])
        assert "ValueError" in excinfo.value.worker_traceback

    def test_bootstrap_error_fails_constructor(self):
        with pytest.raises(ParallelError, match="bootstrap"):
            WorkerPool(_broken_factory, None, workers=2)

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(_doubler_factory, {"offset": 0}, workers=1)
        pool.close()
        with pytest.raises(ParallelError, match="closed"):
            pool.run("double", [1])

    def test_inline_mode_for_single_worker(self):
        pool = WorkerPool(_doubler_factory, {"offset": 0}, workers=1)
        assert pool.inline
        pool.close()


# ----------------------------------------------------------------------
# XBUILD determinism (the tentpole contract)
# ----------------------------------------------------------------------
class TestParallelXBuildDeterminism:
    @pytest.fixture(scope="class")
    def serial(self, paperfig):
        registry = MetricsRegistry()
        result = XBuild(
            paperfig, budget_bytes=4096, seed=17, metrics=registry
        ).run()
        return result, registry

    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_build(self, paperfig, serial, workers):
        serial_result, serial_registry = serial
        registry = MetricsRegistry()
        result = XBuild(
            paperfig,
            budget_bytes=4096,
            seed=17,
            metrics=registry,
            workers=workers,
        ).run()
        assert [
            (s.description, s.size_bytes, s.gain) for s in result.steps
        ] == [
            (s.description, s.size_bytes, s.gain)
            for s in serial_result.steps
        ]
        assert sketch_to_dict(result.sketch) == sketch_to_dict(
            serial_result.sketch
        )
        # the evaluation counters agree too: same classification, same
        # oracle traffic, same cache behaviour
        def counters(reg, name):
            return {
                tuple(sorted(labels.items())): value
                for labels, value in reg.get(name).series()
            }

        for name in (
            "build_candidates_total",
            "build_oracle_calls_total",
            "build_oracle_cache_total",
        ):
            assert counters(registry, name) == counters(
                serial_registry, name
            )

    def test_oracle_cache_hits_recorded(self, serial):
        _, registry = serial
        cache = registry.get("build_oracle_cache_total")
        assert cache.value(outcome="hit") > 0
        assert cache.value(outcome="miss") > 0
        # oracle evaluations == cache misses (each miss evaluates once)
        assert registry.get("build_oracle_calls_total").value() == (
            cache.value(outcome="miss")
        )


# ----------------------------------------------------------------------
# batch estimation
# ----------------------------------------------------------------------
class TestBatchEstimation:
    def test_estimate_many_equals_per_query(
        self, paperfig_sketch, paperfig_queries
    ):
        estimator = TwigEstimator(paperfig_sketch)
        serial = [estimator.estimate(q) for q in paperfig_queries]
        batched = TwigEstimator(paperfig_sketch).estimate_many(
            paperfig_queries
        )
        assert batched == serial

    def test_context_reuse_across_calls(
        self, paperfig_sketch, paperfig_queries
    ):
        estimator = TwigEstimator(paperfig_sketch)
        expected = [estimator.estimate(q) for q in paperfig_queries]
        context = BatchContext()
        first = estimator.estimate_many(paperfig_queries, context=context)
        hits_after_first = context.hits
        second = estimator.estimate_many(paperfig_queries, context=context)
        assert first == expected
        assert second == expected
        # the second pass reuses plans and memo entries
        assert context.hits > hits_after_first
        assert len(context.plans) <= len(paperfig_queries)

    def test_memo_shared_across_queries(
        self, paperfig_sketch, paperfig_queries
    ):
        context = BatchContext()
        TwigEstimator(paperfig_sketch).estimate_many(
            paperfig_queries, context=context
        )
        assert context.hits > 0  # common structure pays once

    def test_report_many_matches_report(
        self, paperfig_sketch, paperfig_queries
    ):
        estimator = TwigEstimator(paperfig_sketch)
        singles = [estimator.report(q) for q in paperfig_queries]
        batch = estimator.report_many(paperfig_queries)
        assert [
            (r.selectivity, r.embeddings, r.truncated) for r in batch
        ] == [(r.selectivity, r.embeddings, r.truncated) for r in singles]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_estimate_many_equal(
        self, paperfig_sketch, paperfig_queries, workers
    ):
        estimator = TwigEstimator(paperfig_sketch)
        expected = [estimator.estimate(q) for q in paperfig_queries]
        assert parallel_estimate_many(
            paperfig_sketch, paperfig_queries, workers=workers
        ) == expected
