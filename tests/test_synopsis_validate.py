"""Tests for the synopsis invariant checker (repro.synopsis.validate)."""

import pytest

from repro.build import xbuild
from repro.datasets import generate_imdb, movie_document
from repro.errors import SynopsisIntegrityError
from repro.synopsis import (
    TwigXSketch,
    error_violations,
    raise_on_violations,
    sketch_from_dict,
    sketch_to_dict,
    validate_sketch,
)
from repro.synopsis.validate import Violation


@pytest.fixture(scope="module")
def built_sketch():
    tree = generate_imdb(2000, seed=2)
    return xbuild(tree, budget_bytes=3 * 1024, seed=3)


def _frozen(sketch):
    """An independent loaded copy whose graph objects are mutable."""
    return sketch_from_dict(sketch_to_dict(sketch))


def _codes(violations):
    return {violation.code for violation in violations}


class TestHealthySketches:
    def test_built_sketch_clean(self, built_sketch):
        assert validate_sketch(built_sketch) == []

    def test_coarsest_sketch_clean(self):
        assert validate_sketch(TwigXSketch.coarsest(movie_document())) == []

    def test_loaded_sketch_clean(self, built_sketch):
        assert validate_sketch(_frozen(built_sketch)) == []

    def test_raise_on_violations_accepts_clean(self, built_sketch):
        raise_on_violations(validate_sketch(built_sketch))


class TestNodeInvariants:
    def test_negative_count(self, built_sketch):
        loaded = _frozen(built_sketch)
        node = next(iter(loaded.graph.nodes.values()))
        node.count = -3
        violations = validate_sketch(loaded)
        assert "node-count" in _codes(violations)
        assert any(f"nodes[{node.node_id}]" in v.path for v in violations)

    def test_non_finite_count(self, built_sketch):
        loaded = _frozen(built_sketch)
        next(iter(loaded.graph.nodes.values())).count = float("nan")
        assert "node-count" in _codes(validate_sketch(loaded))

    def test_empty_tag(self, built_sketch):
        loaded = _frozen(built_sketch)
        next(iter(loaded.graph.nodes.values())).tag = ""
        assert "node-tag" in _codes(validate_sketch(loaded))


class TestEdgeInvariants:
    def test_child_count_exceeds_target(self, built_sketch):
        loaded = _frozen(built_sketch)
        edge = next(iter(loaded.graph.edges.values()))
        edge.child_count = loaded.graph.nodes[edge.target].count + 7
        assert "edge-count-range" in _codes(validate_sketch(loaded))

    def test_parent_count_exceeds_child_count(self, built_sketch):
        loaded = _frozen(built_sketch)
        edge = next(iter(loaded.graph.edges.values()))
        edge.parent_count = edge.child_count + 1
        codes = _codes(validate_sketch(loaded))
        assert "edge-count-order" in codes or "edge-count-range" in codes

    def test_stale_cached_size_flags_stability(self, built_sketch):
        loaded = _frozen(built_sketch)
        edge = next(iter(loaded.graph.edges.values()))
        edge.target_size = edge.target_size + 100
        assert "edge-size-stale" in _codes(validate_sketch(loaded))

    def test_zero_witness_edge(self, built_sketch):
        loaded = _frozen(built_sketch)
        edge = next(iter(loaded.graph.edges.values()))
        edge.child_count = 0
        edge.parent_count = 0
        assert "edge-witness" in _codes(validate_sketch(loaded))

    def test_partition_deficit(self, built_sketch):
        loaded = _frozen(built_sketch)
        # Shrinking one incoming child count breaks the "every non-root
        # element has exactly one parent" accounting.
        edge = max(
            loaded.graph.edges.values(), key=lambda e: e.child_count
        )
        edge.child_count -= 1
        edge.parent_count = min(edge.parent_count, edge.child_count)
        assert "tree-partition" in _codes(validate_sketch(loaded))


class TestHistogramInvariants:
    def test_scope_referencing_missing_edge(self, built_sketch):
        loaded = _frozen(built_sketch)
        node_id, histograms = next(iter(loaded.edge_stats.items()))
        key = (histograms[0].scope[0].source, histograms[0].scope[0].target)
        del loaded.graph.edges[key]
        codes = _codes(validate_sketch(loaded))
        assert "histogram-scope" in codes

    def test_mass_exceeding_unit(self, built_sketch):
        loaded = _frozen(built_sketch)
        histogram = next(iter(loaded.edge_stats.values()))[0]
        histogram.engine._points = [
            (vector, mass * 10)
            for vector, mass in histogram.engine._points
        ]
        codes = _codes(validate_sketch(loaded))
        assert "histogram-mass" in codes

    def test_mean_inconsistent_with_edge_total(self, built_sketch):
        loaded = _frozen(built_sketch)
        histogram = next(iter(loaded.edge_stats.values()))[0]
        histogram.engine._points = [
            (tuple(c + 5 for c in vector), mass)
            for vector, mass in histogram.engine._points
        ]
        assert "histogram-edge-total" in _codes(validate_sketch(loaded))

    def test_stats_for_dead_node(self, built_sketch):
        loaded = _frozen(built_sketch)
        loaded.value_stats[99_999] = next(iter(loaded.value_stats.values()))
        assert "histogram-node" in _codes(validate_sketch(loaded))


class TestRaising:
    def test_raise_on_violations_is_typed(self, built_sketch):
        loaded = _frozen(built_sketch)
        next(iter(loaded.graph.nodes.values())).count = -1
        with pytest.raises(SynopsisIntegrityError) as excinfo:
            raise_on_violations(validate_sketch(loaded))
        assert excinfo.value.path

    def test_error_violations_filters_warnings(self):
        mixed = [
            Violation("a", "x", "m", severity="error"),
            Violation("b", "y", "m", severity="warning"),
        ]
        assert [v.code for v in error_violations(mixed)] == ["a"]
